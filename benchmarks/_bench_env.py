"""Shared environment helpers for the pytest-benchmark suite.

The venue scale is controlled with the ``REPRO_BENCH_SCALE`` environment
variable (``tiny`` / ``small`` / ``paper``; default ``small``) — the
``paper`` scale reproduces the full Table II setting (five 1368 m floors,
δs2t up to 1900 m) and takes correspondingly longer.

Environments (venue + schedule + IT-Graph + workload) are cached per
parameter combination so that pytest-benchmark timings measure query
processing only, never data generation.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from typing import Any, Dict, Optional, Tuple

from repro.bench.experiments import (
    BenchmarkEnvironment,
    ExperimentScale,
    build_environment,
)


def _git_revision() -> Optional[str]:
    """Short revision of the working tree, or ``None`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else None


def bench_environment() -> Dict[str, Any]:
    """Provenance block shared by every ``BENCH_*.json`` writer.

    Records when, on what, and from which revision a benchmark record was
    produced, so perf trajectories stay comparable across machines and
    checkouts.
    """
    return {
        "created_unix": time.time(),
        "git_rev": _git_revision(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }


def bench_scale() -> ExperimentScale:
    """The venue scale selected through the environment."""
    return ExperimentScale(os.environ.get("REPRO_BENCH_SCALE", "small"))


_ENVIRONMENTS: Dict[Tuple, BenchmarkEnvironment] = {}


def cached_environment(
    checkpoint_count: Optional[int] = None,
    s2t_distance: Optional[float] = None,
    query_time: Optional[str] = None,
) -> BenchmarkEnvironment:
    """Build (once) and return the environment for one parameter setting."""
    scale = bench_scale()
    key = (scale, checkpoint_count, s2t_distance, query_time)
    if key not in _ENVIRONMENTS:
        _ENVIRONMENTS[key] = build_environment(
            scale,
            checkpoint_count=checkpoint_count,
            s2t_distance=s2t_distance,
            query_time=query_time,
        )
    return _ENVIRONMENTS[key]


def run_workload(environment: BenchmarkEnvironment, method: str) -> int:
    """Answer the environment's whole query set once; returns #found (so the
    work cannot be optimised away)."""
    found = 0
    for query in environment.queries:
        result = environment.engine.run(query, method=method)
        found += int(result.found)
    return found
