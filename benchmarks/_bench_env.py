"""Shared environment helpers for the pytest-benchmark suite.

The venue scale is controlled with the ``REPRO_BENCH_SCALE`` environment
variable (``tiny`` / ``small`` / ``paper``; default ``small``) — the
``paper`` scale reproduces the full Table II setting (five 1368 m floors,
δs2t up to 1900 m) and takes correspondingly longer.

Environments (venue + schedule + IT-Graph + workload) are cached per
parameter combination so that pytest-benchmark timings measure query
processing only, never data generation.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.bench.experiments import (
    BenchmarkEnvironment,
    ExperimentScale,
    build_environment,
)


def bench_scale() -> ExperimentScale:
    """The venue scale selected through the environment."""
    return ExperimentScale(os.environ.get("REPRO_BENCH_SCALE", "small"))


_ENVIRONMENTS: Dict[Tuple, BenchmarkEnvironment] = {}


def cached_environment(
    checkpoint_count: Optional[int] = None,
    s2t_distance: Optional[float] = None,
    query_time: Optional[str] = None,
) -> BenchmarkEnvironment:
    """Build (once) and return the environment for one parameter setting."""
    scale = bench_scale()
    key = (scale, checkpoint_count, s2t_distance, query_time)
    if key not in _ENVIRONMENTS:
        _ENVIRONMENTS[key] = build_environment(
            scale,
            checkpoint_count=checkpoint_count,
            s2t_distance=s2t_distance,
            query_time=query_time,
        )
    return _ENVIRONMENTS[key]


def run_workload(environment: BenchmarkEnvironment, method: str) -> int:
    """Answer the environment's whole query set once; returns #found (so the
    work cannot be optimised away)."""
    found = 0
    for query in environment.queries:
        result = environment.engine.run(query, method=method)
        found += int(result.found)
    return found
