"""Ablation benchmarks (beyond the paper's figures).

Two design questions the paper's evaluation leaves implicit are quantified
here on the default setting:

* **Where does the temporal-checking work go?**  ITG/S pays one ATI binary
  search per relaxation; ITG/A pays one snapshot membership test plus an
  occasional snapshot rebuild; the query-time-snapshot shortcut and the
  temporal-unaware search bound the cost from below.
* **What does the literal Algorithm 1 partition-visited pruning buy?**
  ``partition_once=True`` mirrors the published pseudocode (fewer
  relaxations, possibly longer paths); ``False`` is the exact door-to-door
  expansion used everywhere else in this repository.
"""

import pytest

from _bench_env import cached_environment, run_workload
from repro.core.engine import ITSPQEngine


@pytest.mark.parametrize("method", ["ITG/S", "ITG/A", "query-time", "static"])
def test_ablation_temporal_check_strategies(benchmark, grid, method):
    environment = cached_environment(
        checkpoint_count=grid.default_checkpoints,
        s2t_distance=grid.default_s2t,
        query_time=grid.default_time,
    )
    found = benchmark(run_workload, environment, method)
    sample = environment.engine.run(environment.queries[0], method=method)
    benchmark.extra_info.update(
        {
            "figure": "ablation-checks",
            "method": method,
            "found": found,
            "ati_probes": sample.statistics.ati_probes,
            "membership_checks": sample.statistics.membership_checks,
            "snapshot_refreshes": sample.statistics.snapshot_refreshes,
        }
    )


@pytest.mark.parametrize("partition_once", [False, True])
@pytest.mark.parametrize("method", ["ITG/S", "ITG/A"])
def test_ablation_partition_once_pruning(benchmark, grid, partition_once, method):
    environment = cached_environment(
        checkpoint_count=grid.default_checkpoints,
        s2t_distance=grid.default_s2t,
        query_time=grid.default_time,
    )
    engine = ITSPQEngine(environment.itgraph, partition_once=partition_once)

    def run():
        found = 0
        for query in environment.queries:
            found += int(engine.run(query, method=method).found)
        return found

    found = benchmark(run)
    sample = engine.run(environment.queries[0], method=method)
    benchmark.extra_info.update(
        {
            "figure": "ablation-partition-once",
            "method": method,
            "partition_once": partition_once,
            "found": found,
            "relaxations": sample.statistics.relaxations,
            "doors_settled": sample.statistics.doors_settled,
        }
    )
