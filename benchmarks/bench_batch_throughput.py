#!/usr/bin/env python
"""Batch-vs-sequential query throughput over the compiled ITSPQ core.

Measures how many ITSPQ queries per second the engine answers when a
workload is executed through the :class:`~repro.core.batch.BatchExecutor`
(planned common-source groups, one multi-target search per group, shared
search arena) versus the sequential one-search-per-query loop, on two
venues:

``example``
    The paper's running example (Figure 1 / Table I).
``fig6-mall``
    The synthetic multi-floor mall of the evaluation at the chosen scale
    (default ``paper``: the Table II setting), swept over the Figure 6 query
    times of day.

The workload per query time is the *fan-out* form of the fig6 query set:
every source of the generated (source, target) pairs is routed to every
generated target — the service-batch shape (many users, few entrances)
batch execution is built for.  Batch results are asserted bit-identical to
the sequential engine before any timing is trusted.

Writes a JSON perf record (default ``BENCH_batch.json`` at the repository
root) with per-time-point throughput and the headline summary: aggregate
queries/sec per execution mode and the batch speedup, per method and venue.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --scale small -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from _bench_env import bench_environment  # noqa: E402
from repro.bench.experiments import (  # noqa: E402
    ExperimentScale,
    build_environment,
    default_grid,
)
from repro.bench.harness import run_batch_query_set  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.core.engine import ITSPQEngine  # noqa: E402
from repro.core.query import ITSPQuery  # noqa: E402
from repro.datasets.example_floorplan import (  # noqa: E402
    build_example_itgraph,
    example_fanout_endpoints,
)
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances  # noqa: E402

METHODS = ("ITG/S", "ITG/A")


def fanout_queries(sources, targets, query_time):
    """Every source routed to every distinct target at one query time."""
    return [
        ITSPQuery(source, target, query_time)
        for source in sources
        for target in targets
        if source is not target
    ]


def example_workloads():
    """Per-time fan-out workloads on the running example.

    Endpoints come from :func:`example_fanout_endpoints` (the four query
    points fanning out to an interior point of every public partition) —
    the same workload the ``scripts/check_perf.py`` batch gate measures.
    """
    itgraph = build_example_itgraph()
    sources, targets = example_fanout_endpoints(itgraph)
    query_times = ("6:30", "9:00", "12:00", "15:55", "21:00")
    return itgraph, {t: fanout_queries(sources, targets, t) for t in query_times}


def fig6_workloads(scale: ExperimentScale):
    """Per-time fan-out workloads on the fig6 synthetic mall.

    The venue, schedule and IT-Graph are the fig6 defaults (built once); per
    query time the generated δs2t-constrained pairs are expanded into the
    source x target cross product.
    """
    grid = default_grid(scale)
    environment = build_environment(scale, grid=grid)
    itgraph = environment.itgraph
    workloads = {}
    for query_time in grid.query_times:
        generated = generate_query_instances(
            itgraph,
            QueryWorkloadConfig(
                s2t_distance=grid.default_s2t,
                pairs=grid.query_pairs,
                query_time=query_time,
                seed=grid.workload_seed,
            ),
        )
        sources = [g.query.source for g in generated]
        targets = [g.query.target for g in generated]
        workloads[query_time] = fanout_queries(sources, targets, query_time)
    return itgraph, workloads


def assert_parity(engine, queries, method):
    """Batch answers must match the sequential engine before timing."""
    sequential = engine.run_batch(queries, method=method, batch=False)
    batched = engine.run_batch(queries, method=method)
    for seq, bat in zip(sequential, batched):
        if seq.found != bat.found or seq.length != bat.length:
            raise AssertionError(
                f"batch/sequential disagreement on {seq.query} ({method}): "
                f"sequential={seq.length}, batch={bat.length}"
            )


def run_venue(venue_name, itgraph, workloads, repetitions):
    """Benchmark one venue; returns its result rows."""
    engine = ITSPQEngine(itgraph)
    engine.ensure_compiled()
    executor = engine.batch_executor()
    rows = []
    for query_time, queries in workloads.items():
        plan_sizes = [group.size for group in executor.planner.plan(queries, "synchronous")]
        for method in METHODS:
            assert_parity(engine, queries, method)
            sequential = run_batch_query_set(
                engine, queries, method, repetitions=repetitions, batch=False
            )
            batched = run_batch_query_set(
                engine, queries, method, repetitions=repetitions, batch=True
            )
            rows.append(
                {
                    "venue": venue_name,
                    "query_time": query_time,
                    "method": method,
                    "queries": len(queries),
                    "groups": len(plan_sizes),
                    "mean_group_size": round(sum(plan_sizes) / len(plan_sizes), 2),
                    "repetitions": repetitions,
                    "sequential_qps": round(sequential.queries_per_second, 1),
                    "batch_qps": round(batched.queries_per_second, 1),
                    "speedup": round(
                        batched.queries_per_second / sequential.queries_per_second, 2
                    ),
                }
            )
    return rows


def summarise(rows):
    """Aggregate per (venue, method): total qps and median speedup."""
    summary = {}
    for venue in sorted({row["venue"] for row in rows}):
        for method in METHODS:
            selected = [
                row for row in rows if row["venue"] == venue and row["method"] == method
            ]
            summary[f"{venue} {method}"] = {
                "median_sequential_qps": round(
                    statistics.median(row["sequential_qps"] for row in selected), 1
                ),
                "median_batch_qps": round(
                    statistics.median(row["batch_qps"] for row in selected), 1
                ),
                "median_speedup": round(
                    statistics.median(row["speedup"] for row in selected), 2
                ),
            }
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        choices=[scale.value for scale in ExperimentScale],
        help="fig6 venue/workload scale (default: paper, the Table II setting)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=5, help="whole-workload repetitions per mode"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=_REPO_ROOT / "BENCH_batch.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)

    rows = []
    itgraph, workloads = example_workloads()
    rows += run_venue("example", itgraph, workloads, args.repetitions)
    itgraph, workloads = fig6_workloads(ExperimentScale(args.scale))
    rows += run_venue("fig6-mall", itgraph, workloads, args.repetitions)

    record = {
        "benchmark": "bench_batch_throughput",
        "workload": "fan-out fig6 query sets (sources x targets per query time)",
        "scale": args.scale,
        "environment": bench_environment(),
        "summary": summarise(rows),
        "rows": rows,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")

    print(format_table(rows))
    print()
    for label, stats in record["summary"].items():
        print(
            f"{label}: batch {stats['median_batch_qps']:,.0f} q/s vs sequential "
            f"{stats['median_sequential_qps']:,.0f} q/s -> {stats['median_speedup']:.2f}x"
        )
    print(f"\nperf record written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
