#!/usr/bin/env python
"""Warm-hit latency of the interval-keyed shortest-path-tree cache.

Measures what the cache is for: a service answering many queries that share
a source and a checkpoint interval (one cached tree per ``(source,
interval, method, privacy)`` key) should answer repeats by an O(path-length)
replay instead of a fresh door-level Dijkstra.  Two venues:

``example``
    The paper's running example (Figure 1 / Table I) — tiny, so cold
    searches are already tens of microseconds and the warm win is modest.
``fig6-mall``
    The synthetic multi-floor mall of the evaluation at the chosen scale
    (default ``paper``: the Table II setting), where a cold search settles
    hundreds of doors and the warm replay wins by an order of magnitude.

The workload is the *clustered* fan-out form of the fig6 query set: per
query time, every generated source is routed to every generated target, so
each (source, query time) pair is one cache cluster whose first member
builds the tree and whose remaining members are warm hits.  Cached answers
are asserted bit-identical (results **and** every ``SearchStatistics``
counter) to the uncached compiled engine before any timing is trusted.

Reported per venue and method: the median cold per-query latency (uncached
compiled engine), the median warm-hit latency (eager cache, fully warmed),
their ratio, and the cache's own hit/miss/build/eviction accounting from
``engine.cache_stats``.  A hit-rate sweep re-runs the workload 1/2/4/8
times through a fresh cache, and an eviction probe re-runs it through a
deliberately undersized cache so the eviction counter is exercised too.

Writes a JSON perf record (default ``BENCH_cache.json`` at the repository
root).  The committed record is produced at ``paper`` scale, where the
fig6-mall warm-path speedup clears the 5x target.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache_hit.py
    PYTHONPATH=src python benchmarks/bench_cache_hit.py --scale small -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from _bench_env import bench_environment  # noqa: E402
from repro.bench.experiments import (  # noqa: E402
    ExperimentScale,
    build_environment,
    default_grid,
)
from repro.bench.harness import run_query_set  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.core.cache import CacheConfig  # noqa: E402
from repro.core.engine import ITSPQEngine  # noqa: E402
from repro.core.query import ITSPQuery, SearchStatistics  # noqa: E402
from repro.datasets.example_floorplan import (  # noqa: E402
    build_example_itgraph,
    example_fanout_endpoints,
)
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances  # noqa: E402

METHODS = ("ITG/S", "ITG/A")
_STAT_KEYS = SearchStatistics.COUNTER_FIELDS


def clustered_queries(sources, targets, query_times):
    """Every source x every target at every query time — each (source, time)
    is one cache cluster of ``len(targets)`` members."""
    return [
        ITSPQuery(source, target, query_time)
        for query_time in query_times
        for source in sources
        for target in targets
        if source is not target
    ]


def example_workload():
    itgraph = build_example_itgraph()
    sources, targets = example_fanout_endpoints(itgraph)
    return itgraph, clustered_queries(sources, targets, ("6:30", "9:00", "12:00"))


def fig6_workload(scale: ExperimentScale):
    """Clustered workload on the fig6 synthetic mall (venue built once)."""
    grid = default_grid(scale)
    environment = build_environment(scale, grid=grid)
    itgraph = environment.itgraph
    query_times = ("8:00", "12:00", "20:00")
    queries = []
    for query_time in query_times:
        generated = generate_query_instances(
            itgraph,
            QueryWorkloadConfig(
                s2t_distance=grid.default_s2t,
                pairs=grid.query_pairs,
                query_time=query_time,
                seed=grid.workload_seed,
            ),
        )
        sources = [g.query.source for g in generated]
        targets = [g.query.target for g in generated]
        queries += clustered_queries(sources, targets, (query_time,))
    return itgraph, queries


def assert_cached_parity(cold_engine, cached_engine, queries, method):
    """Every cached answer must match the uncached engine bit-for-bit
    (results and statistics) before any timing is trusted.  This pass also
    fully warms the cache: every timed sample afterwards is a hit."""
    for query in queries:
        fresh = cold_engine.run(query, method=method)
        first = cached_engine.run(query, method=method)  # builds the tree
        warm = cached_engine.run(query, method=method)  # guaranteed hit
        for cached in (first, warm):
            if (
                fresh.found != cached.found
                or fresh.length != cached.length
                or any(
                    getattr(fresh.statistics, key) != getattr(cached.statistics, key)
                    for key in _STAT_KEYS
                )
            ):
                raise AssertionError(
                    f"cached/fresh disagreement on {query} ({method}): "
                    f"fresh={fresh.length}, cached={cached.length}"
                )


def run_venue(venue_name, itgraph, queries, repetitions):
    """Benchmark one venue; returns (rows, accounting) for the record."""
    cold_engine = ITSPQEngine(itgraph)
    cold_engine.ensure_compiled()
    rows = []
    accounting = {}
    for method in METHODS:
        cached_engine = ITSPQEngine(
            itgraph, cache=CacheConfig(mode="eager", max_entries=4096)
        )
        cached_engine.ensure_compiled()
        assert_cached_parity(cold_engine, cached_engine, queries, method)
        cold = run_query_set(cold_engine, queries, method, repetitions=repetitions)
        warm = run_query_set(cached_engine, queries, method, repetitions=repetitions)
        stats = cached_engine.cache_stats
        rows.append(
            {
                "venue": venue_name,
                "method": method,
                "queries": len(queries),
                "clusters": stats["entries"],
                "repetitions": repetitions,
                "cold_p50_us": round(cold.p50_time_us, 1),
                "warm_p50_us": round(warm.p50_time_us, 1),
                "speedup": round(cold.p50_time_us / warm.p50_time_us, 2),
                "hit_rate": round(stats["hits"] / (stats["hits"] + stats["misses"]), 4),
            }
        )
        accounting[method] = stats
    return rows, accounting


def hit_rate_sweep(itgraph, queries, method="ITG/S"):
    """Hit rate as the workload repeats through a fresh cache: the first
    pass pays one build per cluster, every further pass is all hits."""
    sweep = []
    for passes in (1, 2, 4, 8):
        engine = ITSPQEngine(itgraph, cache=CacheConfig(mode="eager", max_entries=4096))
        for _ in range(passes):
            for query in queries:
                engine.run(query, method=method)
        stats = engine.cache_stats
        sweep.append(
            {
                "passes": passes,
                "lookups": stats["hits"] + stats["misses"],
                "hits": stats["hits"],
                "misses": stats["misses"],
                "hit_rate": round(stats["hits"] / (stats["hits"] + stats["misses"]), 4),
            }
        )
    return sweep


def eviction_probe(itgraph, queries, method="ITG/S"):
    """Run the workload through a deliberately undersized cache (fewer
    entries than clusters) so LRU eviction and re-build are exercised."""
    engine = ITSPQEngine(itgraph, cache=CacheConfig(mode="eager", max_entries=4))
    for _ in range(2):
        for query in queries:
            engine.run(query, method=method)
    return engine.cache_stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        choices=[scale.value for scale in ExperimentScale],
        help="fig6 venue/workload scale (default: paper, the Table II setting)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=5, help="timed repetitions per query"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=_REPO_ROOT / "BENCH_cache.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)

    rows = []
    accounting = {}
    example_itgraph, example_queries = example_workload()
    venue_rows, venue_accounting = run_venue(
        "example", example_itgraph, example_queries, args.repetitions
    )
    rows += venue_rows
    accounting["example"] = venue_accounting
    mall_itgraph, mall_queries = fig6_workload(ExperimentScale(args.scale))
    venue_rows, venue_accounting = run_venue(
        "fig6-mall", mall_itgraph, mall_queries, args.repetitions
    )
    rows += venue_rows
    accounting["fig6-mall"] = venue_accounting

    mall_speedups = [row["speedup"] for row in rows if row["venue"] == "fig6-mall"]
    record = {
        "benchmark": "bench_cache_hit",
        "workload": "clustered fig6 fan-out (one cache cluster per source x query time)",
        "scale": args.scale,
        "environment": bench_environment(),
        "summary": {
            "fig6_mall_median_warm_speedup": round(statistics.median(mall_speedups), 2),
            "fig6_mall_min_warm_speedup": round(min(mall_speedups), 2),
            "target_warm_speedup": 5.0,
        },
        "rows": rows,
        "cache_accounting": accounting,
        "hit_rate_sweep": hit_rate_sweep(mall_itgraph, mall_queries),
        "eviction_probe": eviction_probe(mall_itgraph, mall_queries),
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")

    print(format_table(rows))
    print()
    summary = record["summary"]
    print(
        f"fig6-mall warm-path speedup: median {summary['fig6_mall_median_warm_speedup']:.2f}x, "
        f"min {summary['fig6_mall_min_warm_speedup']:.2f}x "
        f"(target >= {summary['target_warm_speedup']:.0f}x)"
    )
    print(f"\nperf record written to {args.output}")
    return int(summary["fig6_mall_min_warm_speedup"] < summary["target_warm_speedup"])


if __name__ == "__main__":
    raise SystemExit(main())
