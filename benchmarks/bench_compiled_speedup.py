#!/usr/bin/env python
"""Compiled-vs-reference engine speedup on the Figure 6 query workload.

Runs the paper's time-of-day sweep (the ``fig6`` setting: default ``|T|`` and
δs2t, queries issued at every even hour) once with the object-level reference
engine (``compiled=False``) and once with the compiled integer-indexed fast
path (``compiled=True``), measuring both through the existing
:func:`repro.bench.harness.run_query_set` protocol.  The two engines return
bit-identical answers (asserted here per query), so the comparison isolates
pure query-processing cost.

Writes a JSON perf record (default ``BENCH_compiled.json`` at the repository
root) with per-time-point p50 latencies and the headline summary: median
query latency per engine and the speedup ratio of the compiled path.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled_speedup.py
    PYTHONPATH=src python benchmarks/bench_compiled_speedup.py --scale small -o out.json

The venue scale defaults to ``paper`` (the Table II setting the figure is
about); ``REPRO_BENCH_SCALE`` or ``--scale`` overrides it.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from _bench_env import bench_environment  # noqa: E402
from repro.bench.experiments import (  # noqa: E402
    ExperimentScale,
    build_environment,
    default_grid,
)
from repro.bench.harness import run_query_set  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.core.engine import ITSPQEngine  # noqa: E402

METHODS = ("ITG/S", "ITG/A")


def _assert_parity(reference, compiled_engine, queries, method):
    """Both engines must agree before any timing is trusted."""
    for query in queries:
        ref = reference.run(query, method=method)
        cmp = compiled_engine.run(query, method=method)
        if ref.found != cmp.found or ref.length != cmp.length:
            raise AssertionError(
                f"engine disagreement on {query} ({method}): "
                f"reference={ref.length}, compiled={cmp.length}"
            )


def run_benchmark(scale: ExperimentScale) -> dict:
    """Execute the sweep and return the JSON-ready perf record."""
    grid = default_grid(scale)
    rows = []
    compile_build_ms = None

    for query_time in grid.query_times:
        environment = build_environment(
            scale,
            checkpoint_count=grid.default_checkpoints,
            s2t_distance=grid.default_s2t,
            query_time=query_time,
            grid=grid,
        )
        reference = ITSPQEngine(environment.itgraph, compiled=False)
        compiled_engine = ITSPQEngine(environment.itgraph, compiled=True)
        started = time.perf_counter()
        compiled_engine.ensure_compiled()
        if compile_build_ms is None:
            compile_build_ms = (time.perf_counter() - started) * 1e3

        for method in METHODS:
            _assert_parity(reference, compiled_engine, environment.queries, method)
            ref_measure = run_query_set(
                reference, environment.queries, method, repetitions=grid.repetitions
            )
            cmp_measure = run_query_set(
                compiled_engine, environment.queries, method, repetitions=grid.repetitions
            )
            rows.append(
                {
                    "query_time": query_time,
                    "method": method,
                    "queries": len(environment.queries),
                    "repetitions": grid.repetitions,
                    "reference_p50_us": round(ref_measure.p50_time_us, 2),
                    "compiled_p50_us": round(cmp_measure.p50_time_us, 2),
                    "reference_mean_us": round(ref_measure.mean_time_us, 2),
                    "compiled_mean_us": round(cmp_measure.mean_time_us, 2),
                    "speedup_p50": round(
                        ref_measure.p50_time_us / cmp_measure.p50_time_us, 2
                    ),
                }
            )

    summary = {}
    for method in METHODS:
        method_rows = [row for row in rows if row["method"] == method]
        reference_median = statistics.median(row["reference_p50_us"] for row in method_rows)
        compiled_median = statistics.median(row["compiled_p50_us"] for row in method_rows)
        summary[method] = {
            "median_query_latency_reference_us": round(reference_median, 2),
            "median_query_latency_compiled_us": round(compiled_median, 2),
            "speedup": round(reference_median / compiled_median, 2),
        }

    return {
        "benchmark": "bench_compiled_speedup",
        "workload": "fig6 (search time vs query time of day)",
        "scale": scale.value,
        "environment": bench_environment(),
        "compile_build_ms": round(compile_build_ms or 0.0, 2),
        "summary": summary,
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        choices=[scale.value for scale in ExperimentScale],
        help="venue/workload scale (default: paper, the Table II setting)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=_REPO_ROOT / "BENCH_compiled.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)

    record = run_benchmark(ExperimentScale(args.scale))
    args.output.write_text(json.dumps(record, indent=2) + "\n")

    print(format_table(record["rows"]))
    print()
    for method, stats in record["summary"].items():
        print(
            f"{method}: compiled {stats['median_query_latency_compiled_us']:.0f} us vs "
            f"reference {stats['median_query_latency_reference_us']:.0f} us median "
            f"-> {stats['speedup']:.2f}x speedup"
        )
    print(f"\nperf record written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
