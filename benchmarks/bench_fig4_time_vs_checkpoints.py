"""Figure 4 — search time vs. checkpoint-set size ``|T|``.

The paper plots ITG/S and ITG/A for |T| in {4, 8, 12, 16} at two query times:
12:00 (when nearly every door is open, so |T| barely matters) and 8:00 (when
larger |T| closes more doors and the search gets cheaper).  Each benchmark
times one full query set (five δs2t-controlled origin/destination pairs).
"""

import pytest

from _bench_env import cached_environment, run_workload


@pytest.mark.parametrize("checkpoints", [4, 8, 12, 16])
@pytest.mark.parametrize("query_time", ["12:00", "8:00"])
@pytest.mark.parametrize("method", ["ITG/S", "ITG/A"])
def test_fig4_search_time_vs_checkpoint_count(benchmark, grid, checkpoints, query_time, method):
    environment = cached_environment(
        checkpoint_count=checkpoints,
        s2t_distance=grid.default_s2t,
        query_time=query_time,
    )
    found = benchmark(run_workload, environment, method)
    benchmark.extra_info.update(
        {
            "figure": "fig4",
            "checkpoints": checkpoints,
            "query_time": query_time,
            "method": method,
            "queries": len(environment.queries),
            "found": found,
        }
    )
