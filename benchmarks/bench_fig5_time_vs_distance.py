"""Figure 5 — search time vs. source-to-target distance δs2t.

The paper sweeps δs2t from 1100 m to 1900 m at |T| = 8 and t = 12:00 and
observes a mild increase in search time for both ITG/S and ITG/A.  The sweep
below uses the scale-appropriate δs2t values from the parameter grid.
"""

import pytest

from _bench_env import bench_scale, cached_environment, run_workload
from repro.bench.experiments import default_grid

_GRID = default_grid(bench_scale())


@pytest.mark.parametrize("s2t", list(_GRID.s2t_distances))
@pytest.mark.parametrize("method", ["ITG/S", "ITG/A"])
def test_fig5_search_time_vs_s2t_distance(benchmark, grid, s2t, method):
    environment = cached_environment(
        checkpoint_count=grid.default_checkpoints,
        s2t_distance=s2t,
        query_time=grid.default_time,
    )
    found = benchmark(run_workload, environment, method)
    benchmark.extra_info.update(
        {
            "figure": "fig5",
            "s2t": s2t,
            "method": method,
            "queries": len(environment.queries),
            "found": found,
        }
    )
