"""Figure 6 — search time vs. query time of day.

The paper issues the default query set at every even hour of the day and
observes: cheap searches before ~10:00 and after ~20:00 (most doors closed,
small effective graph), a plateau between 10:00 and 20:00 (nearly everything
open), with ITG/S and ITG/A tracking each other.
"""

import pytest

from _bench_env import bench_scale, cached_environment, run_workload
from repro.bench.experiments import default_grid

_GRID = default_grid(bench_scale())


@pytest.mark.parametrize("query_time", list(_GRID.query_times))
@pytest.mark.parametrize("method", ["ITG/S", "ITG/A"])
def test_fig6_search_time_vs_time_of_day(benchmark, grid, query_time, method):
    environment = cached_environment(
        checkpoint_count=grid.default_checkpoints,
        s2t_distance=grid.default_s2t,
        query_time=query_time,
    )
    found = benchmark(run_workload, environment, method)
    benchmark.extra_info.update(
        {
            "figure": "fig6",
            "query_time": query_time,
            "method": method,
            "queries": len(environment.queries),
            "found": found,
        }
    )
