"""Figure 7 — memory cost vs. query time of day.

The paper reports the per-query memory cost over the day: it follows the same
shape as the search time (larger effective graph and frontier mid-day,
smaller early morning and late night).  pytest-benchmark measures the time of
the instrumented run; the tracemalloc peak per query set is attached to each
benchmark's ``extra_info`` as ``mean_memory_kb`` — that column is the Figure 7
series.
"""

import pytest

from _bench_env import bench_scale, cached_environment
from repro.bench.experiments import default_grid
from repro.bench.harness import run_query_set

_GRID = default_grid(bench_scale())

# A sparser time grid keeps the instrumented (tracemalloc) runs affordable.
_TIMES = list(_GRID.query_times)[::2]


@pytest.mark.parametrize("query_time", _TIMES)
@pytest.mark.parametrize("method", ["ITG/S", "ITG/A"])
def test_fig7_memory_vs_time_of_day(benchmark, grid, query_time, method):
    environment = cached_environment(
        checkpoint_count=grid.default_checkpoints,
        s2t_distance=grid.default_s2t,
        query_time=query_time,
    )

    def measure():
        return run_query_set(
            environment.engine,
            environment.queries,
            method,
            repetitions=1,
            measure_memory=True,
        )

    measurement = benchmark.pedantic(measure, rounds=3, iterations=1)
    benchmark.extra_info.update(
        {
            "figure": "fig7",
            "query_time": query_time,
            "method": method,
            "mean_memory_kb": round(measurement.mean_memory_kb, 1),
            "mean_time_us": round(measurement.mean_time_us, 1),
        }
    )
