#!/usr/bin/env python
"""Parallel batch throughput: speedup vs worker count on the fig6 workload.

Measures how many ITSPQ queries per second the engine answers when one
combined fan-out workload (every generated source routed to every generated
target, across all Figure 6 query times — the many-users-few-entrances
service shape) is executed:

``sequential``
    One search per query (``run_batch(batch=False)``), the per-query oracle.
``workers=1``
    The single-process :class:`~repro.core.batch.BatchExecutor` (the PR 2
    planned multi-target path) — the baseline parallel speedups are measured
    against.
``workers=N``
    The :class:`~repro.core.parallel.ParallelBatchExecutor`: the same plan
    fanned out over ``N`` worker processes, each rehydrating the compiled
    index from its serialised ``repro.io`` form and owning a private search
    arena.  Results are asserted bit-identical to the sequential engine
    before any timing is trusted.

Parallel speedup is bounded by the machine: on a single-core host the pool
only adds IPC overhead, so the JSON record always carries ``cpu_count``
(in its shared ``environment`` provenance block) and ``usable_cpus`` next
to the numbers.  CI regenerates this benchmark on
multi-core runners and uploads it as a workflow artifact.

Writes a JSON perf record (default ``BENCH_parallel.json`` at the repository
root) with per-mode throughput and the headline summary: speedup per worker
count and method, relative to ``workers=1``.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --scale small --workers 1,2
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from _bench_env import bench_environment  # noqa: E402
from repro.bench.experiments import (  # noqa: E402
    ExperimentScale,
    build_environment,
    default_grid,
)
from repro.bench.harness import run_batch_query_set  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.core.engine import ITSPQEngine  # noqa: E402
from repro.core.parallel import default_worker_count  # noqa: E402
from repro.core.query import ITSPQuery, SearchStatistics  # noqa: E402
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances  # noqa: E402

METHODS = ("ITG/S", "ITG/A")


def fig6_fanout_workload(scale: ExperimentScale):
    """One combined fan-out workload over all fig6 query times.

    The venue, schedule and IT-Graph are the fig6 defaults; per query time
    the generated δs2t-constrained pairs are expanded into the source x
    target cross product, and all times are concatenated so one batch call
    carries the whole day's service traffic (the shape that gives the
    planner many independent groups to spread over workers).
    """
    grid = default_grid(scale)
    environment = build_environment(scale, grid=grid)
    itgraph = environment.itgraph
    queries = []
    for query_time in grid.query_times:
        generated = generate_query_instances(
            itgraph,
            QueryWorkloadConfig(
                s2t_distance=grid.default_s2t,
                pairs=grid.query_pairs,
                query_time=query_time,
                seed=grid.workload_seed,
            ),
        )
        sources = [g.query.source for g in generated]
        targets = [g.query.target for g in generated]
        queries.extend(
            ITSPQuery(source, target, query_time)
            for source in sources
            for target in targets
            if source != target
        )
    return itgraph, queries


#: Statistics fields the parity check compares (everything but runtime).
_STAT_KEYS = SearchStatistics.COUNTER_FIELDS


def assert_parity(engine, queries, method, workers):
    """Parallel answers must be bit-identical to the sequential engine —
    found flag, length, door sequence and every statistics counter — before
    any timing is trusted."""
    sequential = engine.run_batch(queries, method=method, batch=False)
    parallel = engine.run_batch(queries, method=method, workers=workers)
    for seq, par in zip(sequential, parallel):
        same_path = (seq.path.door_sequence if seq.found else None) == (
            par.path.door_sequence if par.found else None
        )
        same_stats = all(
            getattr(seq.statistics, key) == getattr(par.statistics, key) for key in _STAT_KEYS
        )
        if seq.found != par.found or seq.length != par.length or not same_path or not same_stats:
            raise AssertionError(
                f"parallel/sequential disagreement on {seq.query} ({method}, "
                f"workers={workers}): sequential={seq.length}, parallel={par.length}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        choices=[scale.value for scale in ExperimentScale],
        help="fig6 venue/workload scale (default: paper, the Table II setting)",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts to sweep (default: 1,2,4)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="whole-workload repetitions per mode"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when any workers>1 mode is below this speedup vs the "
        "1-worker baseline; 0 (default) records without gating — single-core "
        "hosts cannot meet any floor, so only set this on multi-core hardware",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=_REPO_ROOT / "BENCH_parallel.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)
    worker_counts = sorted({int(token) for token in args.workers.split(",") if token.strip()})
    if any(count < 1 for count in worker_counts):
        parser.error("worker counts must be positive")

    itgraph, queries = fig6_fanout_workload(ExperimentScale(args.scale))
    engine = ITSPQEngine(itgraph)
    engine.ensure_compiled()
    groups = len(engine.batch_executor().planner.plan(queries, "synchronous"))
    payload_bytes = len(engine.parallel_executor(max(worker_counts)).payload_bytes())
    print(
        f"workload: {len(queries)} queries in {groups} groups "
        f"({args.scale} scale, {payload_bytes} payload bytes, "
        f"{default_worker_count()} usable cpus)"
    )

    rows = []
    execution_reports = {}
    try:
        for method in METHODS:
            assert_parity(engine, queries, method, workers=max(worker_counts))
            sequential = run_batch_query_set(
                engine, queries, method, repetitions=args.repetitions, batch=False
            )
            baseline = None
            for mode, workers in [("sequential", None)] + [
                (f"workers={count}", count) for count in worker_counts
            ]:
                if mode == "sequential":
                    measurement = sequential
                else:
                    measurement = run_batch_query_set(
                        engine,
                        queries,
                        method,
                        repetitions=args.repetitions,
                        batch=True,
                        workers=workers,
                    )
                if workers == 1:
                    baseline = measurement
                # The supervision counters of the last timed run: a bench
                # number measured on a degraded pool (retries, respawns,
                # in-process fallbacks) is not a pool measurement at all, so
                # the record keeps the evidence next to the throughput.
                last_report = engine.last_execution_report
                if workers is not None and last_report is not None:
                    execution_reports[f"{method} {mode}"] = last_report.as_dict()
                    if not last_report.clean:
                        print(
                            f"WARNING: degraded execution while timing {method} {mode}: "
                            f"{last_report.summary()}"
                        )
                rows.append(
                    {
                        "method": method,
                        "mode": mode,
                        "queries": len(queries),
                        "groups": groups,
                        "repetitions": args.repetitions,
                        "qps": round(measurement.queries_per_second, 1),
                        "speedup_vs_sequential": round(
                            measurement.queries_per_second / sequential.queries_per_second, 2
                        ),
                        "speedup_vs_1worker": (
                            round(measurement.queries_per_second / baseline.queries_per_second, 2)
                            if baseline is not None
                            else None
                        ),
                    }
                )
    finally:
        engine.close()

    summary = {}
    for method in METHODS:
        for row in rows:
            if row["method"] == method and row["mode"].startswith("workers="):
                summary[f"{method} {row['mode']}"] = {
                    "qps": row["qps"],
                    "speedup_vs_1worker": row["speedup_vs_1worker"],
                    "speedup_vs_sequential": row["speedup_vs_sequential"],
                }

    record = {
        "benchmark": "bench_parallel_scaling",
        "workload": "combined fig6 fan-out query set (all query times, sources x targets)",
        "scale": args.scale,
        "environment": bench_environment(),
        "platform": platform.platform(),
        "usable_cpus": default_worker_count(),
        "worker_counts": worker_counts,
        "payload_bytes": payload_bytes,
        "summary": summary,
        "rows": rows,
        "execution_reports": execution_reports,
        "all_runs_clean": all(
            entry.get("clean", False) for entry in execution_reports.values()
        )
        if execution_reports
        else None,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")

    print(format_table(rows))
    print()
    for label, stats in summary.items():
        versus_baseline = (
            f"{stats['speedup_vs_1worker']:.2f}x vs 1 worker"
            if stats["speedup_vs_1worker"] is not None
            else "(no 1-worker baseline in sweep)"
        )
        print(
            f"{label}: {stats['qps']:,.0f} q/s -> {versus_baseline} "
            f"({stats['speedup_vs_sequential']:.2f}x vs sequential)"
        )
    if record["usable_cpus"] < 2:
        print(
            "\nNOTE: this host exposes a single usable CPU; multiprocess speedup "
            "is physically impossible here and the numbers above measure pure "
            "dispatch overhead.  Run on a multi-core host (or read the CI "
            "artifact) for the scaling curve."
        )
    print(f"\nperf record written to {args.output}")

    if args.min_speedup > 0:
        below = [
            f"{label}: {stats['speedup_vs_1worker']:.2f}x"
            for label, stats in summary.items()
            if stats["speedup_vs_1worker"] is not None
            and stats["speedup_vs_1worker"] < args.min_speedup
        ]
        if below:
            print(
                f"SPEEDUP GATE FAILED (< {args.min_speedup:.2f}x vs 1 worker): "
                + "; ".join(below),
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
