#!/usr/bin/env python
"""Per-semantics query latency of the pluggable temporal-semantics kernel.

Every execution tier answers all four temporal semantics — no-wait (the
paper's ITSPQ), wait-tolerant, latest-departure and time-window — through
one shared probe closure (:func:`repro.core.semantics.make_edge_probe`).
This benchmark quantifies what that pluggability costs: the same workload is
re-tagged under each semantics and timed on the compiled single-query
engine and the batch executor, all on the synchronous method (the only
method the non-default semantics support).  Two venues:

``example``
    The paper's running example (Figure 1 / Table I).
``fig6-mall``
    The synthetic multi-floor mall of the evaluation at the chosen scale
    (default ``paper``, the Table II setting).

Before any timing is trusted, the compiled engine and the batch executor
are asserted bit-identical (results **and** every ``SearchStatistics``
counter) per semantics — the same cross-tier contract
``scripts/check_perf.py`` gates and ``tests/test_semantics_parity.py``
sweeps.

Reported per venue and semantics: median/mean per-query latency, found
fraction, mean relaxations and the batch throughput, plus each semantics'
latency overhead relative to no-wait (the summary headline — the probe
kernel's dispatch is per-search, so non-default semantics should cost only
their extra ATI arithmetic, not a constant-factor penalty).

Writes a JSON perf record (default ``BENCH_semantics.json`` at the
repository root) with full environment provenance.

Usage::

    PYTHONPATH=src python benchmarks/bench_semantics.py
    PYTHONPATH=src python benchmarks/bench_semantics.py --scale small -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from _bench_env import bench_environment  # noqa: E402
from repro.bench.experiments import (  # noqa: E402
    ExperimentScale,
    build_environment,
    default_grid,
)
from repro.bench.harness import run_batch_query_set, run_query_set  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.core.engine import ITSPQEngine  # noqa: E402
from repro.core.query import ITSPQuery, SearchStatistics  # noqa: E402
from repro.core.semantics import (  # noqa: E402
    NO_WAIT,
    LatestDeparture,
    TimeWindow,
    WaitTolerant,
)
from repro.datasets.example_floorplan import (  # noqa: E402
    build_example_itgraph,
    example_fanout_endpoints,
)
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances  # noqa: E402

#: The benchmarked semantics, no-wait first (it is the overhead baseline).
SEMANTICS = (
    ("no-wait", NO_WAIT),
    ("wait-tolerant", WaitTolerant()),
    ("latest-departure", LatestDeparture()),
    ("time-window(600s)", TimeWindow(window_seconds=600.0)),
)

_STAT_KEYS = SearchStatistics.COUNTER_FIELDS


def example_workload():
    itgraph = build_example_itgraph()
    sources, targets = example_fanout_endpoints(itgraph)
    return itgraph, [
        ITSPQuery(source, target, query_time)
        for query_time in ("6:30", "9:00", "12:00", "21:00")
        for source in sources
        for target in targets
        if source is not target
    ]


def fig6_workload(scale: ExperimentScale):
    """The fig6 synthetic-mall workload (venue built once, shared)."""
    grid = default_grid(scale)
    environment = build_environment(scale, grid=grid)
    itgraph = environment.itgraph
    queries = []
    for query_time in ("8:00", "12:00", "20:00"):
        generated = generate_query_instances(
            itgraph,
            QueryWorkloadConfig(
                s2t_distance=grid.default_s2t,
                pairs=grid.query_pairs,
                query_time=query_time,
                seed=grid.workload_seed,
            ),
        )
        queries += [g.query for g in generated]
    return itgraph, queries


def assert_tier_parity(engine, queries):
    """Compiled single-query vs batch executor, bit-for-bit, before timing."""
    expected = [engine.run(query) for query in queries]
    for exp, act in zip(expected, engine.run_batch(queries)):
        if (
            exp.found != act.found
            or exp.length != act.length
            or any(
                getattr(exp.statistics, key) != getattr(act.statistics, key)
                for key in _STAT_KEYS
            )
        ):
            raise AssertionError(
                f"compiled/batch disagreement on {act.query} "
                f"[{act.query.semantics.name}]: {exp.length} vs {act.length}"
            )


def run_venue(venue_name, itgraph, queries, repetitions):
    """Benchmark every semantics on one venue; returns the result rows."""
    engine = ITSPQEngine(itgraph)
    engine.ensure_compiled()
    rows = []
    for name, semantics in SEMANTICS:
        tagged = [query.with_semantics(semantics) for query in queries]
        assert_tier_parity(engine, tagged)
        single = run_query_set(engine, tagged, "synchronous", repetitions=repetitions)
        batched = run_batch_query_set(
            engine, tagged, "synchronous", repetitions=repetitions
        )
        rows.append(
            {
                "venue": venue_name,
                "semantics": name,
                "queries": len(tagged),
                "found_fraction": round(single.found_fraction, 3),
                "p50_time_us": round(single.p50_time_us, 1),
                "mean_time_us": round(single.mean_time_us, 1),
                "mean_relaxations": round(single.mean_relaxations, 1),
                "batch_qps": round(len(tagged) / batched.best_seconds),
            }
        )
    baseline = rows[0]["p50_time_us"]
    for row in rows:
        row["overhead_vs_no_wait"] = round(row["p50_time_us"] / baseline, 2)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "paper"),
        choices=[scale.value for scale in ExperimentScale],
        help="fig6 venue/workload scale (default: paper, the Table II setting)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=5, help="timed repetitions per query"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=_REPO_ROOT / "BENCH_semantics.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)

    rows = []
    example_itgraph, example_queries = example_workload()
    rows += run_venue("example", example_itgraph, example_queries, args.repetitions)
    mall_itgraph, mall_queries = fig6_workload(ExperimentScale(args.scale))
    rows += run_venue("fig6-mall", mall_itgraph, mall_queries, args.repetitions)

    mall_overheads = {
        row["semantics"]: row["overhead_vs_no_wait"]
        for row in rows
        if row["venue"] == "fig6-mall"
    }
    record = {
        "benchmark": "bench_semantics",
        "workload": "fig6 query set re-tagged under every temporal semantics",
        "scale": args.scale,
        "environment": bench_environment(),
        "summary": {
            "fig6_mall_overhead_vs_no_wait": mall_overheads,
            "note": (
                "overhead is the per-semantics p50 latency divided by the "
                "no-wait p50 on the same venue and workload (synchronous "
                "method, compiled engine)"
            ),
        },
        "rows": rows,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")

    print(format_table(rows))
    print()
    overheads = ", ".join(
        f"{name} {ratio:.2f}x" for name, ratio in mall_overheads.items()
    )
    print(f"fig6-mall latency vs no-wait: {overheads}")
    print(f"\nperf record written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
