#!/usr/bin/env python
"""Service load generator: latency vs offered QPS against a live server.

Spawns ``python -m repro.service`` as a real subprocess (the same entry
point a deployment uses), waits for its ``listening on HOST:PORT`` line,
then drives **open-loop** arrivals at each configured QPS level: requests
fire on a fixed schedule regardless of how fast earlier ones complete, so
queueing delay shows up in the latencies instead of silently throttling the
generator (the coordinated-omission trap of closed-loop load tools).

Per level the record carries offered vs achieved QPS, latency p50/p99, and
the outcome split — answered 200s, shed 429s (admission control working as
designed under overload), and anything else (which fails the run).  The
server is then shut down with SIGINT and must print ``drained and closed``:
the graceful-lifecycle contract is part of the benchmark's acceptance, not
a separate test.

Two topologies:

* default — one service process serving every ``--venues`` entry; writes
  ``BENCH_service.json``;
* ``--shards N`` — the sharded comparison: the same mixed-venue workload is
  run against a single process *and* against a ``--shards N`` router, with
  a **parity sweep** first (every distinct query answered by both
  topologies must be bit-identical: reachability, length, door sequence and
  the deterministic search counters), then a **shard-kill phase** (one
  shard SIGKILLed under load: its venues must shed typed 503s while every
  other shard keeps answering 200, and the supervised respawn must restore
  bit-identical service).  Writes ``BENCH_shards.json`` with per-venue
  (= per-shard) and aggregate curves for both topologies.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_load.py
    PYTHONPATH=src python benchmarks/bench_service_load.py --qps 10,50 --duration 1 --out BENCH_service_ci.json
    PYTHONPATH=src python benchmarks/bench_service_load.py --shards 2 --venues a=example,b=example
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from _bench_env import bench_environment  # noqa: E402
from repro.datasets.example_floorplan import example_query_points  # noqa: E402


def percentile(samples, fraction):
    """Nearest-rank percentile (the service metrics use the same rule)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def parse_venues(text: str):
    """``--venues`` as a list of ``(name, "name=spec")`` entries."""
    entries = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        name = item.partition("=")[0]
        spec = item if "=" in item else f"{item}={item}"
        entries.append((name, spec))
    if not entries:
        raise SystemExit("--venues needs at least one entry")
    return entries


def request_bodies(venue_names):
    """A rotation of distinct queries over the running example, tagged per
    venue — the mixed-venue workload.  Returns ``[(venue, body_bytes)]``."""
    points = example_query_points()
    pairs = [
        (points["p3"], points["p4"], "9:00"),
        (points["p4"], points["p3"], "14:00"),
        (points["p1"], points["p2"], "10:30"),
        (points["p2"], points["p1"], "18:00"),
    ]
    bodies = []
    for venue in venue_names:
        for source, target, when in pairs:
            bodies.append(
                (
                    venue,
                    json.dumps(
                        {
                            "venue": venue,
                            "source": [source.x, source.y, source.floor],
                            "target": [target.x, target.y, target.floor],
                            "time": when,
                        }
                    ).encode(),
                )
            )
    # Interleave venues so every batch window sees mixed-venue traffic.
    bodies.sort(key=lambda entry: hash(entry[1]) % 97)
    return bodies


async def one_request(host: str, port: int, body: bytes, want_payload: bool = False):
    """One timed POST /query; returns ``(status, latency[, payload])``."""
    started = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (b"POST /query HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % len(body)) + body
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status = int(head.split(b" ")[1])
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length"):
                length = int(line.split(b":")[1])
        raw = await reader.readexactly(length) if length else b"{}"
        latency = time.perf_counter() - started
        if want_payload:
            return status, latency, json.loads(raw)
        return status, latency
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def get_json(host: str, port: int, path: str):
    """One GET; returns ``(status, payload_dict)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nContent-Length: 0\r\n\r\n".encode())
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status = int(head.split(b" ")[1])
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length"):
                length = int(line.split(b":")[1])
        raw = await reader.readexactly(length) if length else b"{}"
        return status, json.loads(raw)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def run_level(host: str, port: int, qps: float, duration: float, bodies):
    """Open-loop arrivals at ``qps`` for ``duration`` seconds.

    ``bodies`` are ``(venue, body_bytes)`` pairs; the record carries the
    aggregate curve plus a per-venue split (on a sharded deployment the
    venue split *is* the per-shard split — the map is static)."""
    interval = 1.0 / qps
    total = max(1, int(duration * qps))
    tasks = []
    venues_fired = []
    started = time.perf_counter()
    for index in range(total):
        delay = started + index * interval - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        venue, body = bodies[index % len(bodies)]
        venues_fired.append(venue)
        tasks.append(asyncio.ensure_future(one_request(host, port, body)))
    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    elapsed = time.perf_counter() - started

    latencies_ok = []
    per_venue = {venue: {"answered": 0, "shed": 0, "errors": 0, "latencies": []} for venue in set(venues_fired)}
    answered = shed = errors = 0
    for venue, outcome in zip(venues_fired, outcomes):
        bucket = per_venue[venue]
        if isinstance(outcome, BaseException):
            errors += 1
            bucket["errors"] += 1
            continue
        status, latency = outcome
        if status == 200:
            answered += 1
            bucket["answered"] += 1
            latencies_ok.append(latency)
            bucket["latencies"].append(latency)
        elif status == 429:
            shed += 1
            bucket["shed"] += 1
        else:
            errors += 1
            bucket["errors"] += 1
    venues_record = {}
    for venue, bucket in sorted(per_venue.items()):
        venues_record[venue] = {
            "answered": bucket["answered"],
            "shed": bucket["shed"],
            "errors": bucket["errors"],
            "latency_p50_seconds": percentile(bucket["latencies"], 0.50),
            "latency_p99_seconds": percentile(bucket["latencies"], 0.99),
        }
    return {
        "offered_qps": qps,
        "requests": total,
        "achieved_qps": total / elapsed if elapsed > 0 else None,
        "answered": answered,
        "shed": shed,
        "errors": errors,
        "shed_rate": shed / total,
        "latency_p50_seconds": percentile(latencies_ok, 0.50),
        "latency_p99_seconds": percentile(latencies_ok, 0.99),
        "latency_max_seconds": max(latencies_ok) if latencies_ok else None,
        "venues": venues_record,
    }


def start_server(args, venues, shards: int = 0) -> "tuple[subprocess.Popen, str, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src")
    command = [
        sys.executable,
        "-m",
        "repro.service",
        "--port",
        "0",
        "--cache",
        "eager",
        "--window-ms",
        str(args.window_ms),
        "--max-pending",
        str(args.max_pending),
        "--workers",
        str(args.workers),
    ]
    for _name, spec in venues:
        command.extend(("--venue", spec))
    if shards:
        command.extend(("--shards", str(shards), "--respawn-backoff", str(args.respawn_backoff)))
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    deadline = time.monotonic() + 120.0
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("listening on "):
            break
        if process.poll() is not None:
            raise SystemExit(
                f"server exited before listening: {process.stderr.read()[-2000:]}"
            )
    else:
        process.kill()
        raise SystemExit("server did not report listening within 120s")
    address = line.strip().split(" ")[-1]
    host, _, port = address.rpartition(":")
    return process, host, int(port)


def stop_server(process: subprocess.Popen) -> str:
    """SIGINT the server and return its remaining stdout (the drain line)."""
    process.send_signal(signal.SIGINT)
    try:
        stdout, stderr = process.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("server did not drain within 60s of SIGINT")
    if process.returncode != 0:
        raise SystemExit(f"server exited with {process.returncode}: {stderr[-2000:]}")
    return stdout


def comparable(payload):
    """The bit-identical projection of a ``/query`` answer: everything
    deterministic (venue, method, reachability, length, door sequence and
    the exact search counters), excluding wall-clock fields and the rung
    (the ladder may legitimately answer from different rungs)."""
    stats = payload.get("statistics", {})
    return {
        "venue": payload.get("venue"),
        "method": payload.get("method"),
        "found": payload.get("found"),
        "length": payload.get("length"),
        "doors": payload.get("doors"),
        "statistics": {
            key: stats.get(key)
            for key in ("doors_settled", "relaxations", "heap_pushes", "heap_pops")
        },
    }


async def parity_sweep(host, port, bodies):
    """Answer every distinct body once; returns ``{body: comparable}``."""
    answers = {}
    for venue, body in bodies:
        status, _latency, payload = await one_request(host, port, body, want_payload=True)
        if status != 200:
            raise SystemExit(f"parity sweep: {venue} answered {status}: {payload}")
        answers[body] = comparable(payload)
    return answers


async def shard_kill_phase(host, port, bodies, victim_venue, respawn_timeout, oracle):
    """SIGKILL the shard owning ``victim_venue`` under traffic and record
    the isolation + recovery story.  Healthy-shard venues must keep
    answering 200 bit-identically; the dead shard's venues must answer
    typed 503s until the supervised respawn lands; after recovery the dead
    venue must answer 200 bit-identically again."""
    from repro.testing.faults import shard_owning, sigkill_shard

    status, ready = await get_json(host, port, "/readyz")
    if status != 200:
        raise SystemExit(f"router not ready before kill phase: {ready}")
    shard_name, entry = shard_owning(ready["shards"], victim_venue)
    killed_pid = sigkill_shard(entry)
    await asyncio.sleep(0.05)  # let the supervisor notice the death

    dead = {"answered": 0, "isolated_503": 0, "other": 0}
    live = {"answered": 0, "isolated_503": 0, "other": 0}
    burst = 0
    deadline = time.monotonic() + 1.0
    while time.monotonic() < deadline:
        for venue, body in bodies:
            status, _latency, payload = await one_request(host, port, body, want_payload=True)
            bucket = dead if venue in entry["venues"] else live
            if status == 200:
                bucket["answered"] += 1
                if comparable(payload) != oracle[body]:
                    raise SystemExit(f"non-identical answer during kill phase: {payload}")
            elif status == 503 and payload.get("type") == "ServiceUnavailableError":
                bucket["isolated_503"] += 1
            else:
                bucket["other"] += 1
            burst += 1
        await asyncio.sleep(0.02)

    if live["isolated_503"] or live["other"]:
        raise SystemExit(f"healthy shards degraded during the kill: {live}")
    if not dead["isolated_503"]:
        raise SystemExit(f"dead shard's venues never shed a 503: {dead}")

    started = time.monotonic()
    from repro.testing.faults import await_router_ready

    await await_router_ready(host, port, timeout=respawn_timeout)
    recovery_seconds = time.monotonic() - started

    recovered = {"answered": 0, "other": 0}
    for venue, body in bodies:
        if venue not in entry["venues"]:
            continue
        status, _latency, payload = await one_request(host, port, body, want_payload=True)
        if status == 200 and comparable(payload) == oracle[body]:
            recovered["answered"] += 1
        else:
            recovered["other"] += 1
    if recovered["other"]:
        raise SystemExit(f"respawned shard is not bit-identical: {recovered}")

    return {
        "victim_shard": shard_name,
        "victim_venues": list(entry["venues"]),
        "killed_pid": killed_pid,
        "burst_requests": burst,
        "dead_venues": dead,
        "live_venues": live,
        "recovery_seconds": recovery_seconds,
        "recovered_requests": recovered,
    }


def drive_levels(host, port, levels, duration, bodies, label):
    results = []
    for qps in levels:
        result = asyncio.run(run_level(host, port, qps, duration, bodies))
        results.append(result)
        p50 = result["latency_p50_seconds"]
        p99 = result["latency_p99_seconds"]
        print(
            f"[{label}] qps={qps:>6.1f}  answered={result['answered']:>4}  "
            f"shed={result['shed']:>4}  errors={result['errors']:>2}  "
            f"p50={p50 * 1e3 if p50 is not None else float('nan'):8.2f}ms  "
            f"p99={p99 * 1e3 if p99 is not None else float('nan'):8.2f}ms"
        )
    total_errors = sum(result["errors"] for result in results)
    if total_errors:
        raise SystemExit(f"[{label}] {total_errors} request(s) failed with unexpected errors")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qps", default="20,50,100", help="comma-separated offered QPS levels")
    parser.add_argument("--duration", type=float, default=2.0, help="seconds per level")
    parser.add_argument(
        "--venues",
        default="example",
        help="comma-separated [NAME=]SPEC venue entries served (and queried, tagged per venue)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="compare a single process against a --shards N router on the same "
        "workload (parity sweep + shard-kill phase); writes BENCH_shards.json",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--window-ms", type=float, default=2.0)
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--respawn-backoff", type=float, default=0.2)
    parser.add_argument(
        "--respawn-timeout", type=float, default=60.0, help="kill-phase recovery budget"
    )
    parser.add_argument("--out", default=None, help="output path (default depends on --shards)")
    args = parser.parse_args()
    levels = [float(level) for level in args.qps.split(",") if level.strip()]
    venues = parse_venues(args.venues)
    bodies = request_bodies([name for name, _spec in venues])
    default_out = "BENCH_shards.json" if args.shards else "BENCH_service.json"
    out_path = Path(args.out) if args.out else _REPO_ROOT / default_out

    record = {
        "benchmark": "service_shards" if args.shards else "service_load",
        "environment": bench_environment(),
        "config": {
            "venues": [spec for _name, spec in venues],
            "shards": args.shards,
            "workers": args.workers,
            "window_ms": args.window_ms,
            "max_pending": args.max_pending,
            "duration_seconds": args.duration,
            "arrivals": "open-loop",
        },
    }

    # -- single-process topology (always measured: it is the whole story
    # without --shards, and the comparison baseline + parity oracle with it).
    process, host, port = start_server(args, venues)
    try:
        oracle = asyncio.run(parity_sweep(host, port, bodies))
        single_levels = drive_levels(host, port, levels, args.duration, bodies, "single")
    finally:
        stdout = stop_server(process)
    if "drained and closed" not in stdout:
        raise SystemExit(f"single-process server did not drain; stdout tail: {stdout[-500:]}")

    if not args.shards:
        record["levels"] = single_levels
        out_path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {out_path}")
        return

    # -- sharded topology: parity, curves, then the kill phase.
    process, host, port = start_server(args, venues, shards=args.shards)
    try:
        sharded_answers = asyncio.run(parity_sweep(host, port, bodies))
        mismatches = [
            body for body, answer in sharded_answers.items() if answer != oracle[body]
        ]
        if mismatches:
            raise SystemExit(
                f"{len(mismatches)} sharded answer(s) differ from the single process: "
                f"{mismatches[0]!r}"
            )
        print(f"[parity] {len(oracle)} distinct queries bit-identical across topologies")
        sharded_levels = drive_levels(host, port, levels, args.duration, bodies, "sharded")
        status, metrics = asyncio.run(get_json(host, port, "/metrics"))
        if status != 200:
            raise SystemExit(f"router /metrics answered {status}")
        kill_record = asyncio.run(
            shard_kill_phase(host, port, bodies, venues[0][0], args.respawn_timeout, oracle)
        )
        print(
            f"[kill] shard {kill_record['victim_shard']} SIGKILLed: "
            f"{kill_record['dead_venues']['isolated_503']} isolated 503s, "
            f"live venues clean, respawn in {kill_record['recovery_seconds']:.2f}s"
        )
    finally:
        stdout = stop_server(process)
    if "drained and closed" not in stdout:
        raise SystemExit(f"router did not drain; stdout tail: {stdout[-500:]}")
    print("router drained and closed cleanly")

    record["parity"] = {"queries": len(oracle), "identical": True}
    record["single_process"] = single_levels
    record["sharded"] = sharded_levels
    record["router_metrics"] = {
        "router": metrics.get("router"),
        "aggregate": metrics.get("aggregate"),
        "shards": {
            name: {key: entry.get(key) for key in ("state", "venues", "deaths", "respawns")}
            for name, entry in metrics.get("shards", {}).items()
        },
    }
    record["shard_kill"] = kill_record
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
