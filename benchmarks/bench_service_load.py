#!/usr/bin/env python
"""Service load generator: latency vs offered QPS against a live server.

Spawns ``python -m repro.service`` as a real subprocess (the same entry
point a deployment uses), waits for its ``listening on HOST:PORT`` line,
then drives **open-loop** arrivals at each configured QPS level: requests
fire on a fixed schedule regardless of how fast earlier ones complete, so
queueing delay shows up in the latencies instead of silently throttling the
generator (the coordinated-omission trap of closed-loop load tools).

Per level the record carries offered vs achieved QPS, latency p50/p99, and
the outcome split — answered 200s, shed 429s (admission control working as
designed under overload), and anything else (which fails the run).  The
server is then shut down with SIGINT and must print ``drained and closed``:
the graceful-lifecycle contract is part of the benchmark's acceptance, not
a separate test.

Writes ``BENCH_service.json`` at the repository root by default.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_load.py
    PYTHONPATH=src python benchmarks/bench_service_load.py --qps 10,50 --duration 1 --out BENCH_service_ci.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from _bench_env import bench_environment  # noqa: E402
from repro.datasets.example_floorplan import example_query_points  # noqa: E402


def percentile(samples, fraction):
    """Nearest-rank percentile (the service metrics use the same rule)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def request_bodies():
    """A small rotation of distinct queries over the running example."""
    points = example_query_points()
    pairs = [
        (points["p3"], points["p4"], "9:00"),
        (points["p4"], points["p3"], "14:00"),
        (points["p1"], points["p2"], "10:30"),
        (points["p2"], points["p1"], "18:00"),
    ]
    bodies = []
    for source, target, when in pairs:
        bodies.append(
            json.dumps(
                {
                    "source": [source.x, source.y, source.floor],
                    "target": [target.x, target.y, target.floor],
                    "time": when,
                }
            ).encode()
        )
    return bodies


async def one_request(host: str, port: int, body: bytes):
    """One timed POST /query; returns ``(status, latency_seconds)``."""
    started = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (b"POST /query HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % len(body)) + body
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status = int(head.split(b" ")[1])
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length"):
                length = int(line.split(b":")[1])
        if length:
            await reader.readexactly(length)
        return status, time.perf_counter() - started
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def run_level(host: str, port: int, qps: float, duration: float, bodies):
    """Open-loop arrivals at ``qps`` for ``duration`` seconds."""
    interval = 1.0 / qps
    total = max(1, int(duration * qps))
    tasks = []
    started = time.perf_counter()
    for index in range(total):
        delay = started + index * interval - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(one_request(host, port, bodies[index % len(bodies)]))
        )
    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    elapsed = time.perf_counter() - started

    latencies_ok = []
    answered = shed = errors = 0
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            errors += 1
            continue
        status, latency = outcome
        if status == 200:
            answered += 1
            latencies_ok.append(latency)
        elif status == 429:
            shed += 1
        else:
            errors += 1
    return {
        "offered_qps": qps,
        "requests": total,
        "achieved_qps": total / elapsed if elapsed > 0 else None,
        "answered": answered,
        "shed": shed,
        "errors": errors,
        "shed_rate": shed / total,
        "latency_p50_seconds": percentile(latencies_ok, 0.50),
        "latency_p99_seconds": percentile(latencies_ok, 0.99),
        "latency_max_seconds": max(latencies_ok) if latencies_ok else None,
    }


def start_server(args) -> "tuple[subprocess.Popen, str, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src")
    command = [
        sys.executable,
        "-m",
        "repro.service",
        "--venue",
        args.venue,
        "--port",
        "0",
        "--cache",
        "eager",
        "--window-ms",
        str(args.window_ms),
        "--max-pending",
        str(args.max_pending),
        "--workers",
        str(args.workers),
    ]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    deadline = time.monotonic() + 120.0
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("listening on "):
            break
        if process.poll() is not None:
            raise SystemExit(
                f"server exited before listening: {process.stderr.read()[-2000:]}"
            )
    else:
        process.kill()
        raise SystemExit("server did not report listening within 120s")
    address = line.strip().split(" ")[-1]
    host, _, port = address.rpartition(":")
    return process, host, int(port)


def stop_server(process: subprocess.Popen) -> str:
    """SIGINT the server and return its remaining stdout (the drain line)."""
    process.send_signal(signal.SIGINT)
    try:
        stdout, stderr = process.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("server did not drain within 60s of SIGINT")
    if process.returncode != 0:
        raise SystemExit(f"server exited with {process.returncode}: {stderr[-2000:]}")
    return stdout


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qps", default="20,50,100", help="comma-separated offered QPS levels")
    parser.add_argument("--duration", type=float, default=2.0, help="seconds per level")
    parser.add_argument("--venue", default="example")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--window-ms", type=float, default=2.0)
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--out", default=str(_REPO_ROOT / "BENCH_service.json"))
    args = parser.parse_args()
    levels = [float(level) for level in args.qps.split(",") if level.strip()]

    process, host, port = start_server(args)
    bodies = request_bodies()
    try:
        results = []
        for qps in levels:
            result = asyncio.run(run_level(host, port, qps, args.duration, bodies))
            results.append(result)
            p50 = result["latency_p50_seconds"]
            p99 = result["latency_p99_seconds"]
            print(
                f"qps={qps:>6.1f}  answered={result['answered']:>4}  "
                f"shed={result['shed']:>4}  errors={result['errors']:>2}  "
                f"p50={p50 * 1e3 if p50 is not None else float('nan'):8.2f}ms  "
                f"p99={p99 * 1e3 if p99 is not None else float('nan'):8.2f}ms"
            )
    finally:
        stdout = stop_server(process)

    if "drained and closed" not in stdout:
        raise SystemExit(f"server did not report a graceful drain; stdout tail: {stdout[-500:]}")
    print("server drained and closed cleanly")

    total_errors = sum(result["errors"] for result in results)
    if total_errors:
        raise SystemExit(f"{total_errors} request(s) failed with unexpected errors")

    record = {
        "benchmark": "service_load",
        "environment": bench_environment(),
        "config": {
            "venue": args.venue,
            "workers": args.workers,
            "window_ms": args.window_ms,
            "max_pending": args.max_pending,
            "duration_seconds": args.duration,
            "arrivals": "open-loop",
        },
        "levels": results,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
