"""Fixtures for the benchmark suite (see ``_bench_env`` for the helpers)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the sibling helper module importable regardless of which directory
# pytest is invoked from.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_env import bench_scale  # noqa: E402

from repro.bench.experiments import default_grid  # noqa: E402


@pytest.fixture(scope="session")
def grid():
    """The parameter grid (Table II analogue) for the selected scale."""
    return default_grid(bench_scale())
