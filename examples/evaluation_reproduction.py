"""Regenerate the paper's evaluation figures from the command line.

This is a thin, readable wrapper over :mod:`repro.bench`: it runs the four
figure experiments (and the two ablations) at the requested scale and prints
the series the paper plots, plus one-line comparisons of ITG/S vs ITG/A.

Run with::

    python examples/evaluation_reproduction.py                 # small scale (~1 minute)
    python examples/evaluation_reproduction.py --scale tiny    # seconds, for smoke tests
    python examples/evaluation_reproduction.py --scale paper   # full Table II setting
"""

from __future__ import annotations

import argparse

from repro.bench.experiments import EXPERIMENTS, ExperimentScale
from repro.bench.reporting import format_experiment, summarise_speedup

FIGURES = ("fig4", "fig5", "fig6", "fig7")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ExperimentScale],
        default="small",
        help="venue and workload scale (paper = full Table II setting)",
    )
    parser.add_argument(
        "--include-ablations",
        action="store_true",
        help="also run the ablation experiments beyond the paper's figures",
    )
    args = parser.parse_args()
    scale = ExperimentScale(args.scale)

    names = list(FIGURES) + (
        ["ablation-checks", "ablation-partition-once"] if args.include_ablations else []
    )
    for name in names:
        result = EXPERIMENTS[name](scale=scale)
        print(format_experiment(result))
        if name in ("fig5", "fig6"):
            print()
            print("  " + summarise_speedup(result, "ITG/S", "ITG/A"))
        print()
        print()


if __name__ == "__main__":
    main()
