"""Hospital navigation with visiting hours — the paper's motivating scenario.

The introduction motivates ITSPQ with doors whose availability depends on the
time of day, e.g. "doors leading to patient wards in a hospital may only open
during visiting hours".  This example models a small hospital floor:

* a public entrance hall and two corridors,
* wards behind doors that only open during visiting hours (10:00–12:00 and
  15:00–19:00),
* a staff-only (private) corridor that visitors must never be routed through,
  even when it would be shorter,
* a pharmacy and a cafeteria with their own opening hours.

It then answers the same visitor request at different times of day and shows
how the valid route changes — including the case where the only remaining
route is longer because the shortcut through the staff corridor is private.

Run with::

    python examples/hospital_visiting_hours.py
"""

from __future__ import annotations

from repro import CheckMethod, ITSPQEngine, IndoorPoint, IndoorSpaceBuilder, build_itgraph
from repro.bench.reporting import format_table
from repro.indoor.entities import PartitionCategory, PartitionType
from repro.temporal.schedule import DoorSchedule

VISITING_HOURS = [("10:00", "12:00"), ("15:00", "19:00")]


def build_hospital():
    """A single hospital floor: entrance, corridors, wards, staff area."""
    builder = IndoorSpaceBuilder("hospital-floor")
    # Entrance hall and the two public corridors.
    builder.add_rectangle_partition("entrance", 0, 0, 20, 10, category=PartitionCategory.LOBBY)
    builder.add_rectangle_partition("corridor-west", 0, 10, 10, 50, category=PartitionCategory.HALLWAY)
    builder.add_rectangle_partition("corridor-east", 30, 10, 40, 50, category=PartitionCategory.HALLWAY)
    # Staff-only corridor linking the two public corridors half-way.
    builder.add_rectangle_partition(
        "staff-corridor", 10, 28, 30, 34,
        partition_type=PartitionType.PRIVATE, category=PartitionCategory.OFFICE,
    )
    # Wards hang off the east corridor behind visiting-hours doors.
    builder.add_rectangle_partition("ward-a", 10, 38, 30, 50, category=PartitionCategory.WARD)
    builder.add_rectangle_partition("ward-b", 40, 10, 60, 30, category=PartitionCategory.WARD)
    # Pharmacy and cafeteria off the west corridor.
    builder.add_rectangle_partition("pharmacy", 10, 10, 22, 22, category=PartitionCategory.SHOP)
    builder.add_rectangle_partition("cafeteria", 40, 30, 60, 50, category=PartitionCategory.FOOD_COURT)

    builder.add_door("d-entrance-west", IndoorPoint(5, 10, 0), between=("entrance", "corridor-west"))
    builder.add_door("d-entrance-east", IndoorPoint(19, 10, 0), between=("entrance", "corridor-east"))
    builder.add_door("d-staff-west", IndoorPoint(10, 31, 0), between=("corridor-west", "staff-corridor"))
    builder.add_door("d-staff-east", IndoorPoint(30, 31, 0), between=("staff-corridor", "corridor-east"))
    builder.add_door("d-ward-a", IndoorPoint(10, 44, 0), between=("corridor-west", "ward-a"))
    builder.add_door("d-ward-a-east", IndoorPoint(30, 44, 0), between=("ward-a", "corridor-east"))
    builder.add_door("d-ward-b", IndoorPoint(40, 20, 0), between=("corridor-east", "ward-b"))
    builder.add_door("d-pharmacy", IndoorPoint(10, 16, 0), between=("corridor-west", "pharmacy"))
    builder.add_door("d-cafeteria", IndoorPoint(40, 40, 0), between=("corridor-east", "cafeteria"))
    space = builder.build()

    schedule = DoorSchedule.from_pairs(
        {
            # Ward doors follow visiting hours.
            "d-ward-a": VISITING_HOURS,
            "d-ward-a-east": VISITING_HOURS,
            "d-ward-b": VISITING_HOURS,
            # Pharmacy and cafeteria have their own business hours.
            "d-pharmacy": [("8:00", "17:00")],
            "d-cafeteria": [("7:00", "20:00")],
            # The hospital entrance closes overnight.
            "d-entrance-west": [("6:00", "22:00")],
            "d-entrance-east": [("6:00", "22:00")],
        }
    )
    return build_itgraph(space, schedule)


def main() -> None:
    itgraph = build_hospital()
    engine = ITSPQEngine(itgraph)

    lobby = IndoorPoint(10, 5, 0)        # visitor at the entrance
    ward_a_bed = IndoorPoint(20, 46, 0)  # patient bed in ward A
    cafeteria = IndoorPoint(50, 42, 0)

    print(f"Hospital IT-Graph: {itgraph.statistics()}")
    print()

    print("Visitor request: entrance -> bed in ward A")
    rows = []
    for time in ("7:00", "10:30", "13:00", "16:00", "21:30", "23:00"):
        result = engine.query(lobby, ward_a_bed, time, CheckMethod.SYNCHRONOUS)
        rows.append(
            {
                "query time": time,
                "answer": "no such routes" if not result.found else f"{result.length:.1f} m",
                "doors": " -> ".join(result.path.door_sequence) if result.found else "-",
            }
        )
    print(format_table(rows))
    print()

    print("Patient walk: ward A -> cafeteria (the staff corridor would be shorter but is private)")
    rows = []
    for time in ("10:30", "16:00"):
        result = engine.query(ward_a_bed, cafeteria, time)
        assert result.found
        assert "d-staff-west" not in result.path.door_sequence
        rows.append(
            {
                "query time": time,
                "length (m)": round(result.length, 1),
                "doors": " -> ".join(result.path.door_sequence),
                "valid": result.path.is_valid(itgraph),
            }
        )
    print(format_table(rows))
    print()

    print("Same request issued moments before the morning visiting hours end at 12:00")
    print("(the walk to the ward door takes about 30 seconds):")
    result = engine.query(lobby, ward_a_bed, "11:58")
    print(f"  11:58    -> {result.summary()}")
    result = engine.query(lobby, ward_a_bed, "11:59:45")
    print(f"  11:59:45 -> {result.summary()}")
    print("  (the second request fails: the ward door closes before the visitor arrives)")


if __name__ == "__main__":
    main()
