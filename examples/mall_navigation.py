"""Mall navigation over the synthetic multi-floor venue.

Generates a (reduced-size) version of the paper's synthetic shopping mall —
corridor grid, shops, anchor stores, staircases — assigns realistic opening
hours, and answers navigation requests across floors at different times of
day, showing how the valid route (and its length) changes as doors open and
close.

Run with::

    python examples/mall_navigation.py            # reduced venue (fast)
    python examples/mall_navigation.py --paper    # the full 5-floor Table II venue
"""

from __future__ import annotations

import argparse

from repro import CheckMethod, ITSPQEngine, build_itgraph
from repro.bench.reporting import format_table
from repro.geometry.point import IndoorPoint
from repro.synthetic.multifloor import MultiFloorConfig, generate_mall_venue
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances
from repro.synthetic.schedules import ScheduleConfig, generate_schedule


def build_venue(paper_scale: bool):
    config = MultiFloorConfig.paper_default() if paper_scale else MultiFloorConfig.small(floors=3)
    venue = generate_mall_venue(config, seed=7)
    schedule, checkpoints = generate_schedule(venue.space, ScheduleConfig(checkpoint_count=8))
    itgraph = build_itgraph(venue.space, schedule, validate=False)
    return venue, itgraph, checkpoints


def cross_floor_trip(venue, itgraph, engine):
    """Route between two shops on different floors across the day."""
    shops_by_floor = {}
    for floor, layout in venue.floor_layouts.items():
        for shop_id in layout.shops:
            partition = venue.space.partition(shop_id)
            if partition.polygon is not None and not partition.is_private:
                shops_by_floor.setdefault(floor, partition)
                break
    floors = sorted(shops_by_floor)
    source_partition = shops_by_floor[floors[0]]
    target_partition = shops_by_floor[floors[-1]]
    source = IndoorPoint(
        source_partition.polygon.centroid.x, source_partition.polygon.centroid.y, floors[0]
    )
    target = IndoorPoint(
        target_partition.polygon.centroid.x, target_partition.polygon.centroid.y, floors[-1]
    )

    print(
        f"Trip from {source_partition.partition_id} (floor {floors[0]}) "
        f"to {target_partition.partition_id} (floor {floors[-1]}):"
    )
    rows = []
    for hour in (4, 8, 10, 12, 16, 20, 23):
        result = engine.query(source, target, f"{hour}:00", CheckMethod.ASYNCHRONOUS)
        rows.append(
            {
                "query time": f"{hour}:00",
                "reachable": result.found,
                "length (m)": round(result.length, 1) if result.found else "-",
                "doors": result.path.door_count if result.found else "-",
                "staircases used": sum(
                    1 for d in (result.path.door_sequence if result.found else []) if "stair" in d
                ),
            }
        )
    print(format_table(rows))
    print()


def workload_summary(itgraph, engine):
    """Answer a δs2t-controlled workload with both methods and compare costs."""
    workload = generate_query_instances(
        itgraph, QueryWorkloadConfig(s2t_distance=300, pairs=5, query_time="12:00")
    )
    rows = []
    for method in (CheckMethod.SYNCHRONOUS, CheckMethod.ASYNCHRONOUS):
        for generated in workload:
            result = engine.run(generated.query, method=method)
            rows.append(
                {
                    "method": result.method_label,
                    "query": generated.query.label,
                    "length (m)": round(result.length, 1) if result.found else "-",
                    "time (us)": round(result.statistics.runtime_seconds * 1e6, 1),
                    "ATI probes": result.statistics.ati_probes,
                    "membership checks": result.statistics.membership_checks,
                }
            )
    print("Default workload (δs2t-controlled pairs) at 12:00:")
    print(format_table(rows))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true", help="use the full 5-floor paper-scale venue")
    args = parser.parse_args()

    venue, itgraph, checkpoints = build_venue(args.paper)
    print(f"Synthetic mall: {venue.space}")
    print(f"  IT-Graph: {itgraph.statistics()}")
    print(f"  checkpoint set T ({len(checkpoints)} instants): {checkpoints}")
    print()

    engine = ITSPQEngine(itgraph)
    cross_floor_trip(venue, itgraph, engine)
    workload_summary(itgraph, engine)


if __name__ == "__main__":
    main()
