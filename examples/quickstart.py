"""Quickstart: the paper's running example (Figure 1 + Table I).

Builds the reconstructed example venue, prints the Table I door schedule,
answers Example 1's queries with both ITG/S and ITG/A, and shows why a
temporal-variation-unaware shortest path is not good enough.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CheckMethod, ITSPQEngine, datasets, static_shortest_path
from repro.bench.reporting import format_table


def print_table_i() -> None:
    """Print the door schedule of the running example (Table I)."""
    schedule = datasets.build_example_schedule()
    rows = [
        {"door": door_id, "ATIs": str(atis)}
        for door_id, atis in sorted(schedule.items(), key=lambda item: int(item[0][1:]))
    ]
    print("Table I — Active Time Intervals of the example doors")
    print(format_table(rows))
    print()


def run_example_1(engine: ITSPQEngine) -> None:
    """Reproduce Example 1 of the paper."""
    points = datasets.example_query_points()
    print("Example 1 — ITSPQ(p3, p4, t)")
    for query_time in ("9:00", "23:30"):
        for method in (CheckMethod.SYNCHRONOUS, CheckMethod.ASYNCHRONOUS):
            result = engine.query(points["p3"], points["p4"], query_time, method)
            print(f"  t={query_time:>6}  {result.summary()}")
    print()


def show_why_static_search_fails(engine: ITSPQEngine) -> None:
    """A temporal-unaware search returns a route that is closed on arrival."""
    itgraph = engine.itgraph
    points = datasets.example_query_points()
    static = static_shortest_path(itgraph, points["p3"], points["p4"], "23:30", engine)
    print("Temporal-unaware baseline at 23:30 (the pre-ITSPQ state of the art):")
    print(f"  returns {static.path.describe()}")
    violations = static.path.validate(itgraph)
    for violation in violations:
        print(f"  but violates {violation}")
    print()


def main() -> None:
    itgraph = datasets.build_example_itgraph()
    print(f"Running example IT-Graph: {itgraph}")
    print(f"  statistics: {itgraph.statistics()}")
    print()

    print_table_i()

    engine = ITSPQEngine(itgraph)
    run_example_1(engine)
    show_why_static_search_fails(engine)

    # A normal mid-day navigation request, with per-hop arrival times.
    points = datasets.example_query_points()
    result = engine.query(points["p1"], points["p2"], "12:00")
    print("Route from the private office (p1) to shop v8 (p2) at 12:00:")
    for hop in result.path.hops:
        print(
            f"  cross {hop.door_id:>4} from {hop.from_partition:>4} into {hop.to_partition:>4} "
            f"after {hop.distance_from_source:6.1f} m (arrival {hop.arrival_time})"
        )
    print(f"  total length {result.length:.1f} m, arrival {result.path.arrival_time_at_target}")


if __name__ == "__main__":
    main()
