#!/usr/bin/env python
"""Docs integrity: every relative link in the repo's markdown must resolve.

Scans ``*.md`` at the repository root and under ``docs/`` for inline
markdown links (``[text](target)``) and checks that every **relative**
target exists on disk.  Skipped, deliberately:

* absolute URLs (``http://``, ``https://``, ``mailto:`` — any scheme);
* pure in-page anchors (``#section``);
* targets that resolve outside the repository root (the README's CI badge
  links point at ``../../actions/...`` on the GitHub host, not at files).

Anchors on relative links (``FILE.md#section``) are checked for the file
part only.  Exits non-zero listing every broken link; CI runs this in the
lint job (and ``tests/test_docs_integrity.py`` runs it in tier-1).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` with a non-empty, paren-free target; images too.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ``scheme:`` prefixes mark external targets (http, https, mailto, ...).
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def markdown_files() -> List[Path]:
    """The checked set: ``*.md`` at the repo root and under ``docs/``."""
    files = sorted(REPO_ROOT.glob("*.md"))
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return files


def broken_links(path: Path) -> List[Tuple[str, str]]:
    """Every ``(target, why)`` in ``path`` that fails the check."""
    problems = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if _SCHEME.match(target) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            continue  # escapes the repo (e.g. GitHub badge paths): not ours to check
        if not resolved.exists():
            problems.append((target, f"does not exist: {resolved}"))
    return problems


def main() -> int:
    failures = 0
    files = markdown_files()
    for path in files:
        for target, why in broken_links(path):
            failures += 1
            print(f"{path.relative_to(REPO_ROOT)}: broken link ({target}) — {why}")
    if failures:
        print(f"{failures} broken link(s) across {len(files)} markdown file(s)")
        return 1
    print(f"docs integrity OK: {len(files)} markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
