#!/usr/bin/env python
"""Perf gate: compiled must beat reference, batch must beat sequential.

Intended for CI/pre-merge use, on the paper's running-example floorplan
(Figure 1 / Table I):

1. **Compiled gate** — runs the example workload through the reference and
   the compiled engine for ITG/S and ITG/A, compares median query latencies
   via :func:`repro.bench.harness.run_query_set` and fails when the compiled
   fast path is not strictly faster (or the engines disagree on any answer).
2. **Batch gate** — runs a fan-out batch workload (every source to every
   target, the service shape batching is for) through the sequential loop
   and the :class:`~repro.core.batch.BatchExecutor` via
   :func:`repro.bench.harness.run_batch_query_set` and fails when batch
   execution is below ``--min-batch-speedup`` (default 1.5x) or disagrees
   with the sequential engine on any answer.

Usage::

    PYTHONPATH=src python scripts/check_perf.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.harness import run_batch_query_set, run_query_set  # noqa: E402
from repro.core.engine import ITSPQEngine  # noqa: E402
from repro.core.query import ITSPQuery  # noqa: E402
from repro.datasets.example_floorplan import (  # noqa: E402
    build_example_itgraph,
    example_fanout_endpoints,
    example_query_points,
)

METHODS = ("ITG/S", "ITG/A")
QUERY_TIMES = ("6:30", "9:00", "12:00", "15:55", "21:00")


def build_workload():
    """Every ordered pair of the example query points at several times."""
    points = example_query_points()
    names = sorted(points)
    return [
        ITSPQuery(points[a], points[b], query_time)
        for a in names
        for b in names
        if a != b
        for query_time in QUERY_TIMES
    ]


def build_batch_workload(itgraph):
    """Fan-out workload: every source to every public-partition target.

    This is the workload shape batch execution exists for — many queries
    sharing entrances and query times.  The endpoints come from
    :func:`example_fanout_endpoints`, shared with
    ``benchmarks/bench_batch_throughput.py`` so the gate measures exactly
    the workload ``BENCH_batch.json`` reports.
    """
    sources, targets = example_fanout_endpoints(itgraph)
    return [
        ITSPQuery(source, target, query_time)
        for source in sources
        for target in targets
        if source is not target
        for query_time in QUERY_TIMES
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repetitions", type=int, default=10, help="measurement repetitions per query"
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=1.5,
        help="required batch-vs-sequential throughput ratio (default 1.5)",
    )
    args = parser.parse_args(argv)

    itgraph = build_example_itgraph()
    reference = ITSPQEngine(itgraph, compiled=False)
    compiled_engine = ITSPQEngine(itgraph, compiled=True)
    compiled_engine.ensure_compiled()
    queries = build_workload()

    failures = []
    for method in METHODS:
        for query in queries:
            ref = reference.run(query, method=method)
            cmp = compiled_engine.run(query, method=method)
            if ref.found != cmp.found or ref.length != cmp.length:
                failures.append(f"{method}: engines disagree on {query}")

        ref_measure = run_query_set(reference, queries, method, repetitions=args.repetitions)
        cmp_measure = run_query_set(compiled_engine, queries, method, repetitions=args.repetitions)
        speedup = ref_measure.p50_time_us / cmp_measure.p50_time_us
        print(
            f"{method}: compiled p50 {cmp_measure.p50_time_us:.1f} us vs "
            f"reference p50 {ref_measure.p50_time_us:.1f} us -> {speedup:.2f}x"
        )
        if cmp_measure.p50_time_us >= ref_measure.p50_time_us:
            failures.append(
                f"{method}: compiled engine is not faster "
                f"({cmp_measure.p50_time_us:.1f} us >= {ref_measure.p50_time_us:.1f} us)"
            )

    # -- batch throughput gate -------------------------------------------------
    batch_queries = build_batch_workload(itgraph)
    for method in METHODS:
        sequential_results = compiled_engine.run_batch(batch_queries, method=method, batch=False)
        batch_results = compiled_engine.run_batch(batch_queries, method=method)
        for seq, bat in zip(sequential_results, batch_results):
            if seq.found != bat.found or seq.length != bat.length:
                failures.append(f"{method}: batch and sequential disagree on {seq.query}")
                break

        # Interleave the two modes rep by rep so CPU-state drift during the
        # measurement hits both equally and the ratio stays stable.
        sequential_best = batched_best = float("inf")
        for _ in range(args.repetitions):
            sequential = run_batch_query_set(
                compiled_engine, batch_queries, method, repetitions=1, warmup=0, batch=False
            )
            batched = run_batch_query_set(
                compiled_engine, batch_queries, method, repetitions=1, warmup=0, batch=True
            )
            sequential_best = min(sequential_best, sequential.best_seconds)
            batched_best = min(batched_best, batched.best_seconds)
        sequential_qps = len(batch_queries) / sequential_best
        batched_qps = len(batch_queries) / batched_best
        speedup = batched_qps / sequential_qps
        print(
            f"{method}: batch {batched_qps:,.0f} q/s vs sequential "
            f"{sequential_qps:,.0f} q/s -> {speedup:.2f}x "
            f"({len(batch_queries)} queries)"
        )
        if speedup < args.min_batch_speedup:
            failures.append(
                f"{method}: batch execution below the {args.min_batch_speedup:.2f}x gate "
                f"({speedup:.2f}x)"
            )

    if failures:
        for failure in failures:
            print(f"PERF GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        "perf gate passed: compiled beats reference and batch beats sequential "
        "on the example venue"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
