#!/usr/bin/env python
"""Perf gate: the compiled engine must beat the reference on the example venue.

Intended for CI/pre-merge use: runs the paper's running-example floorplan
(Figure 1 / Table I) through both engines for ITG/S and ITG/A, compares
median query latencies measured via :func:`repro.bench.harness.run_query_set`
and exits non-zero when the compiled fast path is not strictly faster (or
when the two engines disagree on any answer).

Usage::

    PYTHONPATH=src python scripts/check_perf.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.harness import run_query_set  # noqa: E402
from repro.core.engine import ITSPQEngine  # noqa: E402
from repro.core.query import ITSPQuery  # noqa: E402
from repro.datasets.example_floorplan import (  # noqa: E402
    build_example_itgraph,
    example_query_points,
)

METHODS = ("ITG/S", "ITG/A")
QUERY_TIMES = ("6:30", "9:00", "12:00", "15:55", "21:00")


def build_workload():
    """Every ordered pair of the example query points at several times."""
    points = example_query_points()
    names = sorted(points)
    return [
        ITSPQuery(points[a], points[b], query_time)
        for a in names
        for b in names
        if a != b
        for query_time in QUERY_TIMES
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repetitions", type=int, default=10, help="measurement repetitions per query"
    )
    args = parser.parse_args(argv)

    itgraph = build_example_itgraph()
    reference = ITSPQEngine(itgraph, compiled=False)
    compiled_engine = ITSPQEngine(itgraph, compiled=True)
    compiled_engine.ensure_compiled()
    queries = build_workload()

    failures = []
    for method in METHODS:
        for query in queries:
            ref = reference.run(query, method=method)
            cmp = compiled_engine.run(query, method=method)
            if ref.found != cmp.found or ref.length != cmp.length:
                failures.append(f"{method}: engines disagree on {query}")

        ref_measure = run_query_set(reference, queries, method, repetitions=args.repetitions)
        cmp_measure = run_query_set(compiled_engine, queries, method, repetitions=args.repetitions)
        speedup = ref_measure.p50_time_us / cmp_measure.p50_time_us
        print(
            f"{method}: compiled p50 {cmp_measure.p50_time_us:.1f} us vs "
            f"reference p50 {ref_measure.p50_time_us:.1f} us -> {speedup:.2f}x"
        )
        if cmp_measure.p50_time_us >= ref_measure.p50_time_us:
            failures.append(
                f"{method}: compiled engine is not faster "
                f"({cmp_measure.p50_time_us:.1f} us >= {ref_measure.p50_time_us:.1f} us)"
            )

    if failures:
        for failure in failures:
            print(f"PERF GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed: compiled engine is faster than the reference on the example venue")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
