#!/usr/bin/env python
"""Perf gate: compiled beats reference, batch beats sequential, parallel agrees.

Intended for CI/pre-merge use, on the paper's running-example floorplan
(Figure 1 / Table I):

1. **Compiled gates** — run the example workload through the reference and
   the compiled engine for ITG/S and ITG/A, compare median query latencies
   via :func:`repro.bench.harness.run_query_set` and fail when the compiled
   fast path is not strictly faster (or the engines disagree on any answer).
2. **Batch gates** — run a fan-out batch workload (every source to every
   target, the service shape batching is for) through the sequential loop
   and the :class:`~repro.core.batch.BatchExecutor` via
   :func:`repro.bench.harness.run_batch_query_set` and fail when batch
   execution is below ``--min-batch-speedup`` (default 1.5x) or disagrees
   with the sequential engine on any answer.
3. **Cache gates** — answer the workload through an engine with the
   interval-keyed shortest-path-tree cache enabled (eager admission) and
   fail when any cached answer — found flag, length or **any**
   ``SearchStatistics`` counter — differs from the fresh compiled answer
   (all four TV-check methods), or when the median warm-hit latency is not
   at least ``--min-cache-speedup`` (default 1.25x) below the cold compiled
   median for ITG/S and ITG/A.  The floor is deliberately modest: on the
   tiny example venue a cold search is already tens of microseconds, so the
   gate only proves warm hits beat cold searches at all — the headline
   warm-path speedup is measured on the clustered mall workload by
   ``benchmarks/bench_cache_hit.py`` (``BENCH_cache.json``).
4. **Semantics gates** — re-tag the example workload under every temporal
   semantics (no-wait, wait-tolerant, latest-departure, a 10-minute time
   window) and fail when the reference engine, the compiled engine and the
   batch executor disagree on any answer — found flag, length or **any**
   ``SearchStatistics`` counter.  This is the cross-tier contract of the
   pluggable-semantics kernel (:mod:`repro.core.semantics`): one probe
   closure serves every tier, so a drift between tiers is a kernel bug.
5. **Parallel gates** (``--workers N``, N > 1) — run the same fan-out
   workload through the :class:`~repro.core.parallel.ParallelBatchExecutor`
   and fail on any disagreement with the sequential engine (results must be
   bit-identical including statistics).  Throughput is gated only when
   ``--min-parallel-speedup`` is above zero: parallel speedup depends on the
   host's core count, so CI keeps it correctness-only (like the relaxed
   batch ratio) while dedicated multi-core hardware can enforce a floor.

Every check runs to completion and the script always prints one summary
table covering all of them, so a CI log shows every regression at once
instead of stopping at the first failed gate; the exit status is non-zero
when any check failed.  A gate that *crashes* (rather than measuring a
regression) is reported the same way — one ``FAIL`` row carrying a one-line
``ExceptionType: message`` diagnosis instead of a traceback — so the
summary table stays the single place to read the outcome.  The parallel
gates additionally assert execution *health*: the run's
:class:`~repro.core.parallel.ExecutionReport` must be clean (zero retries,
zero fallbacks, zero respawns), so a pool that silently limps through on
its degradation ladder fails the gate even though its answers are exact.

Usage::

    PYTHONPATH=src python scripts/check_perf.py
    PYTHONPATH=src python scripts/check_perf.py --workers 2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.harness import run_batch_query_set, run_query_set  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.core.cache import CacheConfig  # noqa: E402
from repro.core.engine import ITSPQEngine  # noqa: E402
from repro.core.query import ITSPQuery, SearchStatistics  # noqa: E402
from repro.core.semantics import (  # noqa: E402
    NO_WAIT,
    LatestDeparture,
    TimeWindow,
    WaitTolerant,
)
from repro.datasets.example_floorplan import (  # noqa: E402
    build_example_itgraph,
    example_fanout_endpoints,
    example_query_points,
)

METHODS = ("ITG/S", "ITG/A")
#: The cache-correctness gate covers every TV-check method the cache serves.
CACHE_METHODS = ("ITG/S", "ITG/A", "static", "query-time")
QUERY_TIMES = ("6:30", "9:00", "12:00", "15:55", "21:00")

#: Statistics fields the parallel gate compares (everything but runtime).
_STAT_KEYS = SearchStatistics.COUNTER_FIELDS

#: Every temporal semantics the cross-tier semantics gate covers.
SEMANTICS = (
    ("no-wait", NO_WAIT),
    ("wait-tolerant", WaitTolerant()),
    ("latest-departure", LatestDeparture()),
    ("time-window(600s)", TimeWindow(window_seconds=600.0)),
)


def build_workload():
    """Every ordered pair of the example query points at several times."""
    points = example_query_points()
    names = sorted(points)
    return [
        ITSPQuery(points[a], points[b], query_time)
        for a in names
        for b in names
        if a != b
        for query_time in QUERY_TIMES
    ]


def build_batch_workload(itgraph):
    """Fan-out workload: every source to every public-partition target.

    This is the workload shape batch execution exists for — many queries
    sharing entrances and query times.  The endpoints come from
    :func:`example_fanout_endpoints`, shared with
    ``benchmarks/bench_batch_throughput.py`` so the gate measures exactly
    the workload ``BENCH_batch.json`` reports.
    """
    sources, targets = example_fanout_endpoints(itgraph)
    return [
        ITSPQuery(source, target, query_time)
        for source in sources
        for target in targets
        if source is not target
        for query_time in QUERY_TIMES
    ]


class GateReport:
    """Collects every check's outcome; one summary table at the end."""

    def __init__(self) -> None:
        self.checks = []

    def record(self, name: str, passed: bool, measured: str = "", required: str = "") -> None:
        self.checks.append(
            {
                "check": name,
                "status": "ok" if passed else "FAIL",
                "measured": measured,
                "required": required,
            }
        )
        suffix = f" (required {required})" if required else ""
        print(f"[{'ok' if passed else 'FAIL'}] {name}: {measured}{suffix}")

    @property
    def failures(self):
        return [check for check in self.checks if check["status"] != "ok"]

    def summary_table(self) -> str:
        return format_table(self.checks, columns=("check", "status", "measured", "required"))


def run_gate(report: GateReport, name: str, gate, *args) -> None:
    """Run one gate; a crash becomes a FAIL row with a one-line diagnosis."""
    try:
        gate(report, *args)
    except Exception as exc:  # noqa: BLE001 - the diagnosis row is the point
        report.record(
            f"{name} gate crashed",
            False,
            f"{type(exc).__name__}: {exc}",
            "gate runs to completion",
        )


def check_compiled(report: GateReport, reference, compiled_engine, queries, repetitions) -> None:
    for method in METHODS:
        disagreements = 0
        for query in queries:
            ref = reference.run(query, method=method)
            cmp = compiled_engine.run(query, method=method)
            if ref.found != cmp.found or ref.length != cmp.length:
                disagreements += 1
        report.record(
            f"{method} compiled/reference agreement",
            disagreements == 0,
            f"{disagreements} disagreements on {len(queries)} queries",
            "0 disagreements",
        )

        ref_measure = run_query_set(reference, queries, method, repetitions=repetitions)
        cmp_measure = run_query_set(compiled_engine, queries, method, repetitions=repetitions)
        speedup = ref_measure.p50_time_us / cmp_measure.p50_time_us
        report.record(
            f"{method} compiled speedup",
            cmp_measure.p50_time_us < ref_measure.p50_time_us,
            f"{speedup:.2f}x (p50 {cmp_measure.p50_time_us:.1f} us vs {ref_measure.p50_time_us:.1f} us)",
            "> 1.00x",
        )


def check_batch(report: GateReport, compiled_engine, batch_queries, repetitions, min_speedup) -> None:
    for method in METHODS:
        sequential_results = compiled_engine.run_batch(batch_queries, method=method, batch=False)
        batch_results = compiled_engine.run_batch(batch_queries, method=method)
        disagreements = sum(
            1
            for seq, bat in zip(sequential_results, batch_results)
            if seq.found != bat.found or seq.length != bat.length
        )
        report.record(
            f"{method} batch/sequential agreement",
            disagreements == 0,
            f"{disagreements} disagreements on {len(batch_queries)} queries",
            "0 disagreements",
        )

        # Interleave the two modes rep by rep so CPU-state drift during the
        # measurement hits both equally and the ratio stays stable.
        sequential_best = batched_best = float("inf")
        for _ in range(repetitions):
            sequential = run_batch_query_set(
                compiled_engine, batch_queries, method, repetitions=1, warmup=0, batch=False
            )
            batched = run_batch_query_set(
                compiled_engine, batch_queries, method, repetitions=1, warmup=0, batch=True
            )
            sequential_best = min(sequential_best, sequential.best_seconds)
            batched_best = min(batched_best, batched.best_seconds)
        sequential_qps = len(batch_queries) / sequential_best
        batched_qps = len(batch_queries) / batched_best
        speedup = batched_qps / sequential_qps
        report.record(
            f"{method} batch speedup",
            speedup >= min_speedup,
            f"{speedup:.2f}x ({batched_qps:,.0f} vs {sequential_qps:,.0f} q/s)",
            f">= {min_speedup:.2f}x",
        )


def check_cache(report: GateReport, itgraph, queries, repetitions, min_speedup) -> None:
    import time as _time
    from statistics import median

    fresh_engine = ITSPQEngine(itgraph)
    cached_engine = ITSPQEngine(itgraph, cache=CacheConfig(mode="eager", max_entries=1024))
    for method in CACHE_METHODS:
        disagreements = 0
        for query in queries:
            fresh = fresh_engine.run(query, method=method)
            first = cached_engine.run(query, method=method)  # records the tree
            warm = cached_engine.run(query, method=method)  # guaranteed warm hit
            for cached in (first, warm):
                if (
                    fresh.found != cached.found
                    or fresh.length != cached.length
                    or any(
                        getattr(fresh.statistics, key) != getattr(cached.statistics, key)
                        for key in _STAT_KEYS
                    )
                ):
                    disagreements += 1
        report.record(
            f"{method} cached/fresh agreement",
            disagreements == 0,
            f"{disagreements} disagreements on {2 * len(queries)} cached answers",
            "0 disagreements (incl. statistics)",
        )

    for method in METHODS:
        # Everything is cached by now: time warm hits against cold searches,
        # interleaved per repetition so CPU-state drift hits both equally.
        cold_times, warm_times = [], []
        for _ in range(repetitions):
            for query in queries:
                started = _time.perf_counter()
                fresh_engine.run(query, method=method)
                cold_times.append(_time.perf_counter() - started)
                started = _time.perf_counter()
                cached_engine.run(query, method=method)
                warm_times.append(_time.perf_counter() - started)
        speedup = median(cold_times) / median(warm_times)
        report.record(
            f"{method} warm-hit speedup",
            speedup >= min_speedup,
            f"{speedup:.2f}x (median {median(warm_times) * 1e6:.1f} us "
            f"vs cold {median(cold_times) * 1e6:.1f} us)",
            f">= {min_speedup:.2f}x",
        )

    stats = cached_engine.cache_stats
    report.record(
        "cache hit accounting",
        stats is not None and stats["hits"] > 0 and stats["trees_built"] > 0,
        f"{stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['trees_built']} trees, {stats['evictions']} evictions",
        "> 0 hits and > 0 trees built",
    )


def check_semantics(report: GateReport, itgraph, queries) -> None:
    """Reference vs compiled vs batch under every temporal semantics, with
    strict statistics comparison — the pluggable-kernel cross-tier gate."""
    reference = ITSPQEngine(itgraph, compiled=False)
    compiled_engine = ITSPQEngine(itgraph, compiled=True)
    for name, semantics in SEMANTICS:
        tagged = [query.with_semantics(semantics) for query in queries]
        ref_results = [reference.run(query) for query in tagged]
        cmp_results = [compiled_engine.run(query) for query in tagged]
        batch_results = compiled_engine.run_batch(tagged)
        disagreements = 0
        for ref, cmp, bat in zip(ref_results, cmp_results, batch_results):
            for other in (cmp, bat):
                if (
                    ref.found != other.found
                    or ref.length != other.length
                    or any(
                        getattr(ref.statistics, key) != getattr(other.statistics, key)
                        for key in _STAT_KEYS
                    )
                ):
                    disagreements += 1
        found = sum(1 for ref in ref_results if ref.found)
        report.record(
            f"{name} cross-tier agreement",
            disagreements == 0,
            f"{disagreements} disagreements on {len(tagged)} queries "
            f"x 2 tiers ({found} routes found)",
            "0 disagreements (incl. statistics)",
        )


def check_parallel(
    report: GateReport, compiled_engine, batch_queries, repetitions, workers, min_speedup
) -> None:
    for method in METHODS:
        sequential_results = compiled_engine.run_batch(batch_queries, method=method, batch=False)
        parallel_results = compiled_engine.run_batch(batch_queries, method=method, workers=workers)
        disagreements = 0
        for seq, par in zip(sequential_results, parallel_results):
            if seq.found != par.found or seq.length != par.length:
                disagreements += 1
                continue
            if any(
                getattr(seq.statistics, key) != getattr(par.statistics, key)
                for key in _STAT_KEYS
            ):
                disagreements += 1
        report.record(
            f"{method} parallel({workers})/sequential agreement",
            disagreements == 0,
            f"{disagreements} disagreements on {len(batch_queries)} queries",
            "0 disagreements (incl. statistics)",
        )
        # The agreement run's ExecutionReport: exact answers are necessary
        # but not sufficient — the pool must also have stayed on its top
        # rung (no retries, no respawns, no in-process fallbacks).
        health = compiled_engine.last_execution_report
        report.record(
            f"{method} parallel({workers}) execution health",
            health is not None and health.clean,
            health.summary() if health is not None else "no execution report",
            "clean (0 retries/respawns/fallbacks)",
        )

        batched_best = parallel_best = float("inf")
        for _ in range(repetitions):
            batched = run_batch_query_set(
                compiled_engine, batch_queries, method, repetitions=1, warmup=0, batch=True
            )
            parallel = run_batch_query_set(
                compiled_engine,
                batch_queries,
                method,
                repetitions=1,
                warmup=0,
                workers=workers,
            )
            batched_best = min(batched_best, batched.best_seconds)
            parallel_best = min(parallel_best, parallel.best_seconds)
        speedup = batched_best / parallel_best
        report.record(
            f"{method} parallel({workers}) speedup",
            speedup >= min_speedup,
            f"{speedup:.2f}x vs 1-process batch",
            f">= {min_speedup:.2f}x" if min_speedup > 0 else "(informational)",
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repetitions", type=int, default=10, help="measurement repetitions per query"
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=1.5,
        help="required batch-vs-sequential throughput ratio (default 1.5)",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=1.25,
        help="required warm-hit-vs-cold median latency ratio (default 1.25; "
        "the example venue's cold searches are already microseconds, so this "
        "is a regression floor — BENCH_cache.json carries the headline)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also gate the multiprocess executor with this many workers (0 = skip)",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=0.0,
        help="required parallel-vs-batch throughput ratio; 0 keeps the parallel "
        "gate correctness-only (the CI default — speedup depends on core count)",
    )
    args = parser.parse_args(argv)
    if args.workers == 1 or args.workers < 0:
        parser.error("--workers must be >= 2 to exercise the pool (0 skips the parallel gates)")

    itgraph = build_example_itgraph()
    reference = ITSPQEngine(itgraph, compiled=False)
    compiled_engine = ITSPQEngine(itgraph, compiled=True)
    compiled_engine.ensure_compiled()

    report = GateReport()
    try:
        run_gate(
            report,
            "compiled",
            check_compiled,
            reference,
            compiled_engine,
            build_workload(),
            args.repetitions,
        )
        batch_queries = build_batch_workload(itgraph)
        run_gate(
            report,
            "batch",
            check_batch,
            compiled_engine,
            batch_queries,
            args.repetitions,
            args.min_batch_speedup,
        )
        run_gate(
            report,
            "cache",
            check_cache,
            itgraph,
            build_workload(),
            args.repetitions,
            args.min_cache_speedup,
        )
        run_gate(
            report,
            "semantics",
            check_semantics,
            itgraph,
            build_workload(),
        )
        if args.workers > 1:
            run_gate(
                report,
                "parallel",
                check_parallel,
                compiled_engine,
                batch_queries,
                args.repetitions,
                args.workers,
                args.min_parallel_speedup,
            )
    finally:
        compiled_engine.close()

    print()
    print(report.summary_table())
    failures = report.failures
    if failures:
        print()
        for failure in failures:
            print(
                f"PERF GATE FAILED: {failure['check']} — {failure['measured']} "
                f"(required {failure['required']})",
                file=sys.stderr,
            )
        return 1
    print()
    print(f"perf gate passed: all {len(report.checks)} checks ok on the example venue")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
