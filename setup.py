"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in editable mode on machines without the
``wheel`` package (offline environments where PEP 660 editable wheels cannot
be built): ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
