"""Reproduction of *Shortest Path Queries for Indoor Venues with Temporal
Variations* (Liu et al., ICDE 2020).

The library answers **Indoor Temporal-variation aware Shortest Path Queries
(ITSPQ)**: shortest indoor routes that only cross doors open at the moment
the traveller reaches them and that avoid private partitions.

Quickstart
----------
>>> from repro import datasets, ITSPQEngine
>>> itgraph = datasets.build_example_itgraph()
>>> points = datasets.example_query_points()
>>> engine = ITSPQEngine(itgraph)
>>> result = engine.query(points["p3"], points["p4"], "9:00", method="synchronous")
>>> result.path.door_sequence
['d18']

Package map
-----------
``repro.core``
    The paper's contribution: IT-Graph, ``Graph_Update`` snapshots, the
    ITG/S and ITG/A check strategies and the ITSPQ engine.
``repro.indoor`` / ``repro.temporal`` / ``repro.geometry``
    The substrates: indoor accessibility model, Active Time Intervals and
    checkpoints, planar geometry.
``repro.synthetic``
    Generators reproducing the paper's synthetic evaluation data (multi-floor
    mall, opening-hours model, δs2t-controlled query workloads).
``repro.datasets``
    The Figure 1 / Table I running example.
``repro.bench``
    The experiment harness that regenerates every figure of the evaluation.
``repro.io``
    JSON serialisation of venues, schedules and workloads.
"""

from repro import datasets, geometry, indoor, temporal
from repro.constants import WALKING_SPEED_KMH, WALKING_SPEED_MPS
from repro.core import (
    AsynchronousCheck,
    CacheConfig,
    CheckMethod,
    GraphSnapshot,
    GraphUpdater,
    ITGraph,
    ITSPQEngine,
    ITSPQuery,
    IndoorPath,
    QueryResult,
    SearchDeadline,
    StaticCheck,
    SynchronousCheck,
    build_itgraph,
    query_time_snapshot_path,
    static_shortest_path,
)
from repro.exceptions import (
    ChunkTimeoutError,
    CorruptPayloadError,
    DeadlineExceededError,
    InvalidGeometryError,
    InvalidTimeError,
    NoPathExistsError,
    ParallelExecutionError,
    QueryError,
    ReproError,
    SerializationError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    TopologyError,
    WorkerCrashError,
)
from repro.geometry import IndoorPoint, Point2D
from repro.indoor import (
    Door,
    DoorType,
    IndoorSpace,
    IndoorSpaceBuilder,
    Partition,
    PartitionType,
)
from repro.temporal import ATISet, CheckpointSet, DoorSchedule, TimeInterval, TimeOfDay

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # constants
    "WALKING_SPEED_KMH",
    "WALKING_SPEED_MPS",
    # geometry
    "Point2D",
    "IndoorPoint",
    # temporal
    "TimeOfDay",
    "TimeInterval",
    "ATISet",
    "CheckpointSet",
    "DoorSchedule",
    # indoor
    "Door",
    "DoorType",
    "Partition",
    "PartitionType",
    "IndoorSpace",
    "IndoorSpaceBuilder",
    # core
    "ITGraph",
    "build_itgraph",
    "GraphUpdater",
    "GraphSnapshot",
    "SynchronousCheck",
    "AsynchronousCheck",
    "StaticCheck",
    "ITSPQEngine",
    "CheckMethod",
    "ITSPQuery",
    "QueryResult",
    "IndoorPath",
    "CacheConfig",
    "SearchDeadline",
    "static_shortest_path",
    "query_time_snapshot_path",
    # exceptions
    "ReproError",
    "InvalidTimeError",
    "InvalidGeometryError",
    "TopologyError",
    "QueryError",
    "NoPathExistsError",
    "SerializationError",
    "CorruptPayloadError",
    "DeadlineExceededError",
    "ParallelExecutionError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    # subpackages
    "datasets",
    "geometry",
    "indoor",
    "temporal",
]
