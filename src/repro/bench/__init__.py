"""Benchmark harness regenerating every figure of the paper's evaluation.

The paper's evaluation (Section III) consists of four result figures, all on
the synthetic multi-floor mall:

* **Figure 4** — search time vs. checkpoint-set size ``|T|`` (at t = 12:00
  and t = 8:00);
* **Figure 5** — search time vs. source-to-target distance δs2t;
* **Figure 6** — search time vs. query time t over the day;
* **Figure 7** — memory cost vs. query time t over the day;

plus the two setup tables (Table I: the example ATIs; Table II: the parameter
grid).  :mod:`repro.bench.experiments` defines one experiment per figure;
:mod:`repro.bench.harness` runs query sets with repetition and aggregates
time/memory; :mod:`repro.bench.reporting` prints the series the paper plots.
``python -m repro.bench <experiment>`` runs any of them from the command
line.
"""

from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentScale,
    default_grid,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
    experiment_ablation_checks,
    experiment_ablation_partition_once,
)
from repro.bench.harness import (
    BatchThroughputMeasurement,
    ExperimentResult,
    QuerySetMeasurement,
    run_batch_query_set,
    run_query_set,
)
from repro.bench.memory import deep_sizeof, measure_peak_memory
from repro.bench.reporting import format_experiment, format_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentScale",
    "default_grid",
    "experiment_fig4",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_ablation_checks",
    "experiment_ablation_partition_once",
    "ExperimentResult",
    "QuerySetMeasurement",
    "BatchThroughputMeasurement",
    "run_query_set",
    "run_batch_query_set",
    "deep_sizeof",
    "measure_peak_memory",
    "format_experiment",
    "format_table",
]
