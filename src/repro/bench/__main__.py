"""Command-line entry point for the benchmark harness.

Examples
--------
Regenerate Figure 6 at the default (small) scale::

    python -m repro.bench fig6

Run the full paper-scale sweep of Figure 4::

    python -m repro.bench fig4 --scale paper

Run every experiment and write the tables to a file::

    python -m repro.bench all --output results.txt
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.bench.experiments import EXPERIMENTS, ExperimentScale
from repro.bench.reporting import format_experiment


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the figures of the ITSPQ paper's evaluation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every figure and ablation)",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ExperimentScale],
        default=ExperimentScale.SMALL.value,
        help="venue/workload scale (default: small; 'paper' is the full Table II setting)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the rendered tables to this file",
    )
    return parser.parse_args(argv)


def main(argv: List[str] = None) -> int:  # type: ignore[assignment]
    """Run the requested experiment(s) and print their series."""
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    scale = ExperimentScale(args.scale)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    sections = []
    for name in names:
        result = EXPERIMENTS[name](scale=scale)
        rendered = format_experiment(result)
        print(rendered)
        print()
        sections.append(rendered)

    if args.output is not None:
        args.output.write_text("\n\n".join(sections) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
