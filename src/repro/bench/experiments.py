"""Experiment definitions: one per figure of the paper's evaluation.

Every experiment follows the paper's protocol (Table II parameter grid, five
query pairs per setting, ten repetitions, 12:00 default query time) but can
be run at three scales:

``tiny``
    A one-floor miniature venue used by the test-suite; seconds to run.
``small`` (default)
    A two-floor mid-size venue; the full parameter sweeps finish in well
    under a minute while preserving the qualitative shapes of the figures.
``paper``
    The paper's setting: five 1368 m x 1368 m floors with ≈700 partitions and
    ≈1000 doors, δs2t from 1100 m to 1900 m.

The defaults are in bold in Table II: ``|T| = 8``, ``δs2t = 1500 m``,
``t = 12:00`` — the ``ParameterGrid`` objects below carry the scaled
equivalents.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult, run_query_set
from repro.core.engine import CheckMethod, ITSPQEngine
from repro.core.itgraph import ITGraph, build_itgraph
from repro.core.query import ITSPQuery
from repro.synthetic.multifloor import MallVenue, MultiFloorConfig, generate_mall_venue
from repro.synthetic.floorplan import MallFloorConfig
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances
from repro.synthetic.schedules import ScheduleConfig, generate_schedule


class ExperimentScale(enum.Enum):
    """Venue / workload scale at which an experiment is run."""

    TINY = "tiny"
    SMALL = "small"
    PAPER = "paper"


@dataclass
class ParameterGrid:
    """The experiment parameter grid (the reproduction of Table II)."""

    checkpoint_counts: Sequence[int]
    s2t_distances: Sequence[float]
    query_times: Sequence[str]
    default_checkpoints: int
    default_s2t: float
    default_time: str = "12:00"
    query_pairs: int = 5
    repetitions: int = 10
    venue_config: MultiFloorConfig = field(default_factory=MultiFloorConfig)
    venue_seed: int = 7
    schedule_seed: int = 11
    workload_seed: int = 23


def default_grid(scale: ExperimentScale = ExperimentScale.SMALL) -> ParameterGrid:
    """The parameter grid for a given scale.

    At ``paper`` scale this is exactly Table II; the smaller scales shrink the
    venue and the δs2t values proportionally so that query paths still span a
    large fraction of the venue.
    """
    if scale is ExperimentScale.PAPER:
        return ParameterGrid(
            checkpoint_counts=(4, 8, 12, 16),
            s2t_distances=(1100, 1300, 1500, 1700, 1900),
            query_times=[f"{hour}:00" for hour in range(0, 24, 2)],
            default_checkpoints=8,
            default_s2t=1500,
            venue_config=MultiFloorConfig.paper_default(),
        )
    if scale is ExperimentScale.SMALL:
        return ParameterGrid(
            checkpoint_counts=(4, 8, 12, 16),
            s2t_distances=(200, 300, 400, 500, 600),
            query_times=[f"{hour}:00" for hour in range(0, 24, 2)],
            default_checkpoints=8,
            default_s2t=400,
            query_pairs=5,
            repetitions=5,
            venue_config=MultiFloorConfig.small(floors=2),
        )
    return ParameterGrid(
        checkpoint_counts=(4, 8),
        s2t_distances=(100, 200),
        query_times=("8:00", "12:00", "22:00"),
        default_checkpoints=4,
        default_s2t=150,
        query_pairs=2,
        repetitions=2,
        venue_config=MultiFloorConfig(
            floors=1,
            staircases_per_floor_pair=0,
            floor_config=MallFloorConfig(
                side=300.0,
                corridors=2,
                corridor_cells=3,
                shop_depth=25.0,
                shops_per_row=6,
                double_door_fraction=0.3,
            ),
        ),
    )


@dataclass
class BenchmarkEnvironment:
    """A ready-to-query environment: venue, schedule, IT-Graph, engine, workload."""

    grid: ParameterGrid
    venue: MallVenue
    itgraph: ITGraph
    engine: ITSPQEngine
    checkpoint_count: int
    queries: List[ITSPQuery]


_VENUE_CACHE: Dict[Tuple[int, str], MallVenue] = {}


def _venue_for(grid: ParameterGrid, scale_key: str) -> MallVenue:
    """Venue generation is the slow part of environment set-up; cache it."""
    key = (grid.venue_seed, scale_key)
    if key not in _VENUE_CACHE:
        _VENUE_CACHE[key] = generate_mall_venue(grid.venue_config, seed=grid.venue_seed)
    return _VENUE_CACHE[key]


def build_environment(
    scale: ExperimentScale = ExperimentScale.SMALL,
    checkpoint_count: Optional[int] = None,
    s2t_distance: Optional[float] = None,
    query_time: Optional[str] = None,
    grid: Optional[ParameterGrid] = None,
) -> BenchmarkEnvironment:
    """Assemble venue + schedule + IT-Graph + workload for one setting."""
    grid = grid or default_grid(scale)
    checkpoint_count = checkpoint_count or grid.default_checkpoints
    s2t_distance = s2t_distance or grid.default_s2t
    query_time = query_time or grid.default_time

    venue = _venue_for(grid, scale.value)
    schedule, _ = generate_schedule(
        venue.space,
        ScheduleConfig(checkpoint_count=checkpoint_count, seed=grid.schedule_seed),
    )
    itgraph = build_itgraph(venue.space, schedule, validate=False)
    engine = ITSPQEngine(itgraph)
    workload = generate_query_instances(
        itgraph,
        QueryWorkloadConfig(
            s2t_distance=s2t_distance,
            pairs=grid.query_pairs,
            query_time=query_time,
            seed=grid.workload_seed,
        ),
    )
    queries = [generated.query for generated in workload]
    return BenchmarkEnvironment(
        grid=grid,
        venue=venue,
        itgraph=itgraph,
        engine=engine,
        checkpoint_count=checkpoint_count,
        queries=queries,
    )


_METHODS: Tuple[CheckMethod, ...] = (CheckMethod.SYNCHRONOUS, CheckMethod.ASYNCHRONOUS)


def experiment_fig4(
    scale: ExperimentScale = ExperimentScale.SMALL,
    grid: Optional[ParameterGrid] = None,
) -> ExperimentResult:
    """Figure 4: search time vs. checkpoint-set size ``|T|``.

    The paper plots ITG/S and ITG/A at t = 12:00 (insensitive to ``|T|``) and
    at t = 8:00 (faster with larger ``|T|`` because more doors are closed).
    """
    grid = grid or default_grid(scale)
    result = ExperimentResult(
        name="fig4",
        description="Search time vs |T| (query times 12:00 and 8:00)",
        parameters={"s2t": grid.default_s2t, "scale": scale.value},
    )
    for checkpoint_count in grid.checkpoint_counts:
        for query_time in ("12:00", "8:00"):
            environment = build_environment(
                scale,
                checkpoint_count=checkpoint_count,
                s2t_distance=grid.default_s2t,
                query_time=query_time,
                grid=grid,
            )
            for method in _METHODS:
                measurement = run_query_set(
                    environment.engine,
                    environment.queries,
                    method,
                    repetitions=grid.repetitions,
                )
                result.add_row(
                    measurement.as_row(
                        checkpoints=checkpoint_count,
                        query_time=query_time,
                        method=f"{method.label}(t={query_time})",
                    )
                )
    return result


def experiment_fig5(
    scale: ExperimentScale = ExperimentScale.SMALL,
    grid: Optional[ParameterGrid] = None,
) -> ExperimentResult:
    """Figure 5: search time vs. source-to-target distance δs2t."""
    grid = grid or default_grid(scale)
    result = ExperimentResult(
        name="fig5",
        description="Search time vs s2t distance",
        parameters={"checkpoints": grid.default_checkpoints, "scale": scale.value},
    )
    for s2t in grid.s2t_distances:
        environment = build_environment(
            scale,
            checkpoint_count=grid.default_checkpoints,
            s2t_distance=s2t,
            query_time=grid.default_time,
            grid=grid,
        )
        for method in _METHODS:
            measurement = run_query_set(
                environment.engine, environment.queries, method, repetitions=grid.repetitions
            )
            result.add_row(measurement.as_row(s2t=s2t, method=method.label))
    return result


def _time_sweep(
    scale: ExperimentScale,
    grid: ParameterGrid,
    measure_memory: bool,
    name: str,
    description: str,
) -> ExperimentResult:
    """Shared implementation of the Figure 6 / Figure 7 time-of-day sweeps."""
    result = ExperimentResult(
        name=name,
        description=description,
        parameters={
            "checkpoints": grid.default_checkpoints,
            "s2t": grid.default_s2t,
            "scale": scale.value,
        },
    )
    for query_time in grid.query_times:
        environment = build_environment(
            scale,
            checkpoint_count=grid.default_checkpoints,
            s2t_distance=grid.default_s2t,
            query_time=query_time,
            grid=grid,
        )
        for method in _METHODS:
            measurement = run_query_set(
                environment.engine,
                environment.queries,
                method,
                repetitions=grid.repetitions,
                measure_memory=measure_memory,
            )
            result.add_row(measurement.as_row(query_time=query_time, method=method.label))
    return result


def experiment_fig6(
    scale: ExperimentScale = ExperimentScale.SMALL,
    grid: Optional[ParameterGrid] = None,
) -> ExperimentResult:
    """Figure 6: search time vs. query time of day."""
    grid = grid or default_grid(scale)
    return _time_sweep(scale, grid, False, "fig6", "Search time vs query time of day")


def experiment_fig7(
    scale: ExperimentScale = ExperimentScale.SMALL,
    grid: Optional[ParameterGrid] = None,
) -> ExperimentResult:
    """Figure 7: memory cost vs. query time of day."""
    grid = grid or default_grid(scale)
    return _time_sweep(scale, grid, True, "fig7", "Memory cost vs query time of day")


def experiment_ablation_checks(
    scale: ExperimentScale = ExperimentScale.SMALL,
    grid: Optional[ParameterGrid] = None,
) -> ExperimentResult:
    """Ablation: where the temporal-checking work goes.

    Compares ITG/S, ITG/A, the query-time-snapshot approximation and the
    temporal-unaware baseline on the default setting, reporting ATI probes,
    snapshot refreshes and membership checks per query.
    """
    grid = grid or default_grid(scale)
    environment = build_environment(scale, grid=grid)
    result = ExperimentResult(
        name="ablation-checks",
        description="Temporal-check cost breakdown per method",
        parameters={
            "checkpoints": grid.default_checkpoints,
            "s2t": grid.default_s2t,
            "scale": scale.value,
        },
    )
    for method in (
        CheckMethod.SYNCHRONOUS,
        CheckMethod.ASYNCHRONOUS,
        CheckMethod.QUERY_TIME,
        CheckMethod.STATIC,
    ):
        measurement = run_query_set(
            environment.engine, environment.queries, method, repetitions=grid.repetitions
        )
        result.add_row(measurement.as_row(method=method.label))
    return result


def experiment_ablation_partition_once(
    scale: ExperimentScale = ExperimentScale.SMALL,
    grid: Optional[ParameterGrid] = None,
) -> ExperimentResult:
    """Ablation: literal Algorithm 1 partition-visited pruning vs. exact expansion."""
    grid = grid or default_grid(scale)
    environment = build_environment(scale, grid=grid)
    result = ExperimentResult(
        name="ablation-partition-once",
        description="Effect of the partition-visited pruning of Algorithm 1",
        parameters={"scale": scale.value},
    )
    for partition_once in (False, True):
        engine = ITSPQEngine(environment.itgraph, partition_once=partition_once)
        for method in _METHODS:
            measurement = run_query_set(
                engine, environment.queries, method, repetitions=grid.repetitions
            )
            result.add_row(
                measurement.as_row(
                    method=f"{method.label}{'+p1' if partition_once else ''}",
                    partition_once=partition_once,
                )
            )
    return result


#: Registry used by the command-line entry point.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig4": experiment_fig4,
    "fig5": experiment_fig5,
    "fig6": experiment_fig6,
    "fig7": experiment_fig7,
    "ablation-checks": experiment_ablation_checks,
    "ablation-partition-once": experiment_ablation_partition_once,
}
