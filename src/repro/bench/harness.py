"""Measurement harness: repeated query execution, averaging, result tables.

The paper runs every query instance ten times and reports the average running
time and memory cost per parameter setting.  ``run_query_set`` reproduces
that protocol for one (query set, method) combination;
``ExperimentResult`` collects the series of one figure.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.memory import bytes_to_kb, measure_peak_memory
from repro.core.engine import ITSPQEngine, MethodLike
from repro.core.query import ITSPQuery


@dataclass
class QuerySetMeasurement:
    """Aggregated measurements of one query set under one method."""

    method: str
    queries: int
    repetitions: int
    mean_time_us: float
    p50_time_us: float
    max_time_us: float
    mean_memory_kb: float = 0.0
    found_fraction: float = 1.0
    mean_doors_settled: float = 0.0
    mean_relaxations: float = 0.0
    mean_ati_probes: float = 0.0
    mean_snapshot_refreshes: float = 0.0
    mean_membership_checks: float = 0.0

    def as_row(self, **extra) -> Dict[str, object]:
        """Flatten into a result-table row, merged with experiment parameters.

        Keys supplied in ``extra`` win over the measurement's own fields, so
        experiments can relabel the method (e.g. ``ITG/S(t=8:00)`` in the
        Figure 4 series).
        """
        row: Dict[str, object] = {
            "method": self.method,
            "mean_time_us": round(self.mean_time_us, 1),
            "p50_time_us": round(self.p50_time_us, 1),
            "mean_memory_kb": round(self.mean_memory_kb, 1),
            "found_fraction": round(self.found_fraction, 3),
            "doors_settled": round(self.mean_doors_settled, 1),
            "relaxations": round(self.mean_relaxations, 1),
            "ati_probes": round(self.mean_ati_probes, 1),
            "snapshot_refreshes": round(self.mean_snapshot_refreshes, 2),
            "membership_checks": round(self.mean_membership_checks, 1),
        }
        row.update(extra)
        return row


def run_query_set(
    engine: ITSPQEngine,
    queries: Sequence[ITSPQuery],
    method: MethodLike,
    repetitions: int = 10,
    measure_memory: bool = False,
) -> QuerySetMeasurement:
    """Run every query ``repetitions`` times and aggregate the measurements.

    Timing uses the engine's own per-query ``perf_counter`` measurement so
    the numbers include the temporal-check work but exclude workload set-up.
    Memory (when requested) is the tracemalloc peak of a single additional
    run per query, mirroring the paper's per-query memory cost.
    """
    if not queries:
        raise ValueError("query set must not be empty")
    times_us: List[float] = []
    memories_kb: List[float] = []
    found: List[bool] = []
    doors_settled: List[float] = []
    relaxations: List[float] = []
    ati_probes: List[float] = []
    snapshot_refreshes: List[float] = []
    membership_checks: List[float] = []

    method_label: Optional[str] = None
    for query in queries:
        for _ in range(repetitions):
            result = engine.run(query, method=method)
            times_us.append(result.statistics.runtime_seconds * 1e6)
            found.append(result.found)
            doors_settled.append(result.statistics.doors_settled)
            relaxations.append(result.statistics.relaxations)
            ati_probes.append(result.statistics.ati_probes)
            snapshot_refreshes.append(result.statistics.snapshot_refreshes)
            membership_checks.append(result.statistics.membership_checks)
            method_label = result.method_label
        if measure_memory:
            _, peak = measure_peak_memory(lambda q=query: engine.run(q, method=method))
            memories_kb.append(bytes_to_kb(peak))

    return QuerySetMeasurement(
        method=method_label or str(method),
        queries=len(queries),
        repetitions=repetitions,
        mean_time_us=statistics.fmean(times_us),
        p50_time_us=statistics.median(times_us),
        max_time_us=max(times_us),
        mean_memory_kb=statistics.fmean(memories_kb) if memories_kb else 0.0,
        found_fraction=sum(found) / len(found),
        mean_doors_settled=statistics.fmean(doors_settled),
        mean_relaxations=statistics.fmean(relaxations),
        mean_ati_probes=statistics.fmean(ati_probes),
        mean_snapshot_refreshes=statistics.fmean(snapshot_refreshes),
        mean_membership_checks=statistics.fmean(membership_checks),
    )


@dataclass
class BatchThroughputMeasurement:
    """Whole-workload throughput of one query set under one execution mode.

    Unlike :class:`QuerySetMeasurement` (per-query latency via the engine's
    own timer), this measures the wall time of answering the *entire* set in
    one call — the quantity batch execution optimises.  ``best_seconds`` (the
    minimum over repetitions) is the least noisy estimator on a busy machine
    and is what throughput gates should compare.
    """

    method: str
    queries: int
    repetitions: int
    best_seconds: float
    mean_seconds: float

    @property
    def queries_per_second(self) -> float:
        """Workload size divided by the best whole-set wall time."""
        return self.queries / self.best_seconds if self.best_seconds > 0 else float("inf")


def run_batch_query_set(
    engine: ITSPQEngine,
    queries: Sequence[ITSPQuery],
    method: MethodLike,
    repetitions: int = 10,
    batch: bool = True,
    warmup: int = 1,
    workers: Optional[int] = None,
) -> BatchThroughputMeasurement:
    """Measure whole-workload wall time of ``engine.run_batch``.

    ``batch=True`` measures the planned multi-target executor, ``batch=False``
    the sequential one-search-per-query loop — the pair quantifies the batch
    speedup on identical workloads (answers are bit-identical either way).
    ``workers=N`` measures the multiprocess executor; the warmup run then
    also absorbs pool startup and index hand-off, so the timed repetitions
    see a hot pool (the steady state a service runs in).
    """
    if not queries:
        raise ValueError("query set must not be empty")
    queries = list(queries)
    method_label: Optional[str] = None
    for _ in range(max(warmup, 0)):
        results = engine.run_batch(queries, method=method, batch=batch, workers=workers)
        method_label = results[-1].method_label
    times: List[float] = []
    for _ in range(max(repetitions, 1)):
        started = time.perf_counter()
        results = engine.run_batch(queries, method=method, batch=batch, workers=workers)
        times.append(time.perf_counter() - started)
        method_label = results[-1].method_label
    return BatchThroughputMeasurement(
        method=method_label or str(method),
        queries=len(queries),
        repetitions=len(times),
        best_seconds=min(times),
        mean_seconds=statistics.fmean(times),
    )


@dataclass
class ExperimentResult:
    """Result of one experiment (one paper figure): parameters and series rows."""

    name: str
    description: str
    parameters: Dict[str, object] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    started_at: float = field(default_factory=time.time)

    def add_row(self, row: Dict[str, object]) -> None:
        """Append one series point."""
        self.rows.append(row)

    def series(self, method: str, x_key: str, y_key: str) -> List[Dict[str, object]]:
        """Extract one method's series as ``[{x_key:…, y_key:…}, …]``."""
        return [
            {x_key: row[x_key], y_key: row[y_key]}
            for row in self.rows
            if row.get("method") == method
        ]

    def methods(self) -> List[str]:
        """Distinct method labels present in the rows, in first-seen order."""
        seen: List[str] = []
        for row in self.rows:
            method = str(row.get("method"))
            if method not in seen:
                seen.append(method)
        return seen
