"""Memory measurement utilities.

The paper reports a per-query "memory cost" in kilobytes measured inside the
JVM.  Here two complementary measurements are provided:

* :func:`measure_peak_memory` wraps a callable with :mod:`tracemalloc` and
  reports the peak number of bytes allocated while it ran — this is what the
  Figure 7 reproduction uses, because it captures both the search state
  (heap, labels) and any snapshot construction triggered by ITG/A.
* :func:`deep_sizeof` recursively accounts the resident size of a data
  structure (graph, snapshot, result) — used to report structure sizes in
  the ablation benchmarks and the examples.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any, Callable, Iterable, Set, Tuple, TypeVar

T = TypeVar("T")


def measure_peak_memory(function: Callable[[], T]) -> Tuple[T, int]:
    """Run ``function`` and return ``(result, peak_allocated_bytes)``.

    When a tracemalloc session is already active (nested measurements), the
    existing session is reused and only the delta of the inner call is
    reported.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    baseline, _ = tracemalloc.get_traced_memory()
    try:
        result = function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, max(0, peak - baseline)


def deep_sizeof(obj: Any, _seen: Set[int] = None) -> int:  # type: ignore[assignment]
    """Recursively estimate the memory footprint of ``obj`` in bytes.

    Follows containers, dictionaries, instance ``__dict__``s and ``__slots__``;
    shared sub-objects are counted once.
    """
    seen = _seen if _seen is not None else set()
    identifier = id(obj)
    if identifier in seen:
        return 0
    seen.add(identifier)

    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(deep_sizeof(key, seen) + deep_sizeof(value, seen) for key, value in obj.items())
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_sizeof(item, seen) for item in obj)
    elif isinstance(obj, (str, bytes, bytearray, int, float, bool, type(None))):
        return size

    if hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), seen)
    slots = getattr(type(obj), "__slots__", ())
    if slots:
        names: Iterable[str] = (slots,) if isinstance(slots, str) else slots
        for name in names:
            if hasattr(obj, name):
                size += deep_sizeof(getattr(obj, name), seen)
    return size


def bytes_to_kb(value: float) -> float:
    """Convert bytes to kilobytes (the unit Figure 7 uses)."""
    return value / 1024.0
