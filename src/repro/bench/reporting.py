"""Plain-text rendering of experiment results.

The benchmark harness prints the same series the paper plots; no plotting
dependency is required — the output is aligned ASCII tables suitable for the
terminal or EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentResult


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render ``rows`` as an aligned ASCII table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def format_experiment(result: ExperimentResult, columns: Optional[Sequence[str]] = None) -> str:
    """Render one experiment: header, parameters, series table."""
    parameter_text = ", ".join(f"{key}={value}" for key, value in result.parameters.items())
    lines: List[str] = [
        f"== {result.name}: {result.description} ==",
        f"parameters: {parameter_text}" if parameter_text else "parameters: (defaults)",
        "",
        format_table(result.rows, columns),
    ]
    return "\n".join(lines)


def summarise_speedup(result: ExperimentResult, baseline: str, contender: str) -> str:
    """One-line summary comparing two methods' mean times across all rows."""
    baseline_times = [row["mean_time_us"] for row in result.rows if row.get("method") == baseline]
    contender_times = [row["mean_time_us"] for row in result.rows if row.get("method") == contender]
    if not baseline_times or not contender_times:
        return f"(no comparable rows for {baseline} vs {contender})"
    baseline_mean = sum(float(t) for t in baseline_times) / len(baseline_times)
    contender_mean = sum(float(t) for t in contender_times) / len(contender_times)
    if contender_mean == 0:
        return f"{contender} reported zero mean time"
    return (
        f"{contender} runs at {baseline_mean / contender_mean:.2f}x the speed of {baseline} "
        f"({contender_mean:.0f} us vs {baseline_mean:.0f} us mean per query)"
    )
