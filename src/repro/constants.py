"""Physical and modelling constants shared across the library.

The paper fixes the pedestrian speed to the human average walking speed of
5 km/h (its reference [1]) and measures indoor distances in metres.  All
distances in this library are metres, all durations are seconds, and all
times of day are seconds since midnight.
"""

from __future__ import annotations

#: Average human walking speed used to convert distances into travel times,
#: exactly as in the paper's problem definition (5 km/h).
WALKING_SPEED_KMH: float = 5.0

#: The same walking speed expressed in metres per second.
WALKING_SPEED_MPS: float = WALKING_SPEED_KMH * 1000.0 / 3600.0

#: Number of seconds in a full day; times of day live in ``[0, SECONDS_PER_DAY)``.
SECONDS_PER_DAY: int = 24 * 3600

#: Length of the stairway connecting two adjacent floors in the synthetic
#: multi-floor space (the paper uses staircases with a 20 m stairway).
DEFAULT_STAIRWAY_LENGTH_M: float = 20.0

#: Side length of one synthetic mall floor (the paper's floorplan is
#: 1368 m x 1368 m after scaling).
DEFAULT_FLOOR_SIDE_M: float = 1368.0

#: Numerical tolerance used when comparing distances and coordinates.
DISTANCE_EPSILON: float = 1e-9


def travel_time_seconds(distance_m: float, speed_mps: float = WALKING_SPEED_MPS) -> float:
    """Return the walking time in seconds needed to cover ``distance_m`` metres.

    Parameters
    ----------
    distance_m:
        Distance to cover, in metres.  Must be non-negative.
    speed_mps:
        Walking speed in metres per second; defaults to the paper's 5 km/h.

    Raises
    ------
    ValueError
        If ``distance_m`` is negative or ``speed_mps`` is not positive.
    """
    if distance_m < 0:
        raise ValueError(f"distance must be non-negative, got {distance_m}")
    if speed_mps <= 0:
        raise ValueError(f"speed must be positive, got {speed_mps}")
    return distance_m / speed_mps
