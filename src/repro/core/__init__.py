"""The paper's primary contribution: the IT-Graph and ITSPQ query processing.

Contents
--------
:mod:`repro.core.itgraph`
    The Indoor Temporal-variation Graph (IT-Graph) of Section II-A: the
    accessibility topology decorated with a partition table (types + distance
    matrices) and a door table (types + ATIs).
:mod:`repro.core.snapshot`
    ``Graph_Update`` (Algorithm 3): reduced topology snapshots per checkpoint
    interval.
:mod:`repro.core.tvcheck`
    The temporal-validity check strategies: ``Syn_Check`` (Algorithm 2),
    ``Asyn_Check`` (Algorithm 4) and a temporal-unaware baseline check.
:mod:`repro.core.engine`
    ``ITSPQ_ITGraph`` (Algorithm 1): the door-level Dijkstra that answers
    ITSPQ, in the two flavours the paper evaluates (ITG/S and ITG/A).
:mod:`repro.core.compiled`
    The integer-indexed compiled search index: dense ``DM`` arrays, flattened
    adjacency, flat ATI boundary arrays and per-interval open-door bitsets,
    powering the engine's default fast path (``compiled=True``).
:mod:`repro.core.batch`
    Vectorised batch query execution: the reusable generation-stamped search
    arena, the common-source batch planner and the multi-target executor
    behind ``ITSPQEngine.run_batch``.
:mod:`repro.core.parallel`
    Supervised multiprocess batch execution: planned groups fanned out as
    tracked, retryable chunks over a pool of worker processes (arena per
    worker, compiled index handed off in its serialised ``repro.io`` form),
    with a degradation ladder — retry on a respawned pool, then in-process
    fallback — that keeps ``ITSPQEngine.run_batch(workers=N)`` bit-identical
    to sequential execution even under worker crashes, chunk timeouts and
    corrupt rehydration payloads.  Every run is summarised by an
    ``ExecutionReport``.
:mod:`repro.core.path` / :mod:`repro.core.query`
    Query and result value objects, including per-hop arrival times and
    re-validation of returned paths.
:mod:`repro.core.baselines` / :mod:`repro.core.reference`
    Temporal-unaware baselines and independent reference implementations used
    as correctness oracles by the test-suite.
"""

from repro.core.batch import BatchExecutor, BatchGroup, BatchPlanner, SearchArena
from repro.core.cache import CacheConfig, SPTreeCache
from repro.core.compiled import CompiledITGraph
from repro.core.deadline import SearchDeadline
from repro.core.parallel import ExecutionReport, ParallelBatchExecutor, default_worker_count
from repro.core.itgraph import DoorRecord, ITGraph, PartitionRecord, build_itgraph
from repro.core.snapshot import GraphSnapshot, GraphUpdater, IntervalBitsets
from repro.core.tvcheck import (
    AsynchronousCheck,
    StaticCheck,
    SynchronousCheck,
    TVCheckStrategy,
)
from repro.core.path import IndoorPath, PathHop
from repro.core.query import ITSPQuery, QueryResult, SearchStatistics
from repro.core.engine import CheckMethod, ITSPQEngine
from repro.core.baselines import static_shortest_path, query_time_snapshot_path
from repro.core.reference import (
    selection_dijkstra_reference,
    time_expanded_exact,
)

__all__ = [
    "ITGraph",
    "DoorRecord",
    "PartitionRecord",
    "build_itgraph",
    "BatchExecutor",
    "BatchGroup",
    "BatchPlanner",
    "CacheConfig",
    "SPTreeCache",
    "SearchDeadline",
    "ExecutionReport",
    "ParallelBatchExecutor",
    "SearchArena",
    "default_worker_count",
    "CompiledITGraph",
    "GraphSnapshot",
    "GraphUpdater",
    "IntervalBitsets",
    "TVCheckStrategy",
    "SynchronousCheck",
    "AsynchronousCheck",
    "StaticCheck",
    "IndoorPath",
    "PathHop",
    "ITSPQuery",
    "QueryResult",
    "SearchStatistics",
    "ITSPQEngine",
    "CheckMethod",
    "static_shortest_path",
    "query_time_snapshot_path",
    "selection_dijkstra_reference",
    "time_expanded_exact",
]
