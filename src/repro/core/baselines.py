"""Baseline query methods the paper's introduction argues against.

Two baselines are provided:

* :func:`static_shortest_path` — a temporal-variation-*unaware* indoor
  shortest path (the state of the art before the paper).  It still honours
  the private-partition rule but ignores door schedules entirely, so the path
  it returns may cross doors that are closed when the user gets there.  The
  examples use it to demonstrate *why* ITSPQ is needed.
* :func:`query_time_snapshot_path` — the tempting shortcut of filtering the
  graph once at the query time ``t`` and running a static search on the
  remaining doors.  It is cheap but wrong in both directions: it may use a
  door that closes before the user arrives, and it may miss a path through a
  door that opens a few minutes after ``t``.  The ablation benchmark counts
  how often each failure mode occurs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import CheckMethod, ITSPQEngine
from repro.core.itgraph import ITGraph
from repro.core.query import QueryResult
from repro.geometry.point import IndoorPoint
from repro.temporal.timeofday import TimeLike


def static_shortest_path(
    itgraph: ITGraph,
    source: IndoorPoint,
    target: IndoorPoint,
    query_time: TimeLike,
    engine: Optional[ITSPQEngine] = None,
) -> QueryResult:
    """Temporal-unaware indoor shortest path (pre-ITSPQ state of the art).

    The returned :class:`~repro.core.query.QueryResult` carries the query
    time so that callers can re-validate the path against the door schedules
    (``result.path.validate(itgraph)``) and observe rule-1 violations.
    """
    engine = engine if engine is not None else ITSPQEngine(itgraph)
    return engine.query(source, target, query_time, method=CheckMethod.STATIC)


def query_time_snapshot_path(
    itgraph: ITGraph,
    source: IndoorPoint,
    target: IndoorPoint,
    query_time: TimeLike,
    engine: Optional[ITSPQEngine] = None,
) -> QueryResult:
    """Shortest path over the doors open *at the query time only*.

    Equivalent to snapshotting the graph at ``t`` and ignoring that doors may
    open or close while the user is walking.
    """
    engine = engine if engine is not None else ITSPQEngine(itgraph)
    return engine.query(source, target, query_time, method=CheckMethod.QUERY_TIME)
