"""Vectorised batch execution of ITSPQ queries over one compiled IT-Graph.

``ITSPQEngine.run`` answers one query at a time: every call allocates fresh
distance/predecessor/settled state sized to the whole venue and re-runs the
door-level Dijkstra from scratch, even when consecutive queries share their
source point and query time.  For service-style workloads (many users asking
routes from the same entrances at the same moment) that is almost all
redundant work.  This module amortises it three ways:

:class:`SearchArena`
    A reusable block of preallocated search state — ``array('d')`` distance
    labels, integer predecessor arrays, a shared heap list — with a
    **generation stamp** per label slot.  Starting a new search increments
    one integer instead of reallocating or clearing anything: a label is
    valid only when its stamp equals the current generation, so resets are
    O(1) regardless of venue size.

:class:`BatchPlanner`
    Groups a workload by (anchor location, effective query time, TV-check
    method, temporal semantics, private-partition context).  Queries in one
    group provably share
    their entire door-level search trajectory; only the target legs differ.
    Time-independent methods (``static``) collapse all query times into one
    group; the ``query-time`` snapshot method groups by the global
    ATI-boundary interval containing the query instant (probe outcomes are
    constant inside it); the arrival-time-exact methods (ITG/S, ITG/A) group
    by the exact query second.

:class:`BatchExecutor`
    Answers each group with a **single multi-target Dijkstra** over the
    compiled graph, terminating early once every target in the group is
    settled.  Per-query search statistics are reconstructed *exactly* — each
    returned :class:`~repro.core.query.QueryResult` is bit-identical (path,
    length and all counters) to what a sequential ``engine.run`` would have
    produced, which ``tests/test_batch_parity.py`` enforces.

Why exact per-query statistics are possible from one shared run: target
nodes never relax anything, so the door-level event sequence (settles,
relaxations, temporal checks, pushes and pops of door entries) of the shared
search is identical to every member query's private search, truncated at the
moment that member's target settles.  The executor therefore snapshots the
shared counters at each target's settling pop and adds the member's own
target-entry bookkeeping (pushes, the settling pop and the heap-occupancy
contribution of its target entries) on top.  The only subtle quantity is
``peak_heap_size``: for a member with ``k`` live target entries the virtual
heap size is ``D + k`` where ``D`` is the shared source/door occupancy, so
the executor tracks a prefix maximum of ``D`` for the (long) phase before a
member's target is first discovered and per-member maxima for the (short)
phase afterwards.
"""

from __future__ import annotations

import time
from array import array
from heapq import heappop, heappush
from math import hypot
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import WALKING_SPEED_MPS
from repro.core.cache import CacheConfig, SPTreeCache, TimeKeyResolver
from repro.core.compiled import COMPILED_KINDS, CompiledITGraph
from repro.core.deadline import SearchDeadline
from repro.core.path import IndoorPath, PathHop
from repro.core.query import ITSPQuery, QueryResult, SearchStatistics
from repro.core.semantics import NO_WAIT, TemporalSemantics, derive_counters, make_edge_probe
from repro.core.snapshot import CompiledSnapshotStore
from repro.exceptions import QueryError, UnknownEntityError
from repro.temporal.timeofday import TimeOfDay

_INFINITY = float("inf")


class SearchArena:
    """Reusable, generation-stamped search state for compiled Dijkstra runs.

    One arena serves any number of consecutive searches over graphs with up
    to :attr:`capacity` nodes.  All arrays are preallocated and grown
    geometrically; :meth:`begin_run` makes every label instantly stale by
    bumping :attr:`generation`, so per-query setup cost is independent of
    venue size (the O(1) "generation stamp" reset).

    Slot ``i`` of :attr:`dist` / :attr:`prev_node` / :attr:`prev_part` is
    meaningful only while ``label_stamp[i] == generation``; a node is settled
    only while ``settled_stamp[i] == generation``.
    """

    __slots__ = (
        "capacity",
        "generation",
        "dist",
        "prev_node",
        "prev_part",
        "label_stamp",
        "settled_stamp",
        "heap",
    )

    def __init__(self, capacity: int = 0):
        self.capacity = 0
        # Generation 0 is never used for a run, so freshly grown stamp slots
        # (initialised to 0) are always stale.
        self.generation = 0
        self.dist = array("d")
        self.prev_node = array("l")
        self.prev_part = array("l")
        # The stamps are plain lists: they are the hottest reads of the
        # search (two probes per edge) and list indexing avoids the boxing
        # cost of ``array`` element access.
        self.label_stamp: List[int] = []
        self.settled_stamp: List[int] = []
        self.heap: List[Tuple[float, int, int]] = []
        if capacity:
            self.reserve(capacity)

    def reserve(self, node_count: int) -> None:
        """Grow the arrays to hold at least ``node_count`` node slots."""
        if node_count <= self.capacity:
            return
        new_capacity = max(node_count, 2 * self.capacity, 64)
        grow = new_capacity - self.capacity
        self.dist.extend([0.0] * grow)
        self.prev_node.extend([-1] * grow)
        self.prev_part.extend([-1] * grow)
        self.label_stamp.extend([0] * grow)
        self.settled_stamp.extend([0] * grow)
        self.capacity = new_capacity

    def begin_run(self, node_count: int) -> int:
        """Start a fresh search over ``node_count`` nodes; returns the new
        generation stamp.  Leftover heap entries of an early-terminated
        previous run are discarded."""
        self.reserve(node_count)
        self.generation += 1
        del self.heap[:]
        return self.generation


class _Target(object):
    """Per-member search state of one query inside a batch group."""

    __slots__ = (
        "order",
        "query",
        "query_seconds",
        "target_pidx",
        "tnode",
        "tx",
        "ty",
        "tfloor",
        "settled",
        "t_count",
        "peak",
        "result",
    )

    def __init__(self, order, query, query_seconds, target_pidx, tnode, tx, ty, tfloor):
        self.order = order
        self.query = query
        self.query_seconds = query_seconds
        self.target_pidx = target_pidx
        self.tnode = tnode
        self.tx = tx
        self.ty = ty
        self.tfloor = tfloor
        self.settled = False
        self.t_count = 0
        self.peak = 0
        self.result: Optional[QueryResult] = None


class BatchGroup:
    """One shared-trajectory unit of a batch plan.

    All members share the anchor point (the query source, or the target
    under latest-departure semantics), the TV-check method, the temporal
    semantics, the effective query time (exactly for ITG/S and ITG/A, up to
    probe-equivalence for the snapshot methods) and the private-partition
    context, so a single multi-target search answers all of them.
    """

    __slots__ = (
        "kind",
        "method_label",
        "source",
        "source_pidx",
        "rep_seconds",
        "allowed_private",
        "members",
        "sequence",
        "cache_key",
        "semantics",
    )

    def __init__(
        self,
        kind,
        method_label,
        source,
        source_pidx,
        rep_seconds,
        allowed_private,
        sequence=-1,
        cache_key=None,
        semantics: TemporalSemantics = NO_WAIT,
    ):
        self.kind = kind
        self.method_label = method_label
        self.source = source
        self.source_pidx = source_pidx
        #: Probe instant shared by the group (any member's query second for
        #: the time-bucketed kinds — provably probe-equivalent).
        self.rep_seconds = rep_seconds
        self.allowed_private = allowed_private
        self.members: List[Tuple[int, ITSPQuery, int]] = []
        #: Plan-order index stamped by :class:`BatchPlanner` — the stable
        #: identity the supervised parallel executor uses to name a group in
        #: retry bookkeeping and failure diagnostics.
        self.sequence = sequence
        #: The planner's group key — also the address of this group's
        #: shortest-path tree in an :class:`~repro.core.cache.SPTreeCache`
        #: (plain floats/ints plus the frozen semantics value object, so it
        #: pickles with the group).
        self.cache_key = cache_key
        #: The temporal semantics every member runs under — part of the group
        #: key, so it travels with pickled groups to parallel workers.
        self.semantics = semantics

    @property
    def size(self) -> int:
        """Number of member queries."""
        return len(self.members)


class BatchPlanner:
    """Groups a workload into shared-trajectory :class:`BatchGroup` units.

    Effective-time bucketing is delegated to a
    :class:`~repro.core.cache.TimeKeyResolver` — ``query-time`` queries
    group by the checkpoint-interval index
    (:meth:`~repro.core.snapshot.IntervalBitsets.index_at`) whenever that is
    provably lossless, falling back to the merged-ATI-boundary bisection
    otherwise — so groups and shortest-path-tree cache entries share one
    address space: every group key is also a cache key.
    """

    def __init__(
        self,
        compiled_graph: CompiledITGraph,
        time_keys: Optional[TimeKeyResolver] = None,
    ):
        self._graph = compiled_graph
        self._time_keys = time_keys if time_keys is not None else TimeKeyResolver(compiled_graph)

    @property
    def time_keys(self) -> TimeKeyResolver:
        """The effective-time resolver groups and cache entries share."""
        return self._time_keys

    def plan(self, queries: Sequence[ITSPQuery], method_name: str) -> List[BatchGroup]:
        """Partition ``queries`` (one canonical method) into batch groups.

        Endpoint location runs here, once per *distinct* endpoint, through
        the compiled grid index (workloads reuse the same entrances and
        points of interest over and over, so location is cached per batch);
        a query endpoint outside the indoor space raises
        :class:`~repro.exceptions.QueryError` before anything executes.
        Group order follows first appearance, members keep input order, so
        planning is deterministic.
        """
        try:
            kind, method_label = COMPILED_KINDS[method_name]
        except KeyError:
            raise ValueError(f"unknown TV-check method {method_name!r}") from None
        graph = self._graph
        locate = graph.locate_index
        private = graph.partition_private
        located: Dict[Tuple[float, float, int], int] = {}
        groups: Dict[tuple, BatchGroup] = {}
        for index, query in enumerate(queries):
            semantics = query.semantics
            semantics.validate_method(method_name)
            # The search is rooted at the semantics' anchor (the source, or
            # the target under latest-departure); the goal is relaxed like a
            # target regardless of which query endpoint it is.
            anchor, goal = semantics.search_endpoints(query)
            try:
                point_key = (anchor.x, anchor.y, anchor.floor)
                source_pidx = located.get(point_key)
                if source_pidx is None:
                    source_pidx = located[point_key] = locate(anchor)
                point_key = (goal.x, goal.y, goal.floor)
                target_pidx = located.get(point_key)
                if target_pidx is None:
                    target_pidx = located[point_key] = locate(goal)
            except UnknownEntityError as exc:
                raise QueryError(f"query endpoint outside the indoor space: {exc}") from exc
            query_seconds = query.query_time.seconds
            time_key = self._time_keys.key(kind, query_seconds)
            # Queries whose goal partition is private widen the search's
            # allowed-private set, changing the shared trajectory; they may
            # only share a run with queries widening it identically.
            privacy_key = (
                target_pidx if private[target_pidx] and target_pidx != source_pidx else -1
            )
            key = (kind, anchor.x, anchor.y, anchor.floor, time_key, privacy_key, semantics)
            group = groups.get(key)
            if group is None:
                allowed = (
                    frozenset((source_pidx,))
                    if privacy_key < 0
                    else frozenset((source_pidx, target_pidx))
                )
                group = BatchGroup(
                    kind,
                    method_label,
                    anchor,
                    source_pidx,
                    query_seconds,
                    allowed,
                    len(groups),
                    cache_key=key,
                    semantics=semantics,
                )
                groups[key] = group
            group.members.append((index, query, target_pidx))
        return list(groups.values())


class BatchExecutor:
    """Answers ITSPQ workloads by planned multi-target searches over one
    :class:`~repro.core.compiled.CompiledITGraph`.

    The executor owns a :class:`SearchArena` (reused across calls and groups)
    and a :class:`~repro.core.snapshot.CompiledSnapshotStore` for the ITG/A
    interval probes.  Results are returned in input order and are
    bit-identical — paths, lengths and every
    :class:`~repro.core.query.SearchStatistics` counter — to sequential
    ``ITSPQEngine.run`` calls; ``runtime_seconds`` is the only field with
    different semantics (the group's wall time amortised over its members).
    """

    def __init__(
        self,
        compiled_graph: CompiledITGraph,
        store: Optional[CompiledSnapshotStore] = None,
        walking_speed: float = WALKING_SPEED_MPS,
        cache=None,
    ):
        if walking_speed <= 0:
            raise ValueError(f"walking speed must be positive, got {walking_speed}")
        self._graph = compiled_graph
        self._store = store if store is not None else compiled_graph.interval_bitsets.store()
        self._speed = walking_speed
        # ``cache`` accepts an engine-owned SPTreeCache (shared entries), a
        # CacheConfig (the executor builds its own — the parallel workers'
        # path), or None (no caching; identical to the pre-cache executor).
        if cache is None:
            self._cache: Optional[SPTreeCache] = None
        elif isinstance(cache, SPTreeCache):
            self._cache = cache
        elif isinstance(cache, CacheConfig):
            self._cache = SPTreeCache(compiled_graph, self._store, walking_speed, cache)
        else:
            raise TypeError(f"cache must be an SPTreeCache, CacheConfig or None, got {cache!r}")
        self._planner = BatchPlanner(
            compiled_graph, self._cache.resolver if self._cache is not None else None
        )
        self._arena = SearchArena(compiled_graph.door_count + 2)
        #: Group count of the most recent run (planned here or handed in via
        #: :meth:`run_planned`) — observability for execution reports.
        self.last_group_count = 0

    @property
    def graph(self) -> CompiledITGraph:
        """The compiled graph all batches run over."""
        return self._graph

    @property
    def planner(self) -> BatchPlanner:
        """The workload planner (exposed for plan introspection in tests)."""
        return self._planner

    @property
    def cache(self) -> Optional[SPTreeCache]:
        """The shortest-path-tree cache consulted before each group's search
        (``None`` when caching is off)."""
        return self._cache

    def run_batch(
        self,
        queries: Sequence[ITSPQuery],
        method_name: str,
        deadline: Optional[SearchDeadline] = None,
    ) -> List[QueryResult]:
        """Answer ``queries`` (canonical ``method_name``) and return results
        in input order.  ``deadline`` is the cooperative budget shared by
        the whole call — expiry raises
        :class:`~repro.exceptions.DeadlineExceededError`, never a partial
        result list."""
        results: List[Optional[QueryResult]] = [None] * len(queries)
        for order, result in self.run_planned(
            self._planner.plan(queries, method_name), deadline=deadline
        ):
            results[order] = result
        return results  # type: ignore[return-value]

    def run_planned(
        self,
        groups: Sequence[BatchGroup],
        deadline: Optional[SearchDeadline] = None,
    ) -> List[Tuple[int, QueryResult]]:
        """Execute already-planned groups; returns ``(member order, result)``
        pairs in group-plan order.

        This is the unit of work the multiprocess executor
        (:mod:`repro.core.parallel`) ships to workers: groups are
        self-contained, so any subset can run on any arena and the pairs
        merge deterministically by member order.  ``runtime_seconds`` is the
        group's wall time amortised over its members, as in
        :meth:`run_batch`.

        An armed ``deadline`` is polled inside every group's search (and any
        cache recording run); the arena's generation stamp makes an aborted
        run invisible to the next one, so the executor stays fully usable
        after an expiry.
        """
        self.last_group_count = len(groups)
        cache = self._cache
        pairs: List[Tuple[int, QueryResult]] = []
        for group in groups:
            started = time.perf_counter()
            if cache is not None and group.cache_key is not None:
                tree = cache.lookup(group.cache_key)
                if tree is None and cache.should_build(group.cache_key):
                    tree = cache.build_for_group(group, deadline=deadline)
                if tree is not None:
                    answers = [
                        (order, cache.answer(tree, query, target_pidx))
                        for order, query, target_pidx in group.members
                    ]
                    elapsed = (time.perf_counter() - started) / len(answers)
                    for order, result in answers:
                        result.statistics.runtime_seconds = elapsed
                        pairs.append((order, result))
                    continue
            targets = self._run_group(group, deadline)
            elapsed = (time.perf_counter() - started) / len(targets)
            for target in targets:
                target.result.statistics.runtime_seconds = elapsed
                pairs.append((target.order, target.result))
        return pairs

    # -- the shared multi-target search ------------------------------------------------

    def _run_group(
        self, group: BatchGroup, deadline: Optional[SearchDeadline] = None
    ) -> List[_Target]:
        """Run one group's shared search; returns its members with results.

        This mirrors ``ITSPQEngine._search_compiled`` relaxation for
        relaxation (same probe kernel from
        :func:`repro.core.semantics.make_edge_probe`, same check-before-relax
        order, same tie-breaking relative to every member's private search)
        with three changes: labels live in the generation-stamped arena,
        every member has its own target node relaxed from doors adjacent to
        its target partition, and the shared counters are snapshotted per
        member at its target's settling pop.
        """
        graph = self._graph
        arena = self._arena
        kind = group.kind
        semantics = group.semantics
        door_count = graph.door_count
        source_node = door_count
        members = group.members
        gen = arena.begin_run(door_count + 1 + len(members))

        dist = arena.dist
        prev_node = arena.prev_node
        prev_part = arena.prev_part
        label_stamp = arena.label_stamp
        settled_stamp = arena.settled_stamp
        heap = arena.heap
        heappush_local = heappush
        heappop_local = heappop

        adjacency = graph.adjacency
        door_x = graph.door_x
        door_y = graph.door_y
        door_floor = graph.door_floor
        allowed_private = group.allowed_private
        source_pidx = group.source_pidx
        source = group.source
        source_x, source_y, source_floor = source.x, source.y, source.floor
        rep_seconds = group.rep_seconds
        speed = self._speed

        # -- member target records -----------------------------------------
        targets: List[_Target] = []
        targets_by_pidx: Dict[int, List[_Target]] = {}
        for order, query, target_pidx in members:
            point = semantics.search_endpoints(query)[1]
            record = _Target(
                order,
                query,
                query.query_time.seconds,
                target_pidx,
                door_count + 1 + len(targets),
                point.x,
                point.y,
                point.floor,
            )
            targets.append(record)
            targets_by_pidx.setdefault(target_pidx, []).append(record)
        targets_get = targets_by_pidx.get

        # -- shared counters (source/door events only) ----------------------
        # ``occupancy`` is the number of source/door entries currently in the
        # heap; ``prefix_peak`` its running maximum over pushes — the peak
        # heap size of any member whose target is still undiscovered.
        shared_pushes = 1  # the initial SOURCE push
        shared_pops = 0
        occupancy = 1
        prefix_peak = 1
        doors_settled = 0
        relaxations = 0
        partitions_expanded = 0
        private_pruned = 0
        temporally_pruned = 0
        #: Members whose target entered the heap and is not yet settled; only
        #: these need per-push peak updates (the phase is short: a discovered
        #: target settles as soon as no closer door entry remains).
        hot: List[_Target] = []

        # The shared feasibility/pricing kernel — see make_edge_probe for the
        # per-kind cost profile and for which probe counters are counted live
        # (snapshotted per member below) versus derived from ``relaxations``.
        probe, probe_counters = make_edge_probe(
            semantics,
            kind,
            graph.ati_bounds,
            rep_seconds,
            speed,
            interval_at=self._store.interval_at if kind == 1 else None,
        )

        heap.append((0.0, 0, source_node))
        dist[source_node] = 0.0
        label_stamp[source_node] = gen
        tie = 1

        # Door-free direct legs for members whose endpoints share a partition
        # (mirrors the sequential engine's pre-loop relaxation).
        for record in targets:
            if record.target_pidx == source_pidx and record.tfloor == source_floor:
                direct = hypot(source_x - record.tx, source_y - record.ty)
                tnode = record.tnode
                dist[tnode] = direct
                label_stamp[tnode] = gen
                prev_node[tnode] = source_node
                prev_part[tnode] = source_pidx
                heappush_local(heap, (direct, tie, tnode))
                tie += 1
                record.t_count = 1
                record.peak = prefix_peak if prefix_peak > occupancy + 1 else occupancy + 1
                hot.append(record)

        remaining = len(targets)
        while heap:
            if deadline is not None:
                deadline.tick()
            distance, _, node = heappop_local(heap)
            if node > source_node:
                # A member's target entry.  Stale entries (superseded pushes
                # or entries of an already-settled member) are invisible to
                # every member's private accounting.
                record = targets[node - source_node - 1]
                if record.settled or distance > dist[node]:
                    continue
                record.settled = True
                hot.remove(record)
                remaining -= 1
                stats = SearchStatistics(
                    doors_settled=doors_settled,
                    relaxations=relaxations,
                    heap_pushes=shared_pushes + record.t_count,
                    heap_pops=shared_pops + 1,
                    partitions_expanded=partitions_expanded,
                    private_partitions_pruned=private_pruned,
                    temporally_pruned_doors=temporally_pruned,
                    ati_probes=probe_counters[0],
                    snapshot_refreshes=probe_counters[1],
                    membership_checks=probe_counters[2],
                    peak_heap_size=record.peak,
                )
                record.result = QueryResult(
                    query=record.query,
                    method_label=group.method_label,
                    found=True,
                    path=None,  # reconstructed after the run, labels permitting
                    length=distance,
                    statistics=stats,
                )
                if remaining == 0:
                    break
                continue

            shared_pops += 1
            occupancy -= 1
            if settled_stamp[node] == gen or distance > dist[node]:
                continue
            settled_stamp[node] = gen

            if node == source_node:
                partitions_expanded += 1
                for door_idx in graph.leaveable_by_partition[source_pidx]:
                    if door_floor[door_idx] != source_floor:
                        continue
                    leg = hypot(source_x - door_x[door_idx], source_y - door_y[door_idx])
                    relaxations += 1
                    leg = probe(door_idx, leg)
                    if leg is None:
                        temporally_pruned += 1
                        continue
                    if label_stamp[door_idx] != gen or leg < dist[door_idx]:
                        dist[door_idx] = leg
                        label_stamp[door_idx] = gen
                        prev_node[door_idx] = source_node
                        prev_part[door_idx] = source_pidx
                        heappush_local(heap, (leg, tie, door_idx))
                        tie += 1
                        shared_pushes += 1
                        occupancy += 1
                        if occupancy > prefix_peak:
                            prefix_peak = occupancy
                        for record in hot:
                            peak = occupancy + record.t_count
                            if peak > record.peak:
                                record.peak = peak
                continue

            # ``node`` is a door with a settled (shortest) distance label.
            doors_settled += 1
            door_distance = dist[node]
            dx = door_x[node]
            dy = door_y[node]
            dfloor = door_floor[node]
            for partition_idx, is_private, edges in adjacency[node]:
                if is_private and partition_idx not in allowed_private:
                    private_pruned += 1
                    continue
                partitions_expanded += 1

                tlist = targets_get(partition_idx)
                if tlist is not None:
                    for record in tlist:
                        if record.settled or dfloor != record.tfloor:
                            continue
                        candidate = door_distance + hypot(record.tx - dx, record.ty - dy)
                        tnode = record.tnode
                        if label_stamp[tnode] != gen or candidate < dist[tnode]:
                            dist[tnode] = candidate
                            label_stamp[tnode] = gen
                            prev_node[tnode] = node
                            prev_part[tnode] = partition_idx
                            heappush_local(heap, (candidate, tie, tnode))
                            tie += 1
                            if record.t_count:
                                record.t_count += 1
                                peak = occupancy + record.t_count
                                if peak > record.peak:
                                    record.peak = peak
                            else:
                                record.t_count = 1
                                record.peak = (
                                    prefix_peak
                                    if prefix_peak > occupancy + 1
                                    else occupancy + 1
                                )
                                hot.append(record)

                # One probe-kernel edge loop for every semantics and method,
                # mirroring the sequential engine's check-before-relax order.
                for next_idx, leg in edges:
                    if settled_stamp[next_idx] == gen:
                        continue
                    candidate = door_distance + leg
                    relaxations += 1
                    candidate = probe(next_idx, candidate)
                    if candidate is None:
                        temporally_pruned += 1
                        continue
                    if label_stamp[next_idx] != gen or candidate < dist[next_idx]:
                        dist[next_idx] = candidate
                        label_stamp[next_idx] = gen
                        prev_node[next_idx] = node
                        prev_part[next_idx] = partition_idx
                        heappush_local(heap, (candidate, tie, next_idx))
                        tie += 1
                        shared_pushes += 1
                        occupancy += 1
                        if occupancy > prefix_peak:
                            prefix_peak = occupancy
                        for record in hot:
                            peak = occupancy + record.t_count
                            if peak > record.peak:
                                record.peak = peak

        # -- finalisation ---------------------------------------------------
        # Probe counters that are exact functions of the relaxation count are
        # patched into each member's snapshot (see derive_counters) the same
        # way the sequential engine does; every result then runs through the
        # semantics' finalise hook (a no-op for forward semantics).
        for record in targets:
            if record.settled:
                derive_counters(semantics, kind, record.result.statistics)
                record.result.path = self._reconstruct(record, gen, source_node)
            else:
                # Heap exhausted: no valid route for this member.  Its private
                # search would have run the identical full trajectory.
                stats = SearchStatistics(
                    doors_settled=doors_settled,
                    relaxations=relaxations,
                    heap_pushes=shared_pushes,
                    heap_pops=shared_pops,
                    partitions_expanded=partitions_expanded,
                    private_partitions_pruned=private_pruned,
                    temporally_pruned_doors=temporally_pruned,
                    ati_probes=probe_counters[0],
                    snapshot_refreshes=probe_counters[1],
                    membership_checks=probe_counters[2],
                    peak_heap_size=prefix_peak,
                )
                derive_counters(semantics, kind, stats)
                record.result = QueryResult(
                    query=record.query,
                    method_label=group.method_label,
                    found=False,
                    path=None,
                    length=_INFINITY,
                    statistics=stats,
                )
            record.result = semantics.finalise_result(record.result, speed)
        return targets

    def _reconstruct(self, record: _Target, gen: int, source_node: int) -> IndoorPath:
        """Arena-label twin of ``ITSPQEngine._reconstruct_compiled``.

        Safe to run after the shared search: every door on a settled target's
        predecessor chain was itself settled earlier, and settled labels are
        immutable until the next :meth:`SearchArena.begin_run`.
        """
        graph = self._graph
        arena = self._arena
        dist = arena.dist
        prev_node = arena.prev_node
        prev_part = arena.prev_part
        door_ids = graph.door_ids
        partition_ids = graph.partition_ids
        semantics = record.query.semantics
        anchor_point, goal_point = semantics.search_endpoints(record.query)
        forward = semantics.forward
        query_seconds = record.query_seconds
        speed = self._speed
        from_seconds = TimeOfDay._from_seconds_unchecked

        chain: List[Tuple[int, int]] = []
        node = record.tnode
        while node != source_node:
            chain.append((node, prev_part[node]))
            node = prev_node[node]
        chain.reverse()

        hops: List[PathHop] = []
        for index, (node, via_partition) in enumerate(chain):
            if node == record.tnode:
                break
            next_via = chain[index + 1][1]
            offset = dist[node] / speed
            arrival = from_seconds(query_seconds + offset if forward else query_seconds - offset)
            hops.append(
                PathHop(
                    door_ids[node],
                    partition_ids[via_partition],
                    partition_ids[next_via],
                    dist[node],
                    arrival,
                )
            )

        return IndoorPath(
            source=anchor_point,
            target=goal_point,
            query_time=record.query.query_time,
            hops=hops,
            total_length=dist[record.tnode],
            method_label=record.result.method_label,
        )
