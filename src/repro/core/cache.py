"""Interval-keyed shortest-path-tree cache for the compiled ITSPQ core.

Within one checkpoint interval the open-door bitset — and therefore the
whole door-level search graph — is frozen, so ITSPQ is really answered
against a small family of static graphs indexed by
:meth:`~repro.core.snapshot.IntervalBitsets.index_at`.  Service workloads
cluster heavily inside that family: query times land in a few intervals and
sources (entrances, concierge desks) repeat.  Yet every execution tier built
so far — compiled, batch, parallel — re-runs Dijkstra from scratch for each
``(source, interval, method)`` even when it just computed that exact tree.

:class:`SPTreeCache` closes that gap.  It memoises **recorded shortest-path
trees**: one zero-target, full-exhaustion run of the compiled Dijkstra per
``(method kind, anchor point, effective-time key, privacy context, temporal
semantics)`` — the same key the :class:`~repro.core.batch.BatchPlanner`
groups by — storing the
final label arrays *plus* a compact event log of the run (pop order, push
counter, cumulative statistics, heap-occupancy trajectory and the per-door
"target relax opportunity" rows).  A repeat query is then answered without
any search: an O(rows-until-settle) scan picks the winning door, a binary
search over the event log finds the exact moment the member's target would
have settled, and the member's :class:`~repro.core.query.SearchStatistics`
are reconstructed **bit-identically** to what a fresh
``ITSPQEngine._search_compiled`` run would report (the repository's standing
parity invariant; ``tests/test_cache_parity.py`` enforces it counter for
counter).

Why exact reconstruction is possible (the same argument the batch executor
rests on, taken one step further): target entries never relax doors, so a
member query's door-level event sequence is a prefix of the zero-target
run's event sequence.  Heap pops occur in globally sorted ``(distance,
tie)`` order — every push's priority is ≥ the priority being popped, and
ties increase monotonically — so the prefix length is a binary search over
the recorded ``(pop distance, push index)`` pairs, stale pops included.
Target-entry bookkeeping (pushes, the settling pop, peak-heap contribution)
is replayed from the opportunity rows: candidate distances strictly improve
at each target push, so the rows that would have pushed are exactly the
strictly-improving ones, and the peak decomposes into a prefix maximum
before the first target push plus per-segment range maxima (block-max
lookups) afterwards.

Admission and invalidation:

* keys follow the batch planner exactly, so the engine's single-query path,
  the in-process batch path and every parallel worker address the same tree
  space;
* ``mode="promote"`` (default) records a tree only after a key misses
  ``promote_after`` times — one-off queries never pay the full-exhaustion
  recording run; ``mode="eager"`` records on first miss (bench/warm-up);
* entries are LRU-evicted beyond ``max_entries`` and stamped with a
  **generation**: :meth:`SPTreeCache.invalidate` bumps it, instantly
  orphaning every cached tree (the hook a future graph-update path uses on
  recompilation).

The optional per-interval precompute
(:class:`~repro.core.compiled.IntervalOverlays`, serialised in the codec's
``precompute`` section) plugs in twice: :meth:`SPTreeCache.prune_result`
answers provably-unreachable queries without any search (opt-in via
``prune_unreachable`` — the pruned result's counters are approximate, which
is why the default stays off), and warmed caches skip recording runs whose
trees are already known.
"""

from __future__ import annotations

import time
from array import array
from bisect import bisect_right
from collections import OrderedDict
from heapq import heappop, heappush
from math import hypot, inf
from typing import Dict, List, Optional, Tuple

from repro.constants import WALKING_SPEED_MPS
from repro.core.compiled import CompiledITGraph
from repro.core.deadline import SearchDeadline
from repro.core.path import IndoorPath, PathHop
from repro.core.query import ITSPQuery, QueryResult, SearchStatistics
from repro.core.semantics import NO_WAIT, TemporalSemantics, derive_counters, make_edge_probe
from repro.core.snapshot import CompiledSnapshotStore
from repro.temporal.timeofday import TimeOfDay

_INFINITY = inf
#: Block width of the occupancy range-max index (power of two for shifts).
_BLOCK = 64
_BLOCK_SHIFT = 6

_MODES = ("off", "promote", "eager")


class CacheConfig:
    """Configuration of one :class:`SPTreeCache` (picklable, so it travels
    through the parallel executor's worker initializer).

    Parameters
    ----------
    max_entries:
        LRU capacity in cached trees.
    mode:
        ``"promote"`` (default) records a tree after ``promote_after``
        misses of the same key; ``"eager"`` records on first miss;
        ``"off"`` disables recording (lookups still count misses).
    promote_after:
        Miss count that promotes a key to a recorded tree in promote mode.
    prune_unreachable:
        Opt-in: answer provably-unreachable queries from the
        :class:`~repro.core.compiled.IntervalOverlays` component rows
        without searching.  Found/length stay exact; the statistics of a
        pruned not-found answer are approximate (all-zero counters), which
        is why this defaults to ``False`` — the bit-identity invariant
        holds for every default path.
    precompute:
        Build the per-interval overlays at compile time
        (``CompiledITGraph.build_overlays``) when the engine compiles its
        index; they then ride along in the codec payload.
    """

    __slots__ = ("max_entries", "mode", "promote_after", "prune_unreachable", "precompute")

    def __init__(
        self,
        max_entries: int = 256,
        mode: str = "promote",
        promote_after: int = 2,
        prune_unreachable: bool = False,
        precompute: bool = False,
    ):
        if not isinstance(max_entries, int) or isinstance(max_entries, bool):
            raise ValueError(f"max_entries must be an integer, got {max_entries!r}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if mode not in _MODES:
            raise ValueError(f"unknown cache mode {mode!r} (expected one of {_MODES})")
        if not isinstance(promote_after, int) or isinstance(promote_after, bool):
            raise ValueError(f"promote_after must be an integer, got {promote_after!r}")
        if promote_after < 1:
            raise ValueError(f"promote_after must be positive, got {promote_after}")
        self.max_entries = int(max_entries)
        self.mode = mode
        self.promote_after = int(promote_after)
        self.prune_unreachable = bool(prune_unreachable)
        self.precompute = bool(precompute)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheConfig(max_entries={self.max_entries}, mode={self.mode!r}, "
            f"promote_after={self.promote_after}, prune_unreachable={self.prune_unreachable}, "
            f"precompute={self.precompute})"
        )


class TimeKeyResolver:
    """Canonical effective-time key shared by the batch planner and the cache.

    Two queries with the same key provably share their entire door-level
    trajectory (method and source/privacy context being equal):

    * ``static`` (kind 2) never reads the clock — one bucket;
    * ``query-time`` (kind 3) probes every door at the query instant, so the
      checkpoint-interval index is the natural bucket — **when** every door
      ATI boundary is itself an interval start (true whenever the bitsets
      were built from the schedule's own checkpoints).  When a thinned
      checkpoint set leaves door boundaries strictly inside an interval,
      bucketing by interval would merge queries with different probe
      outcomes, so the resolver falls back to the merged-boundary bisection
      the planner always used;
    * the arrival-time methods (kinds 0 and 1) probe doors at per-door
      arrival instants that move continuously with the query second, so any
      time coarsening is unsound — they keep the exact second.
    """

    __slots__ = ("_graph", "_bitsets", "_index_sound", "_fallback")

    def __init__(self, graph: CompiledITGraph):
        self._graph = graph
        self._bitsets = graph.interval_bitsets
        self._index_sound: Optional[bool] = None
        self._fallback: Optional[Tuple[float, ...]] = None

    def interval_indexing_sound(self) -> bool:
        """Whether grouping kind-3 queries by interval index is lossless."""
        if self._index_sound is None:
            starts = set(self._bitsets.starts)
            self._index_sound = all(
                boundary in starts
                for bounds in self._graph.ati_bounds
                for boundary in bounds
            )
        return self._index_sound

    def _fallback_bounds(self) -> Tuple[float, ...]:
        if self._fallback is None:
            merged = set()
            for bounds in self._graph.ati_bounds:
                merged.update(bounds)
            self._fallback = tuple(sorted(merged))
        return self._fallback

    def key(self, kind: int, query_seconds: float) -> float:
        """The effective-time component of a group/cache key."""
        if kind == 2:
            return 0.0
        if kind == 3:
            if self.interval_indexing_sound():
                return float(self._bitsets.index_at(query_seconds))
            return float(bisect_right(self._fallback_bounds(), query_seconds))
        return query_seconds

    def interval_index(self, query_seconds: float) -> int:
        """The checkpoint-interval index containing ``query_seconds``."""
        return self._bitsets.index_at(query_seconds)


class CachedTree:
    """One recorded zero-target run: labels + the event log that makes exact
    per-member statistics reconstruction possible (see the module docstring).

    Arrays are indexed two ways: *per node* (``dist`` / ``prev_node`` /
    ``prev_part``, door indices plus the source sentinel at ``door_count``)
    and *per event* (one heap pop of a source/door entry, stale pops
    included — ``pop_dist`` / ``pop_push`` and the nine cumulative counter
    arrays, sampled after each event completes).  ``occ_after``/
    ``prefix_peak``/``block_max`` are indexed per push (the heap-occupancy
    trajectory); ``rows_by_partition`` holds the chronological target-relax
    opportunities ``(door, door_distance, pushes_before, occupancy)`` per
    partition.
    """

    __slots__ = (
        "kind",
        "method_label",
        "semantics",
        "source_pidx",
        "source_x",
        "source_y",
        "source_floor",
        "rep_seconds",
        "generation",
        "dist",
        "prev_node",
        "prev_part",
        "pop_dist",
        "pop_push",
        "cum_settled",
        "cum_relax",
        "cum_pushes",
        "cum_parts",
        "cum_private",
        "cum_tpruned",
        "cum_ati",
        "cum_refresh",
        "cum_member",
        "occ_after",
        "prefix_peak",
        "block_max",
        "rows_by_partition",
        "total_pushes",
        "total_events",
    )

    def memory_bytes(self) -> int:
        """Approximate footprint of the recorded arrays (for reports)."""
        per_event = 8 + 8 + 9 * 8
        per_push = 3 * 8
        row_bytes = sum(len(rows) * 48 for rows in self.rows_by_partition.values())
        node_bytes = 3 * 8 * len(self.dist)
        return self.total_events * per_event + self.total_pushes * per_push + row_bytes + node_bytes


class SPTreeCache:
    """Generation-stamped LRU cache of recorded shortest-path trees.

    One instance serves an engine (and its in-process batch executor);
    parallel workers build their own from the :class:`CacheConfig` threaded
    through the worker initializer, over the graph they rehydrated from the
    codec payload (precompute overlays included, when present).
    """

    def __init__(
        self,
        graph: CompiledITGraph,
        store: Optional[CompiledSnapshotStore] = None,
        walking_speed: float = WALKING_SPEED_MPS,
        config: Optional[CacheConfig] = None,
    ):
        if walking_speed <= 0:
            raise ValueError(f"walking speed must be positive, got {walking_speed}")
        self._graph = graph
        self._store = store if store is not None else graph.interval_bitsets.store()
        self._speed = walking_speed
        self.config = config if config is not None else CacheConfig()
        self.resolver = TimeKeyResolver(graph)
        self.generation = 1
        self._entries: "OrderedDict[tuple, CachedTree]" = OrderedDict()
        self._miss_tally: "OrderedDict[tuple, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.trees_built = 0
        self.evictions = 0
        self.pruned = 0

    # -- keys -----------------------------------------------------------------

    def plan_key(
        self,
        kind: int,
        source,
        query_seconds: float,
        source_pidx: int,
        target_pidx: int,
        semantics: TemporalSemantics = NO_WAIT,
    ) -> Tuple[tuple, frozenset]:
        """The batch planner's group key (and allowed-private set) for one
        located query — the cache's address space and the planner's are the
        same by construction.  ``source`` is the *anchor* of the search
        (``semantics.search_endpoints``), so latest-departure trees are
        addressed by the point the backward search grows from."""
        private = self._graph.partition_private
        privacy_key = (
            target_pidx if private[target_pidx] and target_pidx != source_pidx else -1
        )
        key = (
            kind,
            source.x,
            source.y,
            source.floor,
            self.resolver.key(kind, query_seconds),
            privacy_key,
            semantics,
        )
        allowed = (
            frozenset((source_pidx,))
            if privacy_key < 0
            else frozenset((source_pidx, target_pidx))
        )
        return key, allowed

    # -- admission / eviction --------------------------------------------------

    def lookup(self, key: tuple) -> Optional[CachedTree]:
        """The cached tree for ``key``, or ``None`` (counts a hit or miss);
        stale-generation entries are dropped on contact."""
        tree = self._entries.get(key)
        if tree is not None:
            if tree.generation == self.generation:
                self._entries.move_to_end(key)
                self.hits += 1
                return tree
            del self._entries[key]
        self.misses += 1
        return None

    def peek(self, key: tuple) -> Optional[CachedTree]:
        """Like :meth:`lookup` but without touching counters or LRU order
        (used by cache warming)."""
        tree = self._entries.get(key)
        if tree is not None and tree.generation == self.generation:
            return tree
        return None

    def should_build(self, key: tuple) -> bool:
        """Whether a missed ``key`` has earned a recording run under the
        configured admission mode."""
        mode = self.config.mode
        if mode == "off":
            return False
        if mode == "eager":
            return True
        tally = self._miss_tally
        count = tally.get(key, 0) + 1
        if count >= self.config.promote_after:
            tally.pop(key, None)
            return True
        tally[key] = count
        tally.move_to_end(key)
        # The tally is bounded like the cache itself, so a stream of one-off
        # keys cannot grow it without limit.
        limit = 4 * self.config.max_entries
        while len(tally) > limit:
            tally.popitem(last=False)
        return False

    def store_tree(self, key: tuple, tree: CachedTree) -> None:
        """Insert a tree, evicting least-recently-used entries past capacity."""
        tree.generation = self.generation
        self._entries[key] = tree
        self._entries.move_to_end(key)
        while len(self._entries) > self.config.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Bump the generation: every cached tree becomes stale at once (the
        recompile / graph-update hook)."""
        self.generation += 1
        self._entries.clear()
        self._miss_tally.clear()

    def stats(self) -> Dict[str, object]:
        """Counter snapshot (what ``engine.cache_stats`` surfaces)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "trees_built": self.trees_built,
            "evictions": self.evictions,
            "pruned": self.pruned,
            "entries": len(self._entries),
            "generation": self.generation,
            "max_entries": self.config.max_entries,
            "mode": self.config.mode,
            "memory_bytes": sum(tree.memory_bytes() for tree in self._entries.values()),
        }

    # -- recording -------------------------------------------------------------

    def build(
        self,
        key: tuple,
        kind: int,
        method_label: str,
        source,
        source_pidx: int,
        allowed_private,
        rep_seconds: float,
        semantics: TemporalSemantics = NO_WAIT,
        deadline: Optional[SearchDeadline] = None,
    ) -> CachedTree:
        """Record the zero-target run for ``key`` and cache the tree.

        An armed ``deadline`` is checked before the recording run starts and
        polled inside it; expiry raises before anything is cached, so the
        cache never holds a tree from an interrupted run."""
        tree = self._record_tree(
            kind,
            method_label,
            source,
            source_pidx,
            allowed_private,
            rep_seconds,
            semantics,
            deadline,
        )
        self.store_tree(key, tree)
        self.trees_built += 1
        return tree

    def build_for_group(self, group, deadline: Optional[SearchDeadline] = None) -> CachedTree:
        """Record and cache the tree of one planned batch group."""
        return self.build(
            group.cache_key,
            group.kind,
            group.method_label,
            group.source,
            group.source_pidx,
            group.allowed_private,
            group.rep_seconds,
            group.semantics,
            deadline=deadline,
        )

    def _record_tree(
        self,
        kind,
        method_label,
        source,
        source_pidx,
        allowed_private,
        rep_seconds,
        semantics,
        deadline: Optional[SearchDeadline] = None,
    ) -> CachedTree:
        """The zero-target, full-exhaustion twin of the batch executor's
        shared search, with the event log recorded alongside.

        Mirrors ``BatchExecutor._run_group`` relaxation for relaxation (same
        :func:`~repro.core.semantics.make_edge_probe` kernel, same
        check-before-relax order, same tie-breaking), which itself mirrors
        ``ITSPQEngine._search_compiled``: with no target entries in the heap,
        the source/door event sequence is the common supersequence every
        member query's private search is a prefix of.
        """
        graph = self._graph
        door_count = graph.door_count
        source_node = door_count
        node_count = door_count + 1

        dist = array("d", [_INFINITY]) * node_count
        prev_node = array("l", [-1]) * node_count
        prev_part = array("l", [-1]) * node_count
        settled = bytearray(node_count)

        adjacency = graph.adjacency
        door_x = graph.door_x
        door_y = graph.door_y
        door_floor = graph.door_floor
        source_x, source_y, source_floor = source.x, source.y, source.floor
        speed = self._speed

        heappush_local = heappush
        heappop_local = heappop

        # -- per-event log ---------------------------------------------------
        pop_dist = array("d")
        pop_push = array("l")
        cum_settled = array("l")
        cum_relax = array("l")
        cum_pushes = array("l")
        cum_parts = array("l")
        cum_private = array("l")
        cum_tpruned = array("l")
        cum_ati = array("l")
        cum_refresh = array("l")
        cum_member = array("l")
        # -- per-push occupancy trajectory (initial SOURCE push included) ----
        occ_after = array("l", [1])
        prefix_peak = array("l", [1])
        rows_by_partition: Dict[int, List[Tuple[int, float, int, int]]] = {}

        doors_settled = 0
        relaxations = 0
        partitions_expanded = 0
        private_pruned = 0
        temporally_pruned = 0
        pushes = 1
        occupancy = 1
        peak = 1

        # Feasibility/pricing per the tree's semantics and TV-check kind —
        # the identical closure the engines and the batch executor run, so
        # the recorded trajectory is theirs float for float.
        probe, probe_counters = make_edge_probe(
            semantics,
            kind,
            graph.ati_bounds,
            rep_seconds,
            speed,
            interval_at=self._store.interval_at if kind == 1 else None,
        )

        heap: List[Tuple[float, int, int]] = [(0.0, 0, source_node)]
        dist[source_node] = 0.0
        tie = 1

        if deadline is not None:
            # A recording run is a full-exhaustion search: refuse to start
            # one on an already-spent budget rather than discover it mid-run.
            deadline.check_now()

        while heap:
            if deadline is not None:
                deadline.tick()
            distance, entry_tie, node = heappop_local(heap)
            pop_dist.append(distance)
            pop_push.append(entry_tie)
            occupancy -= 1
            if settled[node] or distance > dist[node]:
                # Stale pop: an event with no counter movement — but an event
                # nonetheless (members count it in heap_pops).
                cum_settled.append(doors_settled)
                cum_relax.append(relaxations)
                cum_pushes.append(pushes)
                cum_parts.append(partitions_expanded)
                cum_private.append(private_pruned)
                cum_tpruned.append(temporally_pruned)
                cum_ati.append(probe_counters[0])
                cum_refresh.append(probe_counters[1])
                cum_member.append(probe_counters[2])
                continue
            settled[node] = 1

            if node == source_node:
                partitions_expanded += 1
                for door_idx in graph.leaveable_by_partition[source_pidx]:
                    if door_floor[door_idx] != source_floor:
                        continue
                    leg = hypot(source_x - door_x[door_idx], source_y - door_y[door_idx])
                    relaxations += 1
                    leg = probe(door_idx, leg)
                    if leg is None:
                        temporally_pruned += 1
                        continue
                    if leg < dist[door_idx]:
                        dist[door_idx] = leg
                        prev_node[door_idx] = source_node
                        prev_part[door_idx] = source_pidx
                        heappush_local(heap, (leg, tie, door_idx))
                        tie += 1
                        pushes += 1
                        occupancy += 1
                        if occupancy > peak:
                            peak = occupancy
                        occ_after.append(occupancy)
                        prefix_peak.append(peak)
            else:
                doors_settled += 1
                door_distance = dist[node]
                for partition_idx, is_private, edges in adjacency[node]:
                    if is_private and partition_idx not in allowed_private:
                        private_pruned += 1
                        continue
                    partitions_expanded += 1

                    # The target-relax opportunity of this (door, partition)
                    # expansion: a member targeting ``partition_idx`` would
                    # push here, before the group's edge pushes.
                    rows = rows_by_partition.get(partition_idx)
                    if rows is None:
                        rows = rows_by_partition[partition_idx] = []
                    rows.append((node, door_distance, pushes, occupancy))

                    for next_idx, leg in edges:
                        if settled[next_idx]:
                            continue
                        candidate = door_distance + leg
                        relaxations += 1
                        candidate = probe(next_idx, candidate)
                        if candidate is None:
                            temporally_pruned += 1
                            continue
                        if candidate < dist[next_idx]:
                            dist[next_idx] = candidate
                            prev_node[next_idx] = node
                            prev_part[next_idx] = partition_idx
                            heappush_local(heap, (candidate, tie, next_idx))
                            tie += 1
                            pushes += 1
                            occupancy += 1
                            if occupancy > peak:
                                peak = occupancy
                            occ_after.append(occupancy)
                            prefix_peak.append(peak)

            cum_settled.append(doors_settled)
            cum_relax.append(relaxations)
            cum_pushes.append(pushes)
            cum_parts.append(partitions_expanded)
            cum_private.append(private_pruned)
            cum_tpruned.append(temporally_pruned)
            cum_ati.append(probe_counters[0])
            cum_refresh.append(probe_counters[1])
            cum_member.append(probe_counters[2])

        # -- block-max index over the occupancy trajectory -------------------
        block_max = array("l")
        for start in range(0, len(occ_after), _BLOCK):
            block_max.append(max(occ_after[start : start + _BLOCK]))

        tree = CachedTree()
        tree.kind = kind
        tree.method_label = method_label
        tree.semantics = semantics
        tree.source_pidx = source_pidx
        tree.source_x = source_x
        tree.source_y = source_y
        tree.source_floor = source_floor
        tree.rep_seconds = rep_seconds
        tree.generation = self.generation
        tree.dist = dist
        tree.prev_node = prev_node
        tree.prev_part = prev_part
        tree.pop_dist = pop_dist
        tree.pop_push = pop_push
        tree.cum_settled = cum_settled
        tree.cum_relax = cum_relax
        tree.cum_pushes = cum_pushes
        tree.cum_parts = cum_parts
        tree.cum_private = cum_private
        tree.cum_tpruned = cum_tpruned
        tree.cum_ati = cum_ati
        tree.cum_refresh = cum_refresh
        tree.cum_member = cum_member
        tree.occ_after = occ_after
        tree.prefix_peak = prefix_peak
        tree.block_max = block_max
        tree.rows_by_partition = {
            pidx: tuple(rows) for pidx, rows in rows_by_partition.items()
        }
        tree.total_pushes = pushes
        tree.total_events = len(pop_dist)
        return tree

    # -- answering -------------------------------------------------------------

    def answer(self, tree: CachedTree, query: ITSPQuery, target_pidx: int) -> QueryResult:
        """Answer one member query from a recorded tree — O(path length +
        rows until settle), no Dijkstra, bit-identical result and statistics
        (``runtime_seconds`` is the caller's to fill in).  ``target_pidx`` is
        the partition of the search *goal* — under latest-departure semantics
        that is the query's source, matching the tree's backward anchor."""
        graph = self._graph
        kind = tree.kind
        semantics = tree.semantics
        goal_point = semantics.search_endpoints(query)[1]
        tx, ty, tfloor = goal_point.x, goal_point.y, goal_point.floor

        # -- replay the member's target pushes from the opportunity rows -----
        best = _INFINITY
        t_count = 0
        push_points: List[Tuple[int, int]] = []
        win_node = -1
        win_part = -1
        source_node = graph.door_count
        if target_pidx == tree.source_pidx and tfloor == tree.source_floor:
            best = hypot(tree.source_x - tx, tree.source_y - ty)
            t_count = 1
            push_points.append((1, 1))
            win_node = source_node
            win_part = tree.source_pidx
        rows = tree.rows_by_partition.get(target_pidx)
        if rows is not None:
            door_floor = graph.door_floor
            door_x = graph.door_x
            door_y = graph.door_y
            for node, door_distance, push_count, occupancy in rows:
                if door_distance >= best:
                    # Rows are chronological, hence nondecreasing in door
                    # distance: nothing further can improve the candidate.
                    break
                if door_floor[node] != tfloor:
                    continue
                candidate = door_distance + hypot(tx - door_x[node], ty - door_y[node])
                if candidate < best:
                    best = candidate
                    t_count += 1
                    push_points.append((push_count, occupancy))
                    win_node = node
                    win_part = target_pidx

        if t_count == 0:
            # The member's target never enters the heap: its private search
            # runs the identical full trajectory and exhausts the heap.
            last = tree.total_events - 1
            stats = SearchStatistics(
                doors_settled=tree.cum_settled[last],
                relaxations=tree.cum_relax[last],
                heap_pushes=tree.total_pushes,
                heap_pops=tree.total_events,
                partitions_expanded=tree.cum_parts[last],
                private_partitions_pruned=tree.cum_private[last],
                temporally_pruned_doors=tree.cum_tpruned[last],
                ati_probes=tree.cum_ati[last],
                snapshot_refreshes=tree.cum_refresh[last],
                membership_checks=tree.cum_member[last],
                peak_heap_size=tree.prefix_peak[tree.total_pushes - 1],
            )
            derive_counters(semantics, kind, stats)
            return semantics.finalise_result(
                QueryResult(
                    query=query,
                    method_label=tree.method_label,
                    found=False,
                    path=None,
                    length=_INFINITY,
                    statistics=stats,
                ),
                self._speed,
            )

        # -- settle position: binary search over the sorted event log --------
        best_push = push_points[-1][0]
        pop_dist = tree.pop_dist
        pop_push = tree.pop_push
        lo, hi = 0, tree.total_events
        while lo < hi:
            mid = (lo + hi) >> 1
            event_dist = pop_dist[mid]
            if event_dist < best or (event_dist == best and pop_push[mid] < best_push):
                lo = mid + 1
            else:
                hi = mid
        settle = lo  # events completed before the target's settling pop; >= 1
        last = settle - 1

        # -- peak heap size: prefix max before the first target push, then ---
        # per-segment range maxima with the member's live-target count added.
        first_push, first_occ = push_points[0]
        peak = tree.prefix_peak[first_push - 1]
        if first_occ + 1 > peak:
            peak = first_occ + 1
        for index in range(1, t_count):
            candidate_peak = push_points[index][1] + index + 1
            if candidate_peak > peak:
                peak = candidate_peak
        shared_pushes = tree.cum_pushes[last]
        occ_after = tree.occ_after
        block_max = tree.block_max
        for index in range(t_count):
            lo_push = push_points[index][0]
            hi_push = (push_points[index + 1][0] if index + 1 < t_count else shared_pushes) - 1
            if lo_push > hi_push:
                continue
            lo_block = lo_push >> _BLOCK_SHIFT
            hi_block = hi_push >> _BLOCK_SHIFT
            if lo_block == hi_block:
                segment_max = max(occ_after[lo_push : hi_push + 1])
            else:
                segment_max = max(occ_after[lo_push : (lo_block + 1) << _BLOCK_SHIFT])
                tail_max = max(occ_after[hi_block << _BLOCK_SHIFT : hi_push + 1])
                if tail_max > segment_max:
                    segment_max = tail_max
                if hi_block > lo_block + 1:
                    middle = max(block_max[lo_block + 1 : hi_block])
                    if middle > segment_max:
                        segment_max = middle
            candidate_peak = segment_max + index + 1
            if candidate_peak > peak:
                peak = candidate_peak

        stats = SearchStatistics(
            doors_settled=tree.cum_settled[last],
            relaxations=tree.cum_relax[last],
            heap_pushes=shared_pushes + t_count,
            heap_pops=settle + 1,
            partitions_expanded=tree.cum_parts[last],
            private_partitions_pruned=tree.cum_private[last],
            temporally_pruned_doors=tree.cum_tpruned[last],
            ati_probes=tree.cum_ati[last],
            snapshot_refreshes=tree.cum_refresh[last],
            membership_checks=tree.cum_member[last],
            peak_heap_size=peak,
        )
        derive_counters(semantics, kind, stats)

        return semantics.finalise_result(
            QueryResult(
                query=query,
                method_label=tree.method_label,
                found=True,
                path=self._reconstruct(tree, query, win_node, win_part, best),
                length=best,
                statistics=stats,
            ),
            self._speed,
        )

    def _reconstruct(
        self, tree: CachedTree, query: ITSPQuery, win_node: int, win_part: int, length: float
    ) -> IndoorPath:
        """Predecessor-chain walk, arrival times stamped with the member's
        own query second (the same floats the engines produce).  The path is
        anchor-rooted, exactly like the engines' raw reconstruction —
        ``semantics.finalise_result`` re-orients it afterwards."""
        graph = self._graph
        semantics = tree.semantics
        anchor_point, goal_point = semantics.search_endpoints(query)
        forward = semantics.forward
        source_node = graph.door_count
        hops: List[PathHop] = []
        if win_node != source_node:
            prev_node = tree.prev_node
            prev_part = tree.prev_part
            chain: List[Tuple[int, int]] = []
            node = win_node
            while node != source_node:
                chain.append((node, prev_part[node]))
                node = prev_node[node]
            chain.reverse()

            dist = tree.dist
            door_ids = graph.door_ids
            partition_ids = graph.partition_ids
            query_seconds = query.query_time.seconds
            speed = self._speed
            from_seconds = TimeOfDay._from_seconds_unchecked
            last_index = len(chain) - 1
            for index, (node, via_partition) in enumerate(chain):
                next_via = chain[index + 1][1] if index < last_index else win_part
                offset = dist[node] / speed
                arrival = from_seconds(query_seconds + offset if forward else query_seconds - offset)
                hops.append(
                    PathHop(
                        door_ids[node],
                        partition_ids[via_partition],
                        partition_ids[next_via],
                        dist[node],
                        arrival,
                    )
                )

        return IndoorPath(
            source=anchor_point,
            target=goal_point,
            query_time=query.query_time,
            hops=hops,
            total_length=length,
            method_label=tree.method_label,
        )

    # -- overlay-backed pruning ------------------------------------------------

    def prune_result(
        self,
        query: ITSPQuery,
        method_label: str,
        kind: int,
        source_pidx: int,
        target_pidx: int,
        query_seconds: float,
    ) -> Optional[QueryResult]:
        """A not-found answer when the overlays *prove* unreachability, else
        ``None``.  Found/length are exact (the proof is sound: component rows
        over-approximate reachability); the counters of a pruned answer are
        approximate (zeros), which is why pruning is opt-in."""
        if not self.config.prune_unreachable:
            return None
        overlays = self._graph.overlays
        if overlays is None:
            return None
        source = query.source
        target = query.target
        if source_pidx == target_pidx and source.floor == target.floor:
            return None  # the door-free direct leg always exists
        if kind == 3 and self.resolver.interval_indexing_sound():
            row = overlays.row_for_kind(kind, self.resolver.interval_index(query_seconds))
        else:
            row = overlays.row_for_kind(kind)
        if overlays.connected(
            row,
            self._graph.leaveable_by_partition[source_pidx],
            overlays.entering_doors[target_pidx],
        ):
            return None
        self.pruned += 1
        return QueryResult(
            query=query,
            method_label=method_label,
            found=False,
            path=None,
            length=_INFINITY,
            statistics=SearchStatistics(),
        )

    # -- warming ---------------------------------------------------------------

    def warm(self, groups) -> int:
        """Record trees for every planned group not already cached; returns
        the number of trees built (the compile-time warm-up pass)."""
        built = 0
        for group in groups:
            key = getattr(group, "cache_key", None)
            if key is None or self.peek(key) is not None:
                continue
            self.build_for_group(group)
            built += 1
        return built

    # -- timing helper ---------------------------------------------------------

    def answer_timed(self, tree: CachedTree, query: ITSPQuery, target_pidx: int) -> QueryResult:
        """:meth:`answer` with ``runtime_seconds`` measured around the call
        (the single-query engine seam stamps its own; this is for callers
        answering straight off the cache)."""
        started = time.perf_counter()
        result = self.answer(tree, query, target_pidx)
        result.statistics.runtime_seconds = time.perf_counter() - started
        return result
