"""The compiled integer-indexed query core: an array-backed IT-Graph fast path.

The reference engine (:mod:`repro.core.engine`, ``compiled=False``) is a
faithful object-level transcription of Algorithm 1: every relaxation probes
string-keyed dicts, every ``DM`` lookup allocates a ``frozenset`` pair key,
and every temporal check builds a fresh
:class:`~repro.temporal.timeofday.TimeOfDay`.  Those per-relaxation Python
object costs dominate the millisecond budget the paper claims for ITSPQ.

:class:`CompiledITGraph` removes them by lowering the IT-Graph once into flat
integer-indexed arrays:

* doors and partitions are interned to contiguous integer ids;
* each partition's distance matrix ``DM`` becomes a dense row-major
  ``array('d')`` — an O(1) offset lookup with no pair-key allocation;
* the ``D2P⊢`` / ``P2D⊣`` adjacency used by the door-level Dijkstra is
  flattened into prebuilt per-door lists of ``(partition, [(door, leg), …])``
  groups, priced from the dense matrices at build time;
* every door's ATI set is lowered to a flat sorted array of boundary seconds,
  so a passability probe is a single ``bisect`` on a raw float; and
* the snapshot layer's per-checkpoint-interval reductions become precomputed
  open-door **bitsets** (:class:`~repro.core.snapshot.IntervalBitsets`), so
  the ITG/A membership test is a flat ``flags[door]`` index test.

The compiled structures preserve the *iteration order* the reference search
would observe (the order of the topology's frozenset views), so the compiled
Dijkstra settles nodes in exactly the same sequence and returns bit-identical
paths, lengths and search statistics — the parity tests assert this.

The four ``TV_Check`` instantiations have seconds-based counterparts here
(:class:`CompiledSyncCheck`, :class:`CompiledAsyncCheck`,
:class:`CompiledStaticCheck`, :class:`CompiledQueryTimeCheck`) that keep the
paper's check-before-relax ordering and the reference strategies' counters.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_right
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.core.itgraph import ITGraph
from repro.core.snapshot import CompiledSnapshotStore, IntervalBitsets
from repro.exceptions import UnknownEntityError
from repro.indoor.entities import Partition

#: ``(next_door_index, intra-partition leg metres)``
CompiledEdge = Tuple[int, float]
#: ``(partition_index, partition_is_private, edges)``
CompiledGroup = Tuple[int, bool, Tuple[CompiledEdge, ...]]

#: canonical method name -> (dispatch kind, paper label); the kinds index the
#: inline TV-check branches shared by ``ITSPQEngine._search_compiled`` and the
#: batch executor's multi-target search (:mod:`repro.core.batch`).
COMPILED_KINDS: Dict[str, Tuple[int, str]] = {
    "synchronous": (0, "ITG/S"),
    "asynchronous": (1, "ITG/A"),
    "static": (2, "static"),
    "query-time": (3, "query-time-snapshot"),
}

_NAN = float("nan")


class CompiledITGraph:
    """The integer-indexed compiled form of one (immutable) IT-Graph.

    Built once via :meth:`ITGraph.compiled` and shared by every engine that
    queries the same graph.  All hot-loop state is indexed by the interned
    door/partition ids; the original string identifiers are kept only for
    path reconstruction and for the (cold) query-endpoint legs.
    """

    __slots__ = (
        "itgraph",
        "door_ids",
        "door_index",
        "partition_ids",
        "partition_index",
        "partition_private",
        "partition_outdoor",
        "dm_arrays",
        "dm_locals",
        "dm_sizes",
        "adjacency",
        "ati_bounds",
        "interval_bitsets",
        "door_x",
        "door_y",
        "door_floor",
        "leaveable_by_partition",
        "locate_specs",
        "overlays",
        "_locate_entries",
        "_locate_grid",
    )

    def __init__(self, itgraph: ITGraph):
        self.itgraph = itgraph
        topology = itgraph.topology

        # -- interning ---------------------------------------------------------
        self.door_ids: List[str] = itgraph.door_ids()
        self.door_index: Dict[str, int] = {d: i for i, d in enumerate(self.door_ids)}
        self.partition_ids: List[str] = itgraph.partition_ids()
        self.partition_index: Dict[str, int] = {p: i for i, p in enumerate(self.partition_ids)}

        self.partition_private: List[bool] = []
        self.partition_outdoor: List[bool] = []
        for partition_id in self.partition_ids:
            record = itgraph.partition_record(partition_id)
            self.partition_private.append(record.is_private)
            self.partition_outdoor.append(record.is_outdoor)

        # -- dense per-partition distance matrices -----------------------------
        self.dm_arrays: List[array] = []
        self.dm_locals: List[Dict[int, int]] = []
        self.dm_sizes: List[int] = []
        for partition_id in self.partition_ids:
            matrix = itgraph.partition_record(partition_id).distance_matrix
            member_ids = list(matrix.doors)
            size = len(member_ids)
            dense = array("d", [0.0]) * (size * size) if size else array("d")
            for a, door_a in enumerate(member_ids):
                base = a * size
                for b, door_b in enumerate(member_ids):
                    try:
                        dense[base + b] = matrix.distance(door_a, door_b)
                    except UnknownEntityError:
                        dense[base + b] = _NAN
            self.dm_arrays.append(dense)
            self.dm_locals.append(
                {self.door_index[door_id]: local for local, door_id in enumerate(member_ids)}
            )
            self.dm_sizes.append(size)

        # -- flattened search adjacency ----------------------------------------
        # The group order per door and the edge order per group deliberately
        # follow the topology's frozenset iteration order: it is what the
        # reference search iterates at query time, and matching it keeps heap
        # tie-breaking (and therefore returned paths) bit-identical.
        adjacency: List[Tuple[CompiledGroup, ...]] = []
        for door_id in self.door_ids:
            groups: List[CompiledGroup] = []
            for partition_id in topology.enterable_partitions(door_id):
                pidx = self.partition_index[partition_id]
                if self.partition_outdoor[pidx]:
                    continue
                dense = self.dm_arrays[pidx]
                local = self.dm_locals[pidx]
                size = self.dm_sizes[pidx]
                row = local.get(self.door_index[door_id])
                edges: List[CompiledEdge] = []
                if row is not None:
                    base = row * size
                    for next_door in topology.leaveable_doors(partition_id):
                        if next_door == door_id:
                            continue
                        next_idx = self.door_index[next_door]
                        column = local.get(next_idx)
                        if column is None:
                            continue
                        leg = dense[base + column]
                        if leg != leg:  # NaN: no intra-partition distance defined
                            continue
                        edges.append((next_idx, leg))
                groups.append((pidx, self.partition_private[pidx], tuple(edges)))
            adjacency.append(tuple(groups))
        self.adjacency: Tuple[Tuple[CompiledGroup, ...], ...] = tuple(adjacency)

        # -- flat temporal state -----------------------------------------------
        self.ati_bounds: Tuple[Tuple[float, ...], ...] = tuple(
            tuple(itgraph.door_record(door_id).atis.boundary_seconds())
            for door_id in self.door_ids
        )
        self.interval_bitsets = IntervalBitsets(itgraph, self.door_ids)

        # -- flat door geometry (query endpoint legs) --------------------------
        self.door_x = array("d", [0.0]) * len(self.door_ids)
        self.door_y = array("d", [0.0]) * len(self.door_ids)
        self.door_floor: List[int] = [0] * len(self.door_ids)
        for index, door_id in enumerate(self.door_ids):
            position = itgraph.door_record(door_id).position
            self.door_x[index] = position.x
            self.door_y[index] = position.y
            self.door_floor[index] = position.floor

        # ``P2D⊣`` lowered to index lists (same frozenset iteration order the
        # reference search observes when expanding the source partition).
        self.leaveable_by_partition: List[Tuple[int, ...]] = [
            tuple(self.door_index[door_id] for door_id in topology.leaveable_doors(partition_id))
            for partition_id in self.partition_ids
        ]

        # -- compiled point location -------------------------------------------
        # ``locate_specs`` is the flat, serialisable source of the point
        # location structures: one row per located partition, in the space's
        # insertion order (which fixes first-match semantics).  The entry and
        # grid build lives in :meth:`_install_point_location` so a graph
        # rehydrated from the ``repro.io`` codec constructs identical
        # structures from the same rows.
        self.locate_specs: Tuple[Tuple[int, int, object, object], ...] = tuple(
            (
                self.partition_index[partition.partition_id],
                partition.floor,
                partition.spans_floors,
                partition.polygon,
            )
            for partition in itgraph.space.iter_partitions()
            if partition.polygon is not None
        )
        #: Optional per-interval precompute (:class:`IntervalOverlays`); built
        #: on demand by :meth:`build_overlays` and carried through the codec.
        self.overlays: Optional["IntervalOverlays"] = None
        self._install_point_location()

    def _install_point_location(self) -> None:
        """Build the per-floor locate entries and grids from :attr:`locate_specs`.

        Same first-match-in-insertion-order semantics as ``IndoorSpace.locate``
        but bucketed per floor with a flat bbox prefilter, so most partitions
        are rejected without any method call.  Bucketing preserves the
        insertion order within each floor (a point has exactly one floor, so
        the first bucketed match is the first global match), and the bbox
        test uses the same 1e-9 tolerance as the polygon containment tests,
        so it never rejects a partition the exact test would accept.

        The containment probe is :meth:`Partition.contains_point` of a
        partition rebuilt from the spec row — the method reads only the
        polygon, floor and floor span, so the probe is bit-identical whether
        the graph was compiled from an IT-Graph or rehydrated from bytes.
        """
        locate_by_floor: Dict[int, List[Tuple[float, float, float, float, object, int]]] = {}
        for pidx, floor, spans, polygon in self.locate_specs:
            probe = Partition(
                partition_id=self.partition_ids[pidx],
                polygon=polygon,
                floor=floor,
                spans_floors=spans,
            )
            if spans is not None:
                floor_low, floor_high = spans
            else:
                floor_low = floor_high = floor
            box = polygon.bounding_box
            entry = (
                box.min_x - 1e-9,
                box.max_x + 1e-9,
                box.min_y - 1e-9,
                box.max_y + 1e-9,
                probe.contains_point,
                pidx,
            )
            for bucket_floor in range(floor_low, floor_high + 1):
                locate_by_floor.setdefault(bucket_floor, []).append(entry)
        self._locate_entries = {floor: tuple(rows) for floor, rows in locate_by_floor.items()}

        # Uniform point-location grid per floor: each cell holds, in the same
        # insertion order as ``_locate_entries``, the entries whose (inflated)
        # bbox overlaps the cell.  A lookup inspects one cell instead of the
        # whole floor, making ``locate_index`` O(1)-ish at paper scale while
        # preserving the exact first-match semantics (any entry containing a
        # point overlaps the point's cell, and cell lists keep global order).
        self._locate_grid = {
            floor: self._build_floor_grid(rows) for floor, rows in self._locate_entries.items()
        }

    @classmethod
    def _from_state(cls, state: Dict[str, object]) -> "CompiledITGraph":
        """Rebuild a compiled graph from the ``repro.io`` codec's state dict.

        The rehydrated graph serves queries (sequential, batch and parallel)
        with bit-identical results and statistics, but carries no
        :class:`~repro.core.itgraph.ITGraph`: :attr:`itgraph` is ``None``,
        which only matters to callers that want the object-level reference
        engine.  This is what worker processes and future venue shards build
        their executors from.
        """
        graph = object.__new__(cls)
        graph.itgraph = None
        graph.door_ids = list(state["door_ids"])
        graph.door_index = {door_id: i for i, door_id in enumerate(graph.door_ids)}
        graph.partition_ids = list(state["partition_ids"])
        graph.partition_index = {pid: i for i, pid in enumerate(graph.partition_ids)}
        graph.partition_private = list(state["partition_private"])
        graph.partition_outdoor = list(state["partition_outdoor"])
        graph.dm_arrays = list(state["dm_arrays"])
        graph.dm_locals = list(state["dm_locals"])
        graph.dm_sizes = [len(local) for local in graph.dm_locals]
        graph.adjacency = tuple(state["adjacency"])
        graph.ati_bounds = tuple(state["ati_bounds"])
        graph.interval_bitsets = state["interval_bitsets"]
        graph.door_x = state["door_x"]
        graph.door_y = state["door_y"]
        graph.door_floor = list(state["door_floor"])
        graph.leaveable_by_partition = list(state["leaveable_by_partition"])
        graph.locate_specs = tuple(state["locate_specs"])
        graph.overlays = state.get("overlays")
        graph._install_point_location()
        return graph

    def build_overlays(self, landmark_count: int = 4) -> "IntervalOverlays":
        """Build (or rebuild) the per-interval precompute pass and attach it.

        An offline cost like compilation itself: reachability closures for
        every checkpoint interval plus interval-keyed landmark distance rows.
        Once attached, :func:`repro.io.compiled_codec.compiled_graph_to_bytes`
        serialises the overlays as the payload's optional ``precompute``
        section, so worker processes rehydrate them for free.
        """
        self.overlays = IntervalOverlays.build(self, landmark_count=landmark_count)
        return self.overlays

    @staticmethod
    def _build_floor_grid(rows):
        """``(min_x, min_y, inv_w, inv_h, nx, ny, cells)`` for one floor."""
        min_x = min(row[0] for row in rows)
        max_x = max(row[1] for row in rows)
        min_y = min(row[2] for row in rows)
        max_y = max(row[3] for row in rows)
        # Aim for about one partition per cell on a roughly square grid.
        side = max(1, math.isqrt(len(rows)))
        nx = side if max_x > min_x else 1
        ny = side if max_y > min_y else 1
        inv_w = nx / (max_x - min_x) if max_x > min_x else 0.0
        inv_h = ny / (max_y - min_y) if max_y > min_y else 0.0
        cells: List[List[tuple]] = [[] for _ in range(nx * ny)]
        for row in rows:
            x_low = min(int((row[0] - min_x) * inv_w), nx - 1)
            x_high = min(int((row[1] - min_x) * inv_w), nx - 1)
            y_low = min(int((row[2] - min_y) * inv_h), ny - 1)
            y_high = min(int((row[3] - min_y) * inv_h), ny - 1)
            for cx in range(x_low, x_high + 1):
                base = cx * ny
                for cy in range(y_low, y_high + 1):
                    cells[base + cy].append(row)
        return (min_x, min_y, inv_w, inv_h, nx, ny, tuple(tuple(cell) for cell in cells))

    # -- accessors -------------------------------------------------------------

    @property
    def door_count(self) -> int:
        """Number of interned doors."""
        return len(self.door_ids)

    @property
    def partition_count(self) -> int:
        """Number of interned partitions."""
        return len(self.partition_ids)

    def intra_distance_idx(self, partition_idx: int, door_a_idx: int, door_b_idx: int) -> float:
        """``DM`` lookup by integer ids: O(1) dense-array offset, no allocation.

        Raises
        ------
        UnknownEntityError
            If either door does not belong to the partition or the distance
            is undefined (cross-floor pair without a stairway override).
        """
        local = self.dm_locals[partition_idx]
        try:
            row = local[door_a_idx]
            column = local[door_b_idx]
        except KeyError as exc:
            raise UnknownEntityError(
                f"door index {exc.args[0]} is not a door of partition "
                f"{self.partition_ids[partition_idx]!r}"
            ) from exc
        value = self.dm_arrays[partition_idx][row * self.dm_sizes[partition_idx] + column]
        if value != value:
            raise UnknownEntityError(
                "no intra-partition distance between doors "
                f"{self.door_ids[door_a_idx]!r} and {self.door_ids[door_b_idx]!r}"
            )
        return value

    def door_open_at_seconds(self, door_idx: int, instant_seconds: float) -> bool:
        """Flat-array passability probe: one ``bisect`` on raw floats."""
        return bisect_right(self.ati_bounds[door_idx], instant_seconds) & 1 == 1

    def locate_index(self, point) -> int:
        """Partition index covering ``point`` — compiled ``P(p)``.

        First-match-in-insertion-order, exactly like
        :meth:`~repro.indoor.space.IndoorSpace.locate`, but served from the
        per-floor uniform grid: only the partitions whose bounding box
        overlaps the point's grid cell are tested, so endpoint location costs
        a handful of containment tests regardless of venue size.  Any
        partition containing the point overlaps its cell and cell lists keep
        the global insertion order, so the first match is the same partition
        the linear scan (:meth:`locate_index_linear`) returns.

        Raises
        ------
        UnknownEntityError
            If no partition covers the point.
        """
        grid = self._locate_grid.get(point.floor)
        if grid is None:
            raise UnknownEntityError(f"no partition covers point {point!r}")
        min_x, min_y, inv_w, inv_h, nx, ny, cells = grid
        x = point.x
        y = point.y
        cx = int((x - min_x) * inv_w)
        if cx < 0:
            cx = 0
        elif cx >= nx:
            cx = nx - 1
        cy = int((y - min_y) * inv_h)
        if cy < 0:
            cy = 0
        elif cy >= ny:
            cy = ny - 1
        for bbox_min_x, bbox_max_x, bbox_min_y, bbox_max_y, contains_point, pidx in cells[
            cx * ny + cy
        ]:
            if (
                bbox_min_x <= x <= bbox_max_x
                and bbox_min_y <= y <= bbox_max_y
                and contains_point(point)
            ):
                return pidx
        raise UnknownEntityError(f"no partition covers point {point!r}")

    def locate_index_linear(self, point) -> int:
        """The pre-grid linear bbox scan (the oracle for grid equivalence).

        Same first-match-in-insertion-order semantics as :meth:`locate_index`;
        kept for tests and as a reference for venues whose geometry defeats
        uniform bucketing.

        Raises
        ------
        UnknownEntityError
            If no partition covers the point.
        """
        x = point.x
        y = point.y
        for min_x, max_x, min_y, max_y, contains_point, pidx in self._locate_entries.get(
            point.floor, ()
        ):
            if min_x <= x <= max_x and min_y <= y <= max_y and contains_point(point):
                return pidx
        raise UnknownEntityError(f"no partition covers point {point!r}")

    def memory_bytes(self) -> int:
        """Approximate payload size of the compiled arrays (for reports)."""
        dm_bytes = sum(dense.itemsize * len(dense) for dense in self.dm_arrays)
        ati_bytes = sum(8 * len(bounds) for bounds in self.ati_bounds)
        edge_bytes = sum(
            16 * len(edges) for groups in self.adjacency for _, _, edges in groups
        )
        return dm_bytes + ati_bytes + edge_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledITGraph({self.partition_count} partitions, {self.door_count} doors, "
            f"{self.interval_bitsets.interval_count} intervals)"
        )


class IntervalOverlays:
    """Per-interval precompute: reachability closures + landmark distance rows.

    Within one checkpoint interval the open-door bitset is frozen, so the
    search graph is one member of a small family of static graphs.  This
    class precomputes, for every interval:

    * a **component row** — a connected-component label per door over the
      doors open in that interval (closed doors get ``-1``), computed over
      the *most permissive* door-to-door adjacency (edges through private
      partitions included, treated as undirected).  Two doors in different
      components are provably mutually unreachable in that interval under
      any privacy context — the sound direction for pruning; and
    * **landmark distance rows** — exact door-to-door shortest distances
      from a few high-degree landmark doors over the interval's frozen
      graph (``inf`` = unreachable), usable as triangle-inequality lower
      bounds on door-to-door distances.

    Two extra component rows cover the time-free views: row
    ``interval_count`` labels doors that are open at *some* time of day
    (the sound row for the arrival-time methods, whose probes move through
    many instants), and row ``interval_count + 1`` ignores schedules
    entirely (the row for the ``static`` method).

    Overlays are deterministic functions of the compiled graph, so they
    serialise byte-stably in the codec's optional ``precompute`` section and
    an overlay rehydrated from bytes re-serialises to identical bytes.
    """

    __slots__ = (
        "door_count",
        "interval_count",
        "component_rows",
        "landmark_indices",
        "landmark_rows",
        "entering_doors",
    )

    def __init__(
        self,
        door_count: int,
        interval_count: int,
        component_rows: Tuple[array, ...],
        landmark_indices: Tuple[int, ...],
        landmark_rows: Tuple[Tuple[array, ...], ...],
        entering_doors: Tuple[Tuple[int, ...], ...],
    ):
        if len(component_rows) != interval_count + 2:
            raise ValueError(
                f"expected {interval_count + 2} component rows, got {len(component_rows)}"
            )
        self.door_count = door_count
        self.interval_count = interval_count
        #: ``component_rows[i][door]`` = component label of ``door`` among the
        #: doors open in interval ``i`` (``-1`` = closed); rows
        #: ``interval_count`` and ``interval_count + 1`` are the any-time and
        #: topology-only views.
        self.component_rows = component_rows
        self.landmark_indices = landmark_indices
        #: ``landmark_rows[i][k][door]`` = exact distance from landmark ``k``
        #: to ``door`` over the interval-``i`` frozen graph (``inf`` =
        #: unreachable there).
        self.landmark_rows = landmark_rows
        #: Doors adjacent *into* each partition (the doors that can relax a
        #: target inside it) — derived from the adjacency, not serialised.
        self.entering_doors = entering_doors

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, graph: "CompiledITGraph", landmark_count: int = 4) -> "IntervalOverlays":
        """Compute the overlays of ``graph`` (deterministic, compile-time)."""
        door_count = graph.door_count
        bitsets = graph.interval_bitsets
        interval_count = bitsets.interval_count

        out_edges: List[List[Tuple[int, float]]] = [[] for _ in range(door_count)]
        undirected = set()
        degree = [0] * door_count
        for door, groups in enumerate(graph.adjacency):
            for _pidx, _is_private, edges in groups:
                for next_door, leg in edges:
                    out_edges[door].append((next_door, leg))
                    degree[door] += 1
                    undirected.add(
                        (door, next_door) if door < next_door else (next_door, door)
                    )
        edge_list = sorted(undirected)

        rows: List[array] = []
        for index in range(interval_count):
            rows.append(cls._components(door_count, edge_list, bitsets.bitset_by_index(index)))
        any_open = bytes(1 if graph.ati_bounds[d] else 0 for d in range(door_count))
        rows.append(cls._components(door_count, edge_list, any_open))
        rows.append(cls._components(door_count, edge_list, b"\x01" * door_count))

        count = max(0, min(landmark_count, door_count))
        landmarks = tuple(sorted(range(door_count), key=lambda d: (-degree[d], d))[:count])
        landmark_rows = tuple(
            tuple(
                cls._distances(door_count, out_edges, bitsets.bitset_by_index(index), landmark)
                for landmark in landmarks
            )
            for index in range(interval_count)
        )

        return cls(
            door_count,
            interval_count,
            tuple(rows),
            landmarks,
            landmark_rows,
            cls.entering_from_adjacency(graph.adjacency, graph.partition_count),
        )

    @staticmethod
    def entering_from_adjacency(adjacency, partition_count: int) -> Tuple[Tuple[int, ...], ...]:
        """Doors whose adjacency enters each partition (deterministic order)."""
        entering: List[List[int]] = [[] for _ in range(partition_count)]
        for door, groups in enumerate(adjacency):
            for pidx, _is_private, _edges in groups:
                entering[pidx].append(door)
        return tuple(tuple(doors) for doors in entering)

    @staticmethod
    def _components(door_count: int, edge_list, open_flags) -> array:
        """Component label per open door (``-1`` = closed); labels are the
        smallest door index of each component, so the row is canonical."""
        parent = list(range(door_count))

        def find(node: int) -> int:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:
                parent[node], node = root, parent[node]
            return root

        for door_a, door_b in edge_list:
            if open_flags[door_a] and open_flags[door_b]:
                root_a = find(door_a)
                root_b = find(door_b)
                if root_a != root_b:
                    if root_a < root_b:
                        parent[root_b] = root_a
                    else:
                        parent[root_a] = root_b
        row = array("i", [-1]) * door_count
        for door in range(door_count):
            if open_flags[door]:
                row[door] = find(door)
        return row

    @staticmethod
    def _distances(door_count: int, out_edges, open_flags, landmark: int) -> array:
        """Exact Dijkstra distances from ``landmark`` over the open doors."""
        infinity = math.inf
        dist = array("d", [infinity]) * door_count
        if not open_flags[landmark]:
            return dist
        dist[landmark] = 0.0
        settled = bytearray(door_count)
        heap: List[Tuple[float, int]] = [(0.0, landmark)]
        while heap:
            distance, door = heappop(heap)
            if settled[door]:
                continue
            settled[door] = 1
            for next_door, leg in out_edges[door]:
                if settled[next_door] or not open_flags[next_door]:
                    continue
                candidate = distance + leg
                if candidate < dist[next_door]:
                    dist[next_door] = candidate
                    heappush(heap, (candidate, next_door))
        return dist

    # -- probes ----------------------------------------------------------------

    @property
    def any_time_row(self) -> int:
        """Index of the any-time component row (arrival-time methods)."""
        return self.interval_count

    @property
    def topology_row(self) -> int:
        """Index of the schedule-free component row (``static`` method)."""
        return self.interval_count + 1

    def row_for_kind(self, kind: int, interval_index: Optional[int] = None) -> array:
        """The sound component row for one TV-check dispatch kind.

        ``static`` never looks at the clock (topology row); ``query-time``
        probes exactly one interval (its row, when the caller knows the
        index); the arrival-time methods probe many instants, so only the
        any-time row is sound for them.
        """
        if kind == 2:
            return self.component_rows[self.topology_row]
        if kind == 3 and interval_index is not None:
            return self.component_rows[min(interval_index, self.interval_count - 1)]
        return self.component_rows[self.any_time_row]

    def connected(self, row: array, doors_a, doors_b) -> bool:
        """Whether any open door of ``doors_a`` shares a component with any
        open door of ``doors_b`` under ``row`` (the *may-be-reachable* test;
        ``False`` is a proof of unreachability)."""
        components = {row[door] for door in doors_a if row[door] >= 0}
        if not components:
            return False
        for door in doors_b:
            label = row[door]
            if label >= 0 and label in components:
                return True
        return False

    def landmark_bound(self, interval_index: int, door_a: int, door_b: int) -> float:
        """Triangle-inequality lower bound on the interval's door-to-door
        distance: ``max_k |d(L_k, a) - d(L_k, b)|`` (``inf`` = provably
        unreachable, ``0.0`` = no information)."""
        best = 0.0
        for row in self.landmark_rows[min(interval_index, self.interval_count - 1)]:
            da = row[door_a]
            db = row[door_b]
            finite_a = da < math.inf
            finite_b = db < math.inf
            if finite_a and finite_b:
                gap = da - db if da >= db else db - da
                if gap > best:
                    best = gap
            elif finite_a or finite_b:
                return math.inf
        return best

    def memory_bytes(self) -> int:
        """Approximate footprint of the overlay arrays (for reports)."""
        component_bytes = sum(row.itemsize * len(row) for row in self.component_rows)
        landmark_bytes = sum(
            row.itemsize * len(row) for per_interval in self.landmark_rows for row in per_interval
        )
        return component_bytes + landmark_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IntervalOverlays({self.interval_count} intervals, {self.door_count} doors, "
            f"{len(self.landmark_indices)} landmarks)"
        )


class _CompiledCheckBase:
    """Shared counter plumbing of the compiled ``TV_Check`` variants.

    The compiled checks speak integers and seconds: ``passable(door_idx,
    distance_from_source)`` answers whether the door can be crossed by a
    traveller who left the source at the ``begin``-time and has walked the
    given distance.  Counters mirror the reference strategies exactly so the
    merged :class:`~repro.core.query.SearchStatistics` stay bit-identical.
    """

    __slots__ = ("ati_probes", "snapshot_refreshes", "membership_checks")

    method_label = "abstract"

    def __init__(self) -> None:
        self.ati_probes = 0
        self.snapshot_refreshes = 0
        self.membership_checks = 0

    def begin(self, query_seconds: float) -> None:
        """Reset per-query state; called once before each compiled search."""
        self.ati_probes = 0
        self.snapshot_refreshes = 0
        self.membership_checks = 0

    def counters(self) -> Dict[str, int]:
        """Counter snapshot in the reference strategies' format."""
        return {
            "ati_probes": self.ati_probes,
            "snapshot_refreshes": self.snapshot_refreshes,
            "membership_checks": self.membership_checks,
        }


class CompiledSyncCheck(_CompiledCheckBase):
    """``Syn_Check`` on flat arrays: arrival seconds + one boundary bisect."""

    __slots__ = ("_bounds", "_speed", "_query_seconds")

    method_label = "ITG/S"

    def __init__(self, compiled: CompiledITGraph, walking_speed: float):
        super().__init__()
        self._bounds = compiled.ati_bounds
        self._speed = walking_speed
        self._query_seconds = 0.0

    def begin(self, query_seconds: float) -> None:
        super().begin(query_seconds)
        self._query_seconds = query_seconds

    def passable(self, door_idx: int, distance_from_source: float) -> bool:
        self.ati_probes += 1
        t_arr = self._query_seconds + distance_from_source / self._speed
        return bisect_right(self._bounds[door_idx], t_arr) & 1 == 1


class CompiledAsyncCheck(_CompiledCheckBase):
    """``Asyn_Check`` on bitsets: lazily advanced interval + index test.

    Mirrors :class:`~repro.core.tvcheck.AsynchronousCheck` move for move —
    in-interval arrivals are answered from the current bitset, arrivals past
    the interval end advance the interval (one refresh), and out-of-order
    arrivals before the interval fall back to a direct boundary-array probe.
    """

    __slots__ = ("_bounds", "_speed", "_store", "_query_seconds", "_start", "_end", "_bits")

    method_label = "ITG/A"

    def __init__(
        self,
        compiled: CompiledITGraph,
        store: CompiledSnapshotStore,
        walking_speed: float,
    ):
        super().__init__()
        self._bounds = compiled.ati_bounds
        self._speed = walking_speed
        self._store = store
        self._query_seconds = 0.0
        self._start = 0.0
        self._end = math.inf
        self._bits = b""

    def begin(self, query_seconds: float) -> None:
        super().begin(query_seconds)
        self._query_seconds = query_seconds
        self._start, self._end, self._bits = self._store.interval_at(query_seconds)
        self.snapshot_refreshes += 1

    def passable(self, door_idx: int, distance_from_source: float) -> bool:
        t_arr = self._query_seconds + distance_from_source / self._speed
        if self._start <= t_arr < self._end:
            self.membership_checks += 1
            return self._bits[door_idx] == 1
        if t_arr >= self._end:
            self._start, self._end, self._bits = self._store.interval_at(t_arr)
            self.snapshot_refreshes += 1
            self.membership_checks += 1
            return self._bits[door_idx] == 1
        self.ati_probes += 1
        return bisect_right(self._bounds[door_idx], t_arr) & 1 == 1


class CompiledStaticCheck(_CompiledCheckBase):
    """Temporal-unaware check: every door passes (membership counted)."""

    __slots__ = ()

    method_label = "static"

    def passable(self, door_idx: int, distance_from_source: float) -> bool:
        self.membership_checks += 1
        return True


class CompiledQueryTimeCheck(_CompiledCheckBase):
    """Approximate check probing ATIs at the query time, not the arrival."""

    __slots__ = ("_bounds", "_query_seconds")

    method_label = "query-time-snapshot"

    def __init__(self, compiled: CompiledITGraph):
        super().__init__()
        self._bounds = compiled.ati_bounds
        self._query_seconds = 0.0

    def begin(self, query_seconds: float) -> None:
        super().begin(query_seconds)
        self._query_seconds = query_seconds

    def passable(self, door_idx: int, distance_from_source: float) -> bool:
        self.ati_probes += 1
        return bisect_right(self._bounds[door_idx], self._query_seconds) & 1 == 1


def make_compiled_check(
    method: str,
    compiled: CompiledITGraph,
    store: CompiledSnapshotStore,
    walking_speed: float,
):
    """Factory mapping canonical method names to compiled check instances."""
    if method == "synchronous":
        return CompiledSyncCheck(compiled, walking_speed)
    if method == "asynchronous":
        return CompiledAsyncCheck(compiled, store, walking_speed)
    if method == "static":
        return CompiledStaticCheck()
    if method == "query-time":
        return CompiledQueryTimeCheck(compiled)
    raise ValueError(f"unknown TV-check method {method!r}")
