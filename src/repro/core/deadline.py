"""Cooperative per-request deadlines for the ITSPQ search tiers.

A production query service cannot let one oversized or stuck search pin a
process: every admitted request carries a wall-clock budget, and the search
itself must observe it.  :class:`SearchDeadline` is that budget as a value
the Dijkstra loops can poll cheaply — the reference search
(``ITSPQEngine._search``), the compiled search (``_search_compiled``), the
batch executor's shared multi-target search (``BatchExecutor._run_group``)
and the cache's recording run (``SPTreeCache._record_tree``) all call
:meth:`SearchDeadline.tick` once per heap pop.

Design constraints, in order:

* **Never partial.**  An expired deadline raises
  :class:`~repro.exceptions.DeadlineExceededError` out of the search; no
  result object is ever built from an interrupted run.  The engines and
  executors keep no cross-query mutable state that an abort could poison
  (the batch arena is generation-stamped, the single-query searches allocate
  per call), so the next query on the same engine is unaffected.
* **Cheap when armed, free when absent.**  The hot loops guard the call
  with ``if deadline is not None``; an armed deadline costs one integer
  decrement per pop and reads the clock only every ``check_interval`` pops
  (default 64), keeping the clock syscall off the critical path.
* **Deterministic results.**  Polling mutates nothing the search reads: a
  deadline that does not fire leaves every label, counter and tie-break
  exactly as an un-deadlined run — the parity suites run both ways.

One deadline instance describes one request (or one shared batch run) and is
not reusable across requests; :meth:`SearchDeadline.after` is the one-line
constructor services use per admitted query.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.exceptions import DeadlineExceededError

#: Heap pops between clock reads (a power of two, but nothing relies on it).
DEFAULT_CHECK_INTERVAL = 64


class SearchDeadline:
    """A cooperative wall-clock budget polled from inside search loops.

    Parameters
    ----------
    budget_seconds:
        The wall-clock budget; must be positive and finite.
    check_interval:
        How many :meth:`tick` calls (heap pops) elapse between clock reads;
        must be positive.  Lower values bound overshoot more tightly at the
        price of more clock syscalls.
    clock:
        The monotonic clock to read (injectable for tests).
    """

    __slots__ = ("budget_seconds", "check_interval", "expires_at", "_clock", "_countdown")

    def __init__(
        self,
        budget_seconds: float,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        clock: Callable[[], float] = time.monotonic,
    ):
        budget = float(budget_seconds)
        if not budget > 0 or budget != budget or budget == float("inf"):
            raise ValueError(f"budget_seconds must be positive and finite, got {budget_seconds!r}")
        if int(check_interval) < 1:
            raise ValueError(f"check_interval must be positive, got {check_interval!r}")
        self.budget_seconds = budget
        self.check_interval = int(check_interval)
        self._clock = clock
        self.expires_at = clock() + budget
        self._countdown = self.check_interval

    @classmethod
    def after(
        cls,
        budget_seconds: float,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        clock: Callable[[], float] = time.monotonic,
    ) -> "SearchDeadline":
        """A deadline ``budget_seconds`` from now (the service's per-request
        constructor; identical to calling the class, provided for read-site
        clarity)."""
        return cls(budget_seconds, check_interval=check_interval, clock=clock)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        """Whether the budget is exhausted (reads the clock immediately)."""
        return self._clock() >= self.expires_at

    def tick(self) -> None:
        """One search step: reads the clock every ``check_interval`` calls
        and raises :class:`~repro.exceptions.DeadlineExceededError` once the
        budget is gone.  This is the call sites' per-heap-pop hook."""
        countdown = self._countdown - 1
        if countdown > 0:
            self._countdown = countdown
            return
        self._countdown = self.check_interval
        if self._clock() >= self.expires_at:
            raise DeadlineExceededError(
                f"search deadline of {self.budget_seconds:.3f}s exceeded"
            )

    def check_now(self) -> None:
        """Raise immediately when expired, regardless of the tick interval
        (used at tier boundaries: before dispatch, before cache recording)."""
        if self._clock() >= self.expires_at:
            raise DeadlineExceededError(
                f"search deadline of {self.budget_seconds:.3f}s exceeded"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SearchDeadline(budget={self.budget_seconds:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )
