"""``ITSPQ_ITGraph`` (Algorithm 1): the door-level Dijkstra answering ITSPQ.

The engine expands over *doors* (plus the two query points) exactly as the
paper's Algorithm 1: the distance label of a door is the length of the best
known valid path prefix from the source point to that door, intra-partition
moves are priced by the partition's distance matrix ``DM``, private
partitions (other than the two covering the query endpoints) are pruned, and
every relaxation of a door is subjected to the pluggable temporal-validity
check ``TV_Check`` — synchronous (ITG/S), asynchronous (ITG/A), or one of the
baseline checks.

Two expansion modes are provided:

``partition_once=False`` (default)
    Standard door-to-door Dijkstra: a settled door relaxes the leaveable
    doors of *every* partition it enters.  This is the exact label-setting
    search under the paper's semantics and is what the correctness tests
    compare against independent oracles.
``partition_once=True``
    The literal transcription of Algorithm 1, which marks partitions as
    visited and expands each partition only from the first door that settles
    into it (lines 18–19), and which stops expanding a door adjacent to the
    target partition after relaxing ``p_t`` (lines 20–24).  This does
    slightly less work and returns identical answers on venues whose
    intra-partition distances obey the triangle inequality (all venues in
    this repository); the ablation benchmark quantifies the difference.
    Both the reference and the compiled search implement this mode, with
    reference-vs-compiled parity enforced by the test suite; batch, parallel
    and cached execution require the standard expansion.

Temporal feasibility and edge pricing are delegated to the pluggable
semantics layer in :mod:`repro.core.semantics` — both searches run the same
``relax -> probe -> push`` kernel, so the paper's no-wait semantics and the
wait-tolerant / latest-departure / time-window variants all execute through
one code path per engine.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from math import hypot
from typing import Dict, List, Optional, Tuple, Union

from repro.constants import WALKING_SPEED_MPS
from repro.core.batch import BatchExecutor
from repro.core.cache import CacheConfig, SPTreeCache
from repro.core.compiled import COMPILED_KINDS, CompiledITGraph
from repro.core.deadline import SearchDeadline
from repro.core.parallel import ExecutionReport, ParallelBatchExecutor, default_worker_count
from repro.core.itgraph import ITGraph
from repro.core.path import IndoorPath, PathHop
from repro.core.query import ITSPQuery, QueryResult, SearchStatistics
from repro.core.semantics import (
    NoWait,
    derive_counters,
    make_edge_probe,
    make_reference_probe,
)
from repro.core.snapshot import CompiledSnapshotStore, GraphUpdater
from repro.core.tvcheck import TVCheckStrategy, canonical_method, make_strategy
from repro.exceptions import QueryError, UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.temporal.timeofday import TimeLike, TimeOfDay

#: Sentinel node identifiers for the two query points in the search graph.
SOURCE_NODE = "__source__"
TARGET_NODE = "__target__"

_INFINITY = float("inf")


class CheckMethod(enum.Enum):
    """The TV-check instantiations the engine knows how to run."""

    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"
    STATIC = "static"
    QUERY_TIME = "query-time"

    @property
    def label(self) -> str:
        """The paper's label for the method (``ITG/S``, ``ITG/A``, ...)."""
        return {
            CheckMethod.SYNCHRONOUS: "ITG/S",
            CheckMethod.ASYNCHRONOUS: "ITG/A",
            CheckMethod.STATIC: "static",
            CheckMethod.QUERY_TIME: "query-time-snapshot",
        }[self]


MethodLike = Union[str, CheckMethod]


def _normalise_method(method: MethodLike) -> str:
    if isinstance(method, CheckMethod):
        return method.value
    return str(method)


class ITSPQEngine:
    """Answers ITSPQ queries over one IT-Graph.

    The engine owns a :class:`~repro.core.snapshot.GraphUpdater` so that the
    asynchronous method's snapshot cache is shared across the queries of one
    engine instance — matching the paper's setting where the time-dependent
    IT-Graph is maintained across queries and refreshed only at checkpoints.
    """

    def __init__(
        self,
        itgraph: ITGraph,
        walking_speed: float = WALKING_SPEED_MPS,
        partition_once: bool = False,
        compiled: bool = True,
        cache: Union[None, bool, CacheConfig] = None,
    ):
        if walking_speed <= 0:
            raise ValueError(f"walking speed must be positive, got {walking_speed}")
        self._itgraph = itgraph
        self._walking_speed = walking_speed
        self._partition_once = partition_once
        self._updater = GraphUpdater(itgraph)
        # The compiled fast path answers the four built-in methods over the
        # interned integer-indexed graph; ``compiled=False`` keeps the
        # object-level reference search, which parity tests and custom
        # strategies rely on.  ``partition_once`` (the literal-Algorithm-1
        # study mode) runs on either engine; batch/parallel/cached execution
        # requires the standard expansion.
        self._compiled_enabled = bool(compiled)
        # ``cache`` opts into the interval-keyed shortest-path-tree cache on
        # the compiled path: ``True`` enables the defaults, a CacheConfig
        # tunes capacity/admission/precompute, ``None``/``False`` keeps every
        # query on the fresh-search path (the default — caching is a
        # service-workload optimisation, not a correctness feature).
        self._cache_config = self._normalise_cache_option(cache)
        if self._cache_config is not None and partition_once:
            # Cached trees record the standard expansion; replaying them
            # under the literal-Algorithm-1 pruning would not be parity.
            raise QueryError("the SP-tree cache requires the standard expansion (partition_once=False)")
        self._cache: Optional[SPTreeCache] = None
        self._compiled_graph: Optional[CompiledITGraph] = None
        self._compiled_store: Optional[CompiledSnapshotStore] = None
        self._batch_executor: Optional[BatchExecutor] = None
        self._parallel_executors: Dict[int, ParallelBatchExecutor] = {}
        self._compiled_payload: Optional[bytes] = None
        self._last_execution_report: Optional[ExecutionReport] = None

    @staticmethod
    def _normalise_cache_option(cache: Union[None, bool, CacheConfig]) -> Optional[CacheConfig]:
        if cache is None or cache is False:
            return None
        if cache is True:
            return CacheConfig()
        if isinstance(cache, CacheConfig):
            return cache
        raise TypeError(f"cache must be a CacheConfig or boolean, got {cache!r}")

    @classmethod
    def from_compiled_payload(
        cls,
        payload: bytes,
        walking_speed: float = WALKING_SPEED_MPS,
        cache: Union[None, bool, CacheConfig] = None,
    ) -> "ITSPQEngine":
        """An engine rehydrated from a :mod:`repro.io.compiled_codec` payload.

        This is the serving-layer shard hand-off: a venue travels as one
        codec blob and the receiving process answers queries without ever
        materialising the object-level IT-Graph.  The engine is
        compiled-only — the reference search, explicit TV-check strategies
        and the ``partition_once`` study mode (all of which need the
        object-level graph) raise :class:`~repro.exceptions.QueryError`.
        The payload is kept verbatim as the parallel executor's worker
        hand-off, so serving a shard re-serialises nothing.
        """
        from repro.io.compiled_codec import compiled_graph_from_bytes

        if walking_speed <= 0:
            raise ValueError(f"walking speed must be positive, got {walking_speed}")
        payload = bytes(payload)
        engine = cls.__new__(cls)
        engine._itgraph = None
        engine._walking_speed = walking_speed
        engine._partition_once = False
        engine._updater = None
        engine._compiled_enabled = True
        engine._cache_config = cls._normalise_cache_option(cache)
        engine._cache = None
        engine._compiled_graph = compiled_graph_from_bytes(payload)
        engine._compiled_store = engine._compiled_graph.interval_bitsets.store()
        engine._batch_executor = None
        engine._parallel_executors = {}
        engine._compiled_payload = payload
        engine._last_execution_report = None
        return engine

    # -- public API ------------------------------------------------------------------

    @property
    def itgraph(self) -> ITGraph:
        """The IT-Graph queried by this engine."""
        return self._itgraph

    @property
    def updater(self) -> GraphUpdater:
        """The shared snapshot factory used by asynchronous checks."""
        return self._updater

    @property
    def partition_once(self) -> bool:
        """Whether the literal Algorithm 1 partition-visited pruning is active."""
        return self._partition_once

    @property
    def compiled(self) -> bool:
        """Whether the integer-indexed compiled fast path is enabled."""
        return self._compiled_enabled

    @property
    def last_execution_report(self) -> Optional[ExecutionReport]:
        """The :class:`~repro.core.parallel.ExecutionReport` of the most
        recent :meth:`run_batch` call (``None`` before the first one).

        Parallel runs report the supervised pool's full failure/recovery
        counters; in-process runs report zeros with the matching mode, so
        callers can always inspect ``report.clean`` regardless of path.
        """
        return self._last_execution_report

    def ensure_compiled(self) -> CompiledITGraph:
        """Force the (otherwise lazy) compiled index build and return it.

        Benchmarks call this before timing so that index construction — an
        offline cost like ``build_itgraph`` itself — never pollutes the first
        measured query.
        """
        if self._compiled_graph is None:
            self._compiled_graph = self._itgraph.compiled()
            self._compiled_store = self._compiled_graph.interval_bitsets.store()
        if self._cache_config is not None and self._cache is None:
            if self._cache_config.precompute and self._compiled_graph.overlays is None:
                self._compiled_graph.build_overlays()
            self._cache = SPTreeCache(
                self._compiled_graph,
                self._compiled_store,
                self._walking_speed,
                self._cache_config,
            )
        return self._compiled_graph

    def query(
        self,
        source: IndoorPoint,
        target: IndoorPoint,
        query_time: TimeLike,
        method: MethodLike = CheckMethod.SYNCHRONOUS,
        strategy: Optional[TVCheckStrategy] = None,
        deadline: Optional[SearchDeadline] = None,
    ) -> QueryResult:
        """Answer ``ITSPQ(source, target, query_time)``.

        Parameters
        ----------
        source, target:
            The query endpoints; both must be covered by some partition.
        query_time:
            The instant the user starts walking (``t`` in the paper).
        method:
            Which ``TV_Check`` instantiation to use: ``"synchronous"``
            (ITG/S), ``"asynchronous"`` (ITG/A), ``"static"`` or
            ``"query-time"``; ignored when an explicit ``strategy`` is given.
        strategy:
            A pre-built :class:`TVCheckStrategy`, e.g. to share counters
            across a benchmark run.
        deadline:
            An optional :class:`~repro.core.deadline.SearchDeadline`; an
            expired budget raises
            :class:`~repro.exceptions.DeadlineExceededError` instead of
            returning a (never partial) result.
        """
        itsp_query = ITSPQuery(source, target, query_time)
        return self.run(itsp_query, method=method, strategy=strategy, deadline=deadline)

    def run(
        self,
        itsp_query: ITSPQuery,
        method: MethodLike = CheckMethod.SYNCHRONOUS,
        strategy: Optional[TVCheckStrategy] = None,
        deadline: Optional[SearchDeadline] = None,
    ) -> QueryResult:
        """Answer a pre-built :class:`~repro.core.query.ITSPQuery`.

        With the compiled fast path enabled (the default) the four built-in
        methods run as an integer-label Dijkstra over the compiled index and
        return bit-identical results to the reference search; an explicit
        ``strategy`` always runs the reference search, since arbitrary
        strategies cannot be lowered.

        The query's :attr:`~repro.core.query.ITSPQuery.semantics` selects the
        temporal semantics; the non-default semantics require the synchronous
        method and run on both engines through the shared probe kernel.

        ``deadline`` arms the cooperative per-request budget on whichever
        tier answers (reference, compiled, or cache-recording): the search
        polls it every few heap pops and raises
        :class:`~repro.exceptions.DeadlineExceededError` once it expires —
        never a partial result.  A deadline that does not fire changes
        nothing: results are bit-identical to an un-deadlined run.
        """
        semantics = itsp_query.semantics
        if strategy is not None and self._itgraph is None:
            raise QueryError(
                "explicit TV-check strategies need the object-level IT-Graph "
                "(this engine was rehydrated from a compiled payload)"
            )
        if strategy is None:
            method_name = canonical_method(_normalise_method(method))
            semantics.validate_method(method_name)
            if self._compiled_enabled:
                self.ensure_compiled()
                started = time.perf_counter()
                result = None
                if self._cache is not None:
                    result = self._cached_compiled(itsp_query, method_name, deadline)
                if result is None:
                    result = self._search_compiled(itsp_query, method_name, deadline)
                result.statistics.runtime_seconds = time.perf_counter() - started
                return result
            if isinstance(semantics, NoWait):
                strategy = make_strategy(
                    method_name, self._itgraph, self._updater, self._walking_speed
                )
        elif not isinstance(semantics, NoWait):
            raise QueryError("explicit TV-check strategies answer only the no-wait semantics")
        started = time.perf_counter()
        result = self._search(itsp_query, strategy, deadline)
        result.statistics.runtime_seconds = time.perf_counter() - started
        return result

    @property
    def cache(self) -> Optional[SPTreeCache]:
        """The engine's shortest-path-tree cache (``None`` when caching is
        off or the compiled index is not yet built)."""
        return self._cache

    @property
    def cache_enabled(self) -> bool:
        """Whether the engine was configured with an SP-tree cache (true
        even before the lazy compiled build materialises it) — the seam the
        service uses to decide whether a cache-replay rung exists."""
        return self._cache_config is not None

    @property
    def cache_stats(self) -> Optional[Dict[str, object]]:
        """Hit/miss/build/eviction counters of the engine cache, or ``None``
        when caching is off."""
        if self._cache_config is not None:
            self.ensure_compiled()
        return self._cache.stats() if self._cache is not None else None

    def warm_cache(
        self,
        queries: List[ITSPQuery],
        method: MethodLike = CheckMethod.SYNCHRONOUS,
    ) -> int:
        """Record the shortest-path trees a workload will need, ahead of
        time; returns the number of trees built.

        Plans ``queries`` exactly as :meth:`run_batch` would and records one
        tree per group not already cached, regardless of the admission mode —
        warming is the explicit opt-in that bypasses promotion thresholds.
        """
        if not self._compiled_enabled:
            raise QueryError("cache warming requires the compiled fast path")
        self.ensure_compiled()
        if self._cache is None:
            raise QueryError("cache warming requires an engine cache (cache=... option)")
        method_name = canonical_method(_normalise_method(method))
        groups = self.batch_executor().planner.plan(list(queries), method_name)
        return self._cache.warm(groups)

    def _cached_compiled(
        self,
        itsp_query: ITSPQuery,
        method_name: str,
        deadline: Optional[SearchDeadline] = None,
    ) -> Optional[QueryResult]:
        """Answer one query from the cache, or ``None`` to fall through to
        the fresh compiled search (key not admitted yet)."""
        cache = self._cache
        graph = self._compiled_graph
        semantics = itsp_query.semantics
        kind, method_label = COMPILED_KINDS[method_name]
        anchor_point, goal_point = semantics.search_endpoints(itsp_query)
        try:
            source_pidx = graph.locate_index(anchor_point)
            target_pidx = graph.locate_index(goal_point)
        except UnknownEntityError as exc:
            raise QueryError(f"query endpoint outside the indoor space: {exc}") from exc
        query_seconds = itsp_query.query_time.seconds
        if isinstance(semantics, NoWait):
            # The overlay-based unreachability pruning is proven only for the
            # paper's semantics (waiting can cross a component boundary in
            # time), so the other semantics always consult a tree.
            pruned = cache.prune_result(
                itsp_query, method_label, kind, source_pidx, target_pidx, query_seconds
            )
            if pruned is not None:
                return pruned
        key, allowed = cache.plan_key(
            kind, anchor_point, query_seconds, source_pidx, target_pidx, semantics
        )
        tree = cache.lookup(key)
        if tree is None:
            if not cache.should_build(key):
                return None
            tree = cache.build(
                key,
                kind,
                method_label,
                anchor_point,
                source_pidx,
                allowed,
                query_seconds,
                semantics,
                deadline=deadline,
            )
        return cache.answer(tree, itsp_query, target_pidx)

    def answer_from_cache(
        self,
        itsp_query: ITSPQuery,
        method: MethodLike = CheckMethod.SYNCHRONOUS,
    ) -> Optional[QueryResult]:
        """Answer a query **only** if its shortest-path tree is already
        cached; ``None`` on a cache miss (no search, no recording run).

        This is the replay-only seam the service's deepest degradation rung
        uses when every search tier is unhealthy: a hit costs O(path length)
        and is bit-identical to a fresh search by the cache parity contract;
        a miss costs one key computation.  Requires an engine cache
        (``cache=...``) and the compiled fast path.
        """
        if not self._compiled_enabled:
            raise QueryError("cache replay requires the compiled fast path")
        self.ensure_compiled()
        cache = self._cache
        if cache is None:
            raise QueryError("cache replay requires an engine cache (cache=... option)")
        semantics = itsp_query.semantics
        method_name = canonical_method(_normalise_method(method))
        semantics.validate_method(method_name)
        graph = self._compiled_graph
        kind, _method_label = COMPILED_KINDS[method_name]
        anchor_point, goal_point = semantics.search_endpoints(itsp_query)
        try:
            source_pidx = graph.locate_index(anchor_point)
            target_pidx = graph.locate_index(goal_point)
        except UnknownEntityError as exc:
            raise QueryError(f"query endpoint outside the indoor space: {exc}") from exc
        key, _allowed = cache.plan_key(
            kind, anchor_point, itsp_query.query_time.seconds, source_pidx, target_pidx, semantics
        )
        tree = cache.lookup(key)
        if tree is None:
            return None
        started = time.perf_counter()
        result = cache.answer(tree, itsp_query, target_pidx)
        result.statistics.runtime_seconds = time.perf_counter() - started
        return result

    def batch_executor(self) -> BatchExecutor:
        """The engine's :class:`~repro.core.batch.BatchExecutor` (built lazily).

        The executor shares the engine's compiled index, snapshot store and
        walking speed, and reuses one search arena across calls, so repeated
        batches pay no per-batch setup beyond planning.
        """
        if not self._compiled_enabled:
            raise QueryError("batch execution requires the compiled fast path")
        if self._partition_once:
            raise QueryError("batch execution requires the standard expansion (partition_once=False)")
        self.ensure_compiled()
        if self._batch_executor is None:
            self._batch_executor = BatchExecutor(
                self._compiled_graph,
                self._compiled_store,
                self._walking_speed,
                cache=self._cache,
            )
        return self._batch_executor

    def parallel_executor(self, workers: Optional[int] = None, **options) -> ParallelBatchExecutor:
        """The engine's :class:`~repro.core.parallel.ParallelBatchExecutor`
        for ``workers`` processes (built lazily, cached per worker count).

        Executors share the engine's compiled graph, snapshot store, walking
        speed and — crucially — one serialised index payload, so asking for
        several pool sizes re-serialises nothing.  Call :meth:`close` (or
        use the engine as a context manager) to shut the pools down.

        Supervision ``options`` (``max_chunk_retries``, ``chunk_timeout``,
        ``backoff_base``, ``backoff_cap``, ``in_process_fallback``,
        ``fault_plan``, ``chunks_per_worker``, ``start_method``) are passed
        through to the executor constructor.  Passing any option replaces a
        previously cached executor for that worker count (its pool is closed
        first), so chaos tests can retune the same engine between runs.
        """
        if not self._compiled_enabled:
            raise QueryError("parallel batch execution requires the compiled fast path")
        if self._partition_once:
            raise QueryError(
                "parallel batch execution requires the standard expansion (partition_once=False)"
            )
        self.ensure_compiled()
        count = int(workers) if workers is not None else default_worker_count()
        if count < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        executor = self._parallel_executors.get(count)
        if executor is None or options:
            if executor is not None:
                executor.close()
            if self._compiled_payload is None:
                from repro.io.compiled_codec import compiled_graph_to_bytes

                self._compiled_payload = compiled_graph_to_bytes(self._compiled_graph)
            executor = ParallelBatchExecutor(
                self._compiled_graph,
                count,
                store=self._compiled_store,
                walking_speed=self._walking_speed,
                payload=self._compiled_payload,
                cache=self._cache,
                **options,
            )
            self._parallel_executors[count] = executor
        return executor

    def close(self) -> None:
        """Shut down any worker pools the engine's parallel executors own.

        Sequential use never starts a pool, so calling this is only needed
        after ``run_batch(workers=N)`` with ``N > 1``.  Safe to call any
        number of times — including again after further parallel runs, which
        simply start fresh pools — and the engine remains fully usable
        afterwards.  Also invoked by the executors' ``atexit`` guard, so a
        process that forgets to call it still exits cleanly.
        """
        for executor in self._parallel_executors.values():
            executor.close()

    def __enter__(self) -> "ITSPQEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def run_batch(
        self,
        queries: List[ITSPQuery],
        method: MethodLike = CheckMethod.SYNCHRONOUS,
        batch: bool = True,
        workers: Optional[int] = None,
        deadline: Optional[SearchDeadline] = None,
    ) -> List[QueryResult]:
        """Answer a list of queries with the same method.

        With ``batch=True`` (the default on a compiled engine) the workload
        runs through the :class:`~repro.core.batch.BatchExecutor`: queries
        are planned into common-source groups, each answered by one
        multi-target search over the shared arena.  Results are returned in
        input order and are bit-identical to sequential ``run`` calls (the
        parity suite enforces this); only ``runtime_seconds`` differs in
        meaning — it is the group's wall time amortised over its members.

        ``workers=N`` with ``N > 1`` additionally fans the planned groups
        out over a pool of worker processes (one search arena each, the
        compiled index handed off in its serialised form); the merged
        results stay bit-identical to sequential execution.  The pool is
        cached on the engine — call :meth:`close` when done.

        ``batch=False`` (and any non-compiled engine) keeps the sequential
        one-search-per-query path, which serves as the batch parity oracle.
        Either way the method/strategy resolution is hoisted out of the
        per-query loop — it is resolved exactly once per call.

        Every call leaves an :class:`~repro.core.parallel.ExecutionReport`
        on :attr:`last_execution_report` describing how the workload was
        executed (and, for a worker pool, what failed and how it was
        recovered).

        ``deadline`` is the cooperative budget shared by the whole call on
        the in-process paths (batched, sequential compiled, reference); the
        parallel tier bounds work with its per-chunk timeout instead, so
        combining ``workers>1`` with a deadline raises
        :class:`~repro.exceptions.QueryError`.
        """
        method_name = canonical_method(_normalise_method(method))
        if workers is not None:
            if workers < 1:
                raise ValueError(f"workers must be positive, got {workers}")
            if workers > 1:
                if not batch:
                    raise QueryError("workers>1 requires batch execution (batch=True)")
                if deadline is not None:
                    raise QueryError(
                        "deadlines are enforced on the in-process tiers; the parallel "
                        "tier bounds work with chunk_timeout instead"
                    )
                executor = self.parallel_executor(workers)
                results = executor.run_batch(queries, method_name)
                self._last_execution_report = executor.last_report
                return results
            # workers=1 is the explicit "no parallelism" request: fall through
            # to the in-process paths below.
        started_call = time.perf_counter()
        dispatch_unix = time.time()
        if self._compiled_enabled:
            if batch and self._partition_once:
                # The multi-target batch search shares one expansion across
                # members, which is incompatible with the literal-Algorithm-1
                # per-query partition pruning: run the study mode one compiled
                # search per query instead.
                batch = False
            if batch:
                batch_executor = self.batch_executor()
                results = batch_executor.run_batch(queries, method_name, deadline=deadline)
                self._last_execution_report = ExecutionReport(
                    mode="batched",
                    workers=1,
                    usable_cpus=default_worker_count(),
                    queries=len(queries),
                    groups=batch_executor.last_group_count,
                    dispatch_unix=dispatch_unix,
                    elapsed_seconds=time.perf_counter() - started_call,
                )
                return results
            self.ensure_compiled()
            results = []
            for query in queries:
                query.semantics.validate_method(method_name)
                started = time.perf_counter()
                result = self._search_compiled(query, method_name, deadline)
                result.statistics.runtime_seconds = time.perf_counter() - started
                results.append(result)
        else:
            # Reference engine: one strategy instance, reset per query by
            # ``begin_query`` — identical results to per-query construction.
            # Non-default semantics run the probe-kernel path instead.
            strategy = make_strategy(
                method_name, self._itgraph, self._updater, self._walking_speed
            )
            results = []
            for query in queries:
                started = time.perf_counter()
                if isinstance(query.semantics, NoWait):
                    result = self._search(query, strategy, deadline)
                else:
                    query.semantics.validate_method(method_name)
                    result = self._search(query, None, deadline)
                result.statistics.runtime_seconds = time.perf_counter() - started
                results.append(result)
        self._last_execution_report = ExecutionReport(
            mode="sequential",
            workers=1,
            usable_cpus=default_worker_count(),
            queries=len(queries),
            groups=len(queries),
            dispatch_unix=dispatch_unix,
            elapsed_seconds=time.perf_counter() - started_call,
        )
        return results

    # -- the search (Algorithm 1) ----------------------------------------------------------

    def _search(
        self,
        itsp_query: ITSPQuery,
        strategy: Optional[TVCheckStrategy],
        deadline: Optional[SearchDeadline] = None,
    ) -> QueryResult:
        itgraph = self._itgraph
        topology = itgraph.topology
        query_time = itsp_query.query_time
        semantics = itsp_query.semantics
        anchor_point, goal_point = semantics.search_endpoints(itsp_query)
        stats = SearchStatistics()

        try:
            source_partition = itgraph.covering_partition(anchor_point)
            target_partition = itgraph.covering_partition(goal_point)
        except UnknownEntityError as exc:
            raise QueryError(f"query endpoint outside the indoor space: {exc}") from exc

        source_pid = source_partition.partition_id
        target_pid = target_partition.partition_id
        allowed_private = {source_pid, target_pid}

        if strategy is not None:
            # No-wait queries keep the pluggable TV-check strategies (the
            # reusable standalone API, including custom strategies); the
            # probe wrapper gives them the same kernel shape as every other
            # semantics without changing a single float or counter.
            strategy.begin_query(query_time)
            method_label = strategy.method_label

            def probe(door_id: str, cost: float) -> Optional[float]:
                return cost if strategy.is_passable(door_id, cost, query_time) else None

            probe_counters = None
        else:
            method_label = COMPILED_KINDS["synchronous"][1]
            probe, probe_counters = make_reference_probe(
                semantics, itgraph, query_time.seconds, self._walking_speed
            )

        def finish(result: QueryResult) -> QueryResult:
            if probe_counters is None:
                stats.merge_strategy_counters(strategy.counters())
            else:
                stats.ati_probes += probe_counters[0]
                stats.snapshot_refreshes += probe_counters[1]
                stats.membership_checks += probe_counters[2]
            return semantics.finalise_result(result, self._walking_speed)

        dist: Dict[str, float] = {SOURCE_NODE: 0.0}
        prev: Dict[str, Tuple[str, str]] = {}
        settled: set = set()
        visited_partitions: set = set()
        heap: List[Tuple[float, int, str]] = []
        tie_breaker = itertools.count()
        heapq.heappush(heap, (0.0, next(tie_breaker), SOURCE_NODE))
        stats.heap_pushes += 1
        stats.peak_heap_size = max(stats.peak_heap_size, len(heap))

        def relax(node: str, new_distance: float, previous: str, via_partition: str) -> None:
            """Relax ``node`` with a candidate distance (no temporal check here)."""
            if new_distance < dist.get(node, _INFINITY):
                dist[node] = new_distance
                prev[node] = (previous, via_partition)
                heapq.heappush(heap, (new_distance, next(tie_breaker), node))
                stats.heap_pushes += 1
                stats.peak_heap_size = max(stats.peak_heap_size, len(heap))

        # A door-free direct path when both endpoints share a partition.
        if source_pid == target_pid and anchor_point.floor == goal_point.floor:
            direct = anchor_point.point2d.distance_to(goal_point.point2d)
            relax(TARGET_NODE, direct, SOURCE_NODE, source_pid)

        while heap:
            if deadline is not None:
                deadline.tick()
            distance, _, node = heapq.heappop(heap)
            stats.heap_pops += 1
            if node in settled or distance > dist.get(node, _INFINITY):
                continue
            settled.add(node)

            if node == TARGET_NODE:
                path = self._reconstruct(itsp_query, dist, prev, method_label)
                return finish(
                    QueryResult(
                        query=itsp_query,
                        method_label=method_label,
                        found=True,
                        path=path,
                        length=distance,
                        statistics=stats,
                    )
                )

            if node == SOURCE_NODE:
                self._expand_source(anchor_point, source_pid, probe, relax, stats)
                continue

            # ``node`` is a door with a settled (shortest) distance label.
            stats.doors_settled += 1
            door_distance = dist[node]

            for partition_id in topology.enterable_partitions(node):
                # ``partition_once`` checks membership inline (instead of
                # pre-filtering the frozenset) so the compiled search — whose
                # adjacency preserves this iteration order — stays bit-parity.
                if self._partition_once and partition_id in visited_partitions:
                    continue
                record = itgraph.partition_record(partition_id)
                if record.is_outdoor:
                    continue
                if record.is_private and partition_id not in allowed_private:
                    stats.private_partitions_pruned += 1
                    continue
                if self._partition_once:
                    visited_partitions.add(partition_id)
                stats.partitions_expanded += 1

                if partition_id == target_pid:
                    final_leg = self._safe_point_to_door(goal_point, node, partition_id)
                    if final_leg is not None:
                        relax(TARGET_NODE, door_distance + final_leg, node, partition_id)
                    if self._partition_once:
                        # Lines 20-24: a door adjacent to the target partition
                        # only relaxes p_t in the literal algorithm.
                        continue

                self._expand_partition(
                    node, partition_id, door_distance, probe, relax, settled, stats
                )

        # Heap exhausted without settling the target: no valid route exists
        # under the search semantics ("no such routes" in the paper).
        return finish(
            QueryResult(
                query=itsp_query,
                method_label=method_label,
                found=False,
                path=None,
                length=_INFINITY,
                statistics=stats,
            )
        )

    # -- the compiled search (integer-label fast path) ---------------------------------------

    #: canonical method name -> (dispatch kind, paper label); shared with the
    #: batch executor's multi-target search (see ``repro.core.compiled``).
    _COMPILED_KINDS = COMPILED_KINDS

    def _search_compiled(
        self,
        itsp_query: ITSPQuery,
        method_name: str,
        deadline: Optional[SearchDeadline] = None,
    ) -> QueryResult:
        """Algorithm 1 over the compiled integer-indexed graph.

        Same semantics, same counters, same tie-breaking as :meth:`_search` —
        the compiled adjacency preserves the reference search's iteration
        order, so results (paths, lengths, statistics) are bit-identical.
        The hot loop touches only list-indexed floats and ints: no string
        dict probes, no ``frozenset`` views, no ``TimeOfDay`` allocations.

        Temporal feasibility/pricing is delegated to the probe closure from
        :func:`repro.core.semantics.make_edge_probe` — the single source of
        truth for the four TV-check methods and the non-default semantics —
        so a relaxation costs one call plus one ``bisect``/bit test.  The
        check-before-relax ordering of Algorithm 1 is preserved.
        """
        compiled_graph = self._compiled_graph
        stats = SearchStatistics()
        semantics = itsp_query.semantics
        anchor_point, goal_point = semantics.search_endpoints(itsp_query)

        try:
            source_pidx = compiled_graph.locate_index(anchor_point)
            target_pidx = compiled_graph.locate_index(goal_point)
        except UnknownEntityError as exc:
            raise QueryError(f"query endpoint outside the indoor space: {exc}") from exc

        allowed_private = {source_pidx, target_pidx}
        kind, method_label = self._COMPILED_KINDS[method_name]

        query_seconds = itsp_query.query_time.seconds
        speed = self._walking_speed
        probe, probe_counters = make_edge_probe(
            semantics,
            kind,
            compiled_graph.ati_bounds,
            query_seconds,
            speed,
            interval_at=self._compiled_store.interval_at if kind == 1 else None,
        )
        partition_once = self._partition_once
        visited = bytearray(compiled_graph.partition_count) if partition_once else None

        door_count = compiled_graph.door_count
        source_node = door_count
        target_node = door_count + 1
        dist: List[float] = [_INFINITY] * (door_count + 2)
        dist[source_node] = 0.0
        prev_node: List[int] = [-1] * (door_count + 2)
        prev_part: List[int] = [-1] * (door_count + 2)
        settled = bytearray(door_count + 2)
        adjacency = compiled_graph.adjacency
        door_x = compiled_graph.door_x
        door_y = compiled_graph.door_y
        door_floor = compiled_graph.door_floor
        heappush = heapq.heappush
        heappop = heapq.heappop

        source_x, source_y, source_floor = anchor_point.x, anchor_point.y, anchor_point.floor
        target_x, target_y, target_floor = goal_point.x, goal_point.y, goal_point.floor

        heap: List[Tuple[float, int, int]] = [(0.0, 0, source_node)]
        tie = 1
        heap_pushes = 1
        heap_pops = 0
        heap_size = 1
        # The initial SOURCE push counts toward the peak, like every other
        # push (both engines track this uniformly).
        peak_heap = 1
        doors_settled = 0
        relaxations = 0
        partitions_expanded = 0
        private_pruned = 0
        temporally_pruned = 0

        # A door-free direct path when both endpoints share a partition.
        if source_pidx == target_pidx and source_floor == target_floor:
            direct = hypot(source_x - target_x, source_y - target_y)
            dist[target_node] = direct
            prev_node[target_node] = source_node
            prev_part[target_node] = source_pidx
            heappush(heap, (direct, tie, target_node))
            tie += 1
            heap_pushes += 1
            heap_size += 1
            if heap_size > peak_heap:
                peak_heap = heap_size

        found_distance = _INFINITY
        found = False
        while heap:
            if deadline is not None:
                deadline.tick()
            distance, _, node = heappop(heap)
            heap_pops += 1
            heap_size -= 1
            if settled[node] or distance > dist[node]:
                continue
            settled[node] = 1

            if node == target_node:
                found = True
                found_distance = distance
                break

            if node == source_node:
                partitions_expanded += 1
                for door_idx in compiled_graph.leaveable_by_partition[source_pidx]:
                    if door_floor[door_idx] != source_floor:
                        continue
                    leg = hypot(source_x - door_x[door_idx], source_y - door_y[door_idx])
                    relaxations += 1
                    # Feasibility/pricing per the query's semantics and
                    # TV-check method: see make_edge_probe, the single source
                    # of truth (it also documents which probe counters are
                    # counted live and which are derived from ``relaxations``).
                    cost = probe(door_idx, leg)
                    if cost is None:
                        temporally_pruned += 1
                        continue
                    if cost < dist[door_idx]:
                        dist[door_idx] = cost
                        prev_node[door_idx] = source_node
                        prev_part[door_idx] = source_pidx
                        heappush(heap, (cost, tie, door_idx))
                        tie += 1
                        heap_pushes += 1
                        heap_size += 1
                        if heap_size > peak_heap:
                            peak_heap = heap_size
                continue

            # ``node`` is a door with a settled (shortest) distance label.
            doors_settled += 1
            door_distance = dist[node]
            for partition_idx, is_private, edges in adjacency[node]:
                if partition_once and visited[partition_idx]:
                    continue
                if is_private and partition_idx not in allowed_private:
                    private_pruned += 1
                    continue
                if partition_once:
                    visited[partition_idx] = 1
                partitions_expanded += 1

                if partition_idx == target_pidx and door_floor[node] == target_floor:
                    candidate = door_distance + hypot(
                        target_x - door_x[node], target_y - door_y[node]
                    )
                    if candidate < dist[target_node]:
                        dist[target_node] = candidate
                        prev_node[target_node] = node
                        prev_part[target_node] = partition_idx
                        heappush(heap, (candidate, tie, target_node))
                        tie += 1
                        heap_pushes += 1
                        heap_size += 1
                        if heap_size > peak_heap:
                            peak_heap = heap_size
                    if partition_once:
                        # Lines 20-24: a door adjacent to the target partition
                        # only relaxes p_t in the literal algorithm.
                        continue

                for next_idx, leg in edges:
                    if settled[next_idx]:
                        continue
                    candidate = door_distance + leg
                    relaxations += 1
                    cost = probe(next_idx, candidate)
                    if cost is None:
                        temporally_pruned += 1
                        continue
                    if cost < dist[next_idx]:
                        dist[next_idx] = cost
                        prev_node[next_idx] = node
                        prev_part[next_idx] = partition_idx
                        heappush(heap, (cost, tie, next_idx))
                        tie += 1
                        heap_pushes += 1
                        heap_size += 1
                        if heap_size > peak_heap:
                            peak_heap = heap_size

        stats.heap_pushes = heap_pushes
        stats.heap_pops = heap_pops
        stats.peak_heap_size = peak_heap
        stats.doors_settled = doors_settled
        stats.relaxations = relaxations
        stats.partitions_expanded = partitions_expanded
        stats.private_partitions_pruned = private_pruned
        stats.temporally_pruned_doors = temporally_pruned
        stats.ati_probes = probe_counters[0]
        stats.snapshot_refreshes = probe_counters[1]
        stats.membership_checks = probe_counters[2]
        derive_counters(semantics, kind, stats)

        if not found:
            return semantics.finalise_result(
                QueryResult(
                    query=itsp_query,
                    method_label=method_label,
                    found=False,
                    path=None,
                    length=_INFINITY,
                    statistics=stats,
                ),
                speed,
            )

        path = self._reconstruct_compiled(
            itsp_query, dist, prev_node, prev_part, source_node, target_node, method_label
        )
        return semantics.finalise_result(
            QueryResult(
                query=itsp_query,
                method_label=method_label,
                found=True,
                path=path,
                length=found_distance,
                statistics=stats,
            ),
            speed,
        )

    def _reconstruct_compiled(
        self,
        itsp_query: ITSPQuery,
        dist: List[float],
        prev_node: List[int],
        prev_part: List[int],
        source_node: int,
        target_node: int,
        method_label: str,
    ) -> IndoorPath:
        """Integer-label twin of :meth:`_reconstruct` (same hops, same floats)."""
        compiled_graph = self._compiled_graph
        door_ids = compiled_graph.door_ids
        partition_ids = compiled_graph.partition_ids
        semantics = itsp_query.semantics
        anchor_point, goal_point = semantics.search_endpoints(itsp_query)
        forward = semantics.forward
        query_seconds = itsp_query.query_time.seconds
        speed = self._walking_speed
        from_seconds = TimeOfDay._from_seconds_unchecked

        chain: List[Tuple[int, int]] = []
        node = target_node
        while node != source_node:
            chain.append((node, prev_part[node]))
            node = prev_node[node]
        chain.reverse()

        hops: List[PathHop] = []
        for index, (node, via_partition) in enumerate(chain):
            if node == target_node:
                break
            next_via = chain[index + 1][1]
            offset = dist[node] / speed
            arrival = from_seconds(query_seconds + offset if forward else query_seconds - offset)
            hops.append(
                PathHop(
                    door_ids[node],
                    partition_ids[via_partition],
                    partition_ids[next_via],
                    dist[node],
                    arrival,
                )
            )

        return IndoorPath(
            source=anchor_point,
            target=goal_point,
            query_time=itsp_query.query_time,
            hops=hops,
            total_length=dist[target_node],
            method_label=method_label,
        )

    # -- expansion helpers ---------------------------------------------------------------------

    def _expand_source(
        self,
        anchor_point: IndoorPoint,
        source_pid: str,
        probe,
        relax,
        stats: SearchStatistics,
    ) -> None:
        """Expand from the anchor point across the leaveable doors of ``P(p_s)``."""
        topology = self._itgraph.topology
        stats.partitions_expanded += 1
        for door_id in topology.leaveable_doors(source_pid):
            leg = self._safe_point_to_door(anchor_point, door_id, source_pid)
            if leg is None:
                continue
            stats.relaxations += 1
            cost = probe(door_id, leg)
            if cost is None:
                stats.temporally_pruned_doors += 1
                continue
            relax(door_id, cost, SOURCE_NODE, source_pid)

    def _expand_partition(
        self,
        door_id: str,
        partition_id: str,
        door_distance: float,
        probe,
        relax,
        settled: set,
        stats: SearchStatistics,
    ) -> None:
        """Relax every leaveable door of ``partition_id`` reachable from ``door_id``."""
        itgraph = self._itgraph
        topology = itgraph.topology
        for next_door in topology.leaveable_doors(partition_id):
            if next_door == door_id or next_door in settled:
                continue
            try:
                leg = itgraph.intra_distance(partition_id, door_id, next_door)
            except UnknownEntityError:
                continue
            candidate = door_distance + leg
            stats.relaxations += 1
            # Algorithm 1 performs the temporal check before the distance
            # improvement test; keep that order so the per-method checking
            # work matches the paper's cost profile.
            cost = probe(next_door, candidate)
            if cost is None:
                stats.temporally_pruned_doors += 1
                continue
            relax(next_door, cost, door_id, partition_id)

    def _safe_point_to_door(
        self, point: IndoorPoint, door_id: str, partition_id: str
    ) -> Optional[float]:
        """Point-to-door distance, or ``None`` when undefined (cross-floor doors
        of staircase partitions)."""
        try:
            return self._itgraph.point_to_door(point, door_id, partition_id)
        except UnknownEntityError:
            return None

    # -- path reconstruction ----------------------------------------------------------------------

    def _reconstruct(
        self,
        itsp_query: ITSPQuery,
        dist: Dict[str, float],
        prev: Dict[str, Tuple[str, str]],
        method_label: str,
    ) -> IndoorPath:
        """Rebuild the path from the predecessor labels (lines 11-17).

        The path is anchor-rooted: under forward semantics the anchor is the
        query source and this *is* the user-facing path; latest-departure
        paths are re-oriented by ``finalise_result``.
        """
        semantics = itsp_query.semantics
        anchor_point, goal_point = semantics.search_endpoints(itsp_query)
        query_seconds = itsp_query.query_time.seconds
        # Walk back from the target to the source, collecting (node, via_partition).
        chain: List[Tuple[str, str]] = []
        node = TARGET_NODE
        while node != SOURCE_NODE:
            previous, via_partition = prev[node]
            chain.append((node, via_partition))
            node = previous
        chain.reverse()

        hops: List[PathHop] = []
        for index, (node, via_partition) in enumerate(chain):
            if node == TARGET_NODE:
                break
            # ``node`` is a door; the partition entered through it is recorded
            # on the *next* element of the chain.
            next_via = chain[index + 1][1]
            if isinstance(semantics, NoWait):
                arrival = itsp_query.query_time.add_seconds(dist[node] / self._walking_speed)
            else:
                offset = dist[node] / self._walking_speed
                arrival = TimeOfDay._from_seconds_unchecked(
                    query_seconds + offset if semantics.forward else query_seconds - offset
                )
            hops.append(
                PathHop(
                    door_id=node,
                    from_partition=via_partition,
                    to_partition=next_via,
                    distance_from_source=dist[node],
                    arrival_time=arrival,
                )
            )

        return IndoorPath(
            source=anchor_point,
            target=goal_point,
            query_time=itsp_query.query_time,
            hops=hops,
            total_length=dist[TARGET_NODE],
            method_label=method_label,
        )
