"""``ITSPQ_ITGraph`` (Algorithm 1): the door-level Dijkstra answering ITSPQ.

The engine expands over *doors* (plus the two query points) exactly as the
paper's Algorithm 1: the distance label of a door is the length of the best
known valid path prefix from the source point to that door, intra-partition
moves are priced by the partition's distance matrix ``DM``, private
partitions (other than the two covering the query endpoints) are pruned, and
every relaxation of a door is subjected to the pluggable temporal-validity
check ``TV_Check`` — synchronous (ITG/S), asynchronous (ITG/A), or one of the
baseline checks.

Two expansion modes are provided:

``partition_once=False`` (default)
    Standard door-to-door Dijkstra: a settled door relaxes the leaveable
    doors of *every* partition it enters.  This is the exact label-setting
    search under the paper's semantics and is what the correctness tests
    compare against independent oracles.
``partition_once=True``
    The literal transcription of Algorithm 1, which marks partitions as
    visited and expands each partition only from the first door that settles
    into it (lines 18–19), and which stops expanding a door adjacent to the
    target partition after relaxing ``p_t`` (lines 20–24).  This does
    slightly less work and returns identical answers on venues whose
    intra-partition distances obey the triangle inequality (all venues in
    this repository); the ablation benchmark quantifies the difference.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.constants import WALKING_SPEED_MPS
from repro.core.itgraph import ITGraph
from repro.core.path import IndoorPath, PathHop
from repro.core.query import ITSPQuery, QueryResult, SearchStatistics
from repro.core.snapshot import GraphUpdater
from repro.core.tvcheck import TVCheckStrategy, make_strategy
from repro.exceptions import QueryError, UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.temporal.timeofday import TimeLike, TimeOfDay, as_time_of_day

#: Sentinel node identifiers for the two query points in the search graph.
SOURCE_NODE = "__source__"
TARGET_NODE = "__target__"

_INFINITY = float("inf")


class CheckMethod(enum.Enum):
    """The TV-check instantiations the engine knows how to run."""

    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"
    STATIC = "static"
    QUERY_TIME = "query-time"

    @property
    def label(self) -> str:
        """The paper's label for the method (``ITG/S``, ``ITG/A``, ...)."""
        return {
            CheckMethod.SYNCHRONOUS: "ITG/S",
            CheckMethod.ASYNCHRONOUS: "ITG/A",
            CheckMethod.STATIC: "static",
            CheckMethod.QUERY_TIME: "query-time-snapshot",
        }[self]


MethodLike = Union[str, CheckMethod]


def _normalise_method(method: MethodLike) -> str:
    if isinstance(method, CheckMethod):
        return method.value
    return str(method)


class ITSPQEngine:
    """Answers ITSPQ queries over one IT-Graph.

    The engine owns a :class:`~repro.core.snapshot.GraphUpdater` so that the
    asynchronous method's snapshot cache is shared across the queries of one
    engine instance — matching the paper's setting where the time-dependent
    IT-Graph is maintained across queries and refreshed only at checkpoints.
    """

    def __init__(
        self,
        itgraph: ITGraph,
        walking_speed: float = WALKING_SPEED_MPS,
        partition_once: bool = False,
    ):
        if walking_speed <= 0:
            raise ValueError(f"walking speed must be positive, got {walking_speed}")
        self._itgraph = itgraph
        self._walking_speed = walking_speed
        self._partition_once = partition_once
        self._updater = GraphUpdater(itgraph)

    # -- public API ------------------------------------------------------------------

    @property
    def itgraph(self) -> ITGraph:
        """The IT-Graph queried by this engine."""
        return self._itgraph

    @property
    def updater(self) -> GraphUpdater:
        """The shared snapshot factory used by asynchronous checks."""
        return self._updater

    @property
    def partition_once(self) -> bool:
        """Whether the literal Algorithm 1 partition-visited pruning is active."""
        return self._partition_once

    def query(
        self,
        source: IndoorPoint,
        target: IndoorPoint,
        query_time: TimeLike,
        method: MethodLike = CheckMethod.SYNCHRONOUS,
        strategy: Optional[TVCheckStrategy] = None,
    ) -> QueryResult:
        """Answer ``ITSPQ(source, target, query_time)``.

        Parameters
        ----------
        source, target:
            The query endpoints; both must be covered by some partition.
        query_time:
            The instant the user starts walking (``t`` in the paper).
        method:
            Which ``TV_Check`` instantiation to use: ``"synchronous"``
            (ITG/S), ``"asynchronous"`` (ITG/A), ``"static"`` or
            ``"query-time"``; ignored when an explicit ``strategy`` is given.
        strategy:
            A pre-built :class:`TVCheckStrategy`, e.g. to share counters
            across a benchmark run.
        """
        itsp_query = ITSPQuery(source, target, query_time)
        return self.run(itsp_query, method=method, strategy=strategy)

    def run(
        self,
        itsp_query: ITSPQuery,
        method: MethodLike = CheckMethod.SYNCHRONOUS,
        strategy: Optional[TVCheckStrategy] = None,
    ) -> QueryResult:
        """Answer a pre-built :class:`~repro.core.query.ITSPQuery`."""
        if strategy is None:
            strategy = make_strategy(
                _normalise_method(method), self._itgraph, self._updater, self._walking_speed
            )
        started = time.perf_counter()
        result = self._search(itsp_query, strategy)
        result.statistics.runtime_seconds = time.perf_counter() - started
        return result

    def run_batch(
        self,
        queries: List[ITSPQuery],
        method: MethodLike = CheckMethod.SYNCHRONOUS,
    ) -> List[QueryResult]:
        """Answer a list of queries with the same method (used by benchmarks)."""
        return [self.run(q, method=method) for q in queries]

    # -- the search (Algorithm 1) ----------------------------------------------------------

    def _search(self, itsp_query: ITSPQuery, strategy: TVCheckStrategy) -> QueryResult:
        itgraph = self._itgraph
        topology = itgraph.topology
        query_time = itsp_query.query_time
        stats = SearchStatistics()

        try:
            source_partition = itgraph.covering_partition(itsp_query.source)
            target_partition = itgraph.covering_partition(itsp_query.target)
        except UnknownEntityError as exc:
            raise QueryError(f"query endpoint outside the indoor space: {exc}") from exc

        source_pid = source_partition.partition_id
        target_pid = target_partition.partition_id
        allowed_private = {source_pid, target_pid}

        strategy.begin_query(query_time)

        dist: Dict[str, float] = {SOURCE_NODE: 0.0}
        prev: Dict[str, Tuple[str, str]] = {}
        settled: set = set()
        visited_partitions: set = set()
        heap: List[Tuple[float, int, str]] = []
        tie_breaker = itertools.count()
        heapq.heappush(heap, (0.0, next(tie_breaker), SOURCE_NODE))
        stats.heap_pushes += 1

        def relax(node: str, new_distance: float, previous: str, via_partition: str) -> None:
            """Relax ``node`` with a candidate distance (no temporal check here)."""
            if new_distance < dist.get(node, _INFINITY):
                dist[node] = new_distance
                prev[node] = (previous, via_partition)
                heapq.heappush(heap, (new_distance, next(tie_breaker), node))
                stats.heap_pushes += 1
                stats.peak_heap_size = max(stats.peak_heap_size, len(heap))

        # A door-free direct path when both endpoints share a partition.
        if source_pid == target_pid and itsp_query.source.floor == itsp_query.target.floor:
            direct = itsp_query.source.point2d.distance_to(itsp_query.target.point2d)
            relax(TARGET_NODE, direct, SOURCE_NODE, source_pid)

        while heap:
            distance, _, node = heapq.heappop(heap)
            stats.heap_pops += 1
            if node in settled or distance > dist.get(node, _INFINITY):
                continue
            settled.add(node)

            if node == TARGET_NODE:
                path = self._reconstruct(itsp_query, dist, prev, strategy.method_label)
                stats.merge_strategy_counters(strategy.counters())
                return QueryResult(
                    query=itsp_query,
                    method_label=strategy.method_label,
                    found=True,
                    path=path,
                    length=distance,
                    statistics=stats,
                )

            if node == SOURCE_NODE:
                self._expand_source(
                    itsp_query, source_pid, target_pid, strategy, relax, stats
                )
                continue

            # ``node`` is a door with a settled (shortest) distance label.
            stats.doors_settled += 1
            door_distance = dist[node]

            enterable = topology.enterable_partitions(node)
            if self._partition_once:
                enterable = frozenset(pid for pid in enterable if pid not in visited_partitions)

            reached_target_partition = False
            for partition_id in enterable:
                record = itgraph.partition_record(partition_id)
                if record.is_outdoor:
                    continue
                if record.is_private and partition_id not in allowed_private:
                    stats.private_partitions_pruned += 1
                    continue
                if self._partition_once:
                    visited_partitions.add(partition_id)
                stats.partitions_expanded += 1

                if partition_id == target_pid:
                    reached_target_partition = True
                    final_leg = self._safe_point_to_door(itsp_query.target, node, partition_id)
                    if final_leg is not None:
                        relax(TARGET_NODE, door_distance + final_leg, node, partition_id)
                    if self._partition_once:
                        # Lines 20-24: a door adjacent to the target partition
                        # only relaxes p_t in the literal algorithm.
                        continue

                self._expand_partition(
                    node, partition_id, door_distance, query_time, strategy, relax, settled, stats
                )

            if self._partition_once and reached_target_partition:
                continue

        # Heap exhausted without settling the target: no valid route exists
        # under the search semantics ("no such routes" in the paper).
        stats.merge_strategy_counters(strategy.counters())
        return QueryResult(
            query=itsp_query,
            method_label=strategy.method_label,
            found=False,
            path=None,
            length=_INFINITY,
            statistics=stats,
        )

    # -- expansion helpers ---------------------------------------------------------------------

    def _expand_source(
        self,
        itsp_query: ITSPQuery,
        source_pid: str,
        target_pid: str,
        strategy: TVCheckStrategy,
        relax,
        stats: SearchStatistics,
    ) -> None:
        """Expand from the source point across the leaveable doors of ``P(p_s)``."""
        topology = self._itgraph.topology
        stats.partitions_expanded += 1
        for door_id in topology.leaveable_doors(source_pid):
            leg = self._safe_point_to_door(itsp_query.source, door_id, source_pid)
            if leg is None:
                continue
            stats.relaxations += 1
            if not strategy.is_passable(door_id, leg, itsp_query.query_time):
                stats.temporally_pruned_doors += 1
                continue
            relax(door_id, leg, SOURCE_NODE, source_pid)

    def _expand_partition(
        self,
        door_id: str,
        partition_id: str,
        door_distance: float,
        query_time: TimeOfDay,
        strategy: TVCheckStrategy,
        relax,
        settled: set,
        stats: SearchStatistics,
    ) -> None:
        """Relax every leaveable door of ``partition_id`` reachable from ``door_id``."""
        itgraph = self._itgraph
        topology = itgraph.topology
        for next_door in topology.leaveable_doors(partition_id):
            if next_door == door_id or next_door in settled:
                continue
            try:
                leg = itgraph.intra_distance(partition_id, door_id, next_door)
            except UnknownEntityError:
                continue
            candidate = door_distance + leg
            stats.relaxations += 1
            # Algorithm 1 performs the temporal check before the distance
            # improvement test; keep that order so the per-method checking
            # work matches the paper's cost profile.
            if not strategy.is_passable(next_door, candidate, query_time):
                stats.temporally_pruned_doors += 1
                continue
            relax(next_door, candidate, door_id, partition_id)

    def _safe_point_to_door(
        self, point: IndoorPoint, door_id: str, partition_id: str
    ) -> Optional[float]:
        """Point-to-door distance, or ``None`` when undefined (cross-floor doors
        of staircase partitions)."""
        try:
            return self._itgraph.point_to_door(point, door_id, partition_id)
        except UnknownEntityError:
            return None

    # -- path reconstruction ----------------------------------------------------------------------

    def _reconstruct(
        self,
        itsp_query: ITSPQuery,
        dist: Dict[str, float],
        prev: Dict[str, Tuple[str, str]],
        method_label: str,
    ) -> IndoorPath:
        """Rebuild the path from the predecessor labels (lines 11-17)."""
        # Walk back from the target to the source, collecting (node, via_partition).
        chain: List[Tuple[str, str]] = []
        node = TARGET_NODE
        while node != SOURCE_NODE:
            previous, via_partition = prev[node]
            chain.append((node, via_partition))
            node = previous
        chain.reverse()

        hops: List[PathHop] = []
        for index, (node, via_partition) in enumerate(chain):
            if node == TARGET_NODE:
                break
            # ``node`` is a door; the partition entered through it is recorded
            # on the *next* element of the chain.
            next_via = chain[index + 1][1]
            arrival = itsp_query.query_time.add_seconds(dist[node] / self._walking_speed)
            hops.append(
                PathHop(
                    door_id=node,
                    from_partition=via_partition,
                    to_partition=next_via,
                    distance_from_source=dist[node],
                    arrival_time=arrival,
                )
            )

        return IndoorPath(
            source=itsp_query.source,
            target=itsp_query.target,
            query_time=itsp_query.query_time,
            hops=hops,
            total_length=dist[TARGET_NODE],
            method_label=method_label,
        )
