"""The Indoor Temporal-variation Graph (IT-Graph), Section II-A of the paper.

``G_IT(V, E, L_V, L_E)``:

* ``V`` — one vertex per indoor partition;
* ``E`` — directed edges ``(v_i, v_j, d_k)``: one can reach ``v_j`` from
  ``v_i`` through door ``d_k``;
* ``L_V`` — the **partition table**: per partition its access type
  (PBP / PRP) and the intra-partition door-to-door distance matrix ``DM``;
* ``L_E`` — the **door table**: per door its access type (PBD / PRD) and its
  Active Time Intervals.

The IT-Graph is built once from an :class:`~repro.indoor.space.IndoorSpace`
and a :class:`~repro.temporal.schedule.DoorSchedule` and is immutable
thereafter; the asynchronous method derives reduced *snapshots* from it (see
:mod:`repro.core.snapshot`) instead of mutating it.
"""

from __future__ import annotations

import types
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional

from repro.exceptions import UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.indoor.distance import DistanceMatrix, build_distance_matrices, point_to_door_distance
from repro.indoor.entities import DoorType, Partition, PartitionType
from repro.indoor.space import IndoorSpace
from repro.indoor.topology import Topology
from repro.temporal.atis import ATISet
from repro.temporal.checkpoints import CheckpointSet
from repro.temporal.schedule import DoorSchedule
from repro.temporal.timeofday import TimeLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.compiled import CompiledITGraph

#: The ``[0:00, 24:00)`` ATI set shared by every door without temporal
#: variation — built once so that ``has_temporal_variation`` is a plain
#: comparison rather than a per-call interval construction.
ALWAYS_OPEN_ATIS = ATISet.always_open()


@dataclass(frozen=True)
class DoorRecord:
    """One row of the IT-Graph's door table: ``(ID_d, d-type, ATIs)``."""

    door_id: str
    door_type: DoorType
    atis: ATISet
    position: IndoorPoint

    @property
    def has_temporal_variation(self) -> bool:
        """``True`` unless the door is open around the clock."""
        return self.atis != ALWAYS_OPEN_ATIS

    def is_open(self, instant: TimeLike) -> bool:
        """Return ``True`` when the door is open at ``instant``."""
        return self.atis.contains(instant)


@dataclass(frozen=True)
class PartitionRecord:
    """One row of the IT-Graph's partition table: ``(ID_v, p-type, DM)``."""

    partition_id: str
    partition_type: PartitionType
    distance_matrix: DistanceMatrix
    floor: int
    is_outdoor: bool = False

    @property
    def is_private(self) -> bool:
        """``True`` for private (PRP) partitions."""
        return self.partition_type.is_private


class ITGraph:
    """The composite IT-Graph structure.

    The graph owns

    * the full (temporal-variation-agnostic) topology ``G^0_IT``,
    * the door table and partition table,
    * the checkpoint set ``T`` derived from all door ATIs, and
    * a reference to the originating :class:`IndoorSpace` for point location
      and point-to-door geometry.
    """

    def __init__(
        self,
        space: IndoorSpace,
        door_table: Dict[str, DoorRecord],
        partition_table: Dict[str, PartitionRecord],
        checkpoints: CheckpointSet,
    ):
        self._space = space
        self._door_table = dict(door_table)
        self._partition_table = dict(partition_table)
        self._door_table_view = types.MappingProxyType(self._door_table)
        self._partition_table_view = types.MappingProxyType(self._partition_table)
        self._checkpoints = checkpoints
        self._topology = space.topology
        self._compiled: Optional["CompiledITGraph"] = None

    # -- basic accessors --------------------------------------------------------

    @property
    def space(self) -> IndoorSpace:
        """The indoor space the graph was built from."""
        return self._space

    @property
    def topology(self) -> Topology:
        """The full topology ``G^0_IT`` ignoring temporal variation."""
        return self._topology

    @property
    def checkpoints(self) -> CheckpointSet:
        """The checkpoint set ``T``: all distinct door open/close instants."""
        return self._checkpoints

    @property
    def door_table(self) -> Mapping[str, DoorRecord]:
        """The door table ``L_E`` keyed by door identifier (read-only view)."""
        return self._door_table_view

    @property
    def partition_table(self) -> Mapping[str, PartitionRecord]:
        """The partition table ``L_V`` keyed by partition identifier (read-only view)."""
        return self._partition_table_view

    def compiled(self) -> "CompiledITGraph":
        """The integer-indexed compiled form of this graph, built lazily once.

        The IT-Graph is immutable, so the compiled index can be shared by
        every engine querying the same graph.
        """
        if self._compiled is None:
            from repro.core.compiled import CompiledITGraph

            self._compiled = CompiledITGraph(self)
        return self._compiled

    def door_ids(self) -> List[str]:
        """All door identifiers (``π_D(E)`` in the paper)."""
        return list(self._door_table)

    def partition_ids(self) -> List[str]:
        """All partition identifiers."""
        return list(self._partition_table)

    def door_record(self, door_id: str) -> DoorRecord:
        """Door-table row for ``door_id``."""
        try:
            return self._door_table[door_id]
        except KeyError as exc:
            raise UnknownEntityError(f"unknown door {door_id!r}") from exc

    def partition_record(self, partition_id: str) -> PartitionRecord:
        """Partition-table row for ``partition_id``."""
        try:
            return self._partition_table[partition_id]
        except KeyError as exc:
            raise UnknownEntityError(f"unknown partition {partition_id!r}") from exc

    def door_count(self) -> int:
        """Number of doors in the graph."""
        return len(self._door_table)

    def partition_count(self) -> int:
        """Number of partitions in the graph."""
        return len(self._partition_table)

    # -- temporal queries --------------------------------------------------------

    def door_open_at(self, door_id: str, instant: TimeLike) -> bool:
        """Return ``True`` when ``door_id`` is open at ``instant``."""
        return self.door_record(door_id).is_open(instant)

    def doors_closed_at(self, instant: TimeLike) -> FrozenSet[str]:
        """``Get_Closed_Door``: all doors closed at ``instant``."""
        return frozenset(
            door_id
            for door_id, record in self._door_table.items()
            if not record.atis.contains(instant)
        )

    def doors_open_at(self, instant: TimeLike) -> FrozenSet[str]:
        """All doors open at ``instant``."""
        return frozenset(
            door_id
            for door_id, record in self._door_table.items()
            if record.atis.contains(instant)
        )

    # -- geometric / distance queries ----------------------------------------------

    def intra_distance(self, partition_id: str, door_a: str, door_b: str) -> float:
        """``DM(v, d_i, d_j)``: walking distance between two doors inside one partition."""
        return self.partition_record(partition_id).distance_matrix.distance(door_a, door_b)

    def point_to_door(self, point: IndoorPoint, door_id: str, partition_id: Optional[str] = None) -> float:
        """``|d_i, p|_E``: distance from a point to a door of its covering partition."""
        partition = self._space.partition(partition_id) if partition_id else None
        return point_to_door_distance(self._space, point, door_id, partition)

    def covering_partition(self, point: IndoorPoint) -> Partition:
        """``P(p)``: the partition that covers ``point``."""
        return self._space.locate(point)

    def door_position(self, door_id: str) -> IndoorPoint:
        """The position of ``door_id``."""
        return self.door_record(door_id).position

    # -- statistics -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Summary statistics for reports: sizes, temporal-variation coverage."""
        temporal_doors = sum(
            1 for record in self._door_table.values() if record.has_temporal_variation
        )
        return {
            "partitions": len(self._partition_table),
            "doors": len(self._door_table),
            "directed_edges": self._topology.edge_count(),
            "checkpoints": len(self._checkpoints),
            "doors_with_temporal_variation": temporal_doors,
            "private_partitions": sum(
                1 for record in self._partition_table.values() if record.is_private
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ITGraph({len(self._partition_table)} partitions, {len(self._door_table)} doors, "
            f"|T|={len(self._checkpoints)})"
        )


def build_itgraph(
    space: IndoorSpace,
    schedule: Optional[DoorSchedule] = None,
    door_types: Optional[Dict[str, DoorType]] = None,
    validate: bool = True,
) -> ITGraph:
    """Construct the IT-Graph of ``space`` under ``schedule``.

    Parameters
    ----------
    space:
        The indoor venue (partitions, doors, connections).
    schedule:
        The temporal variation of the doors.  Doors absent from the schedule
        are treated as always open.  ``None`` means no temporal variation at
        all (useful for baselines and tests).
    door_types:
        Optional per-door access-type override; by default the door's own
        ``door_type`` attribute is used.
    validate:
        When ``True`` (default) the space is validated and the schedule is
        checked to reference only existing doors.
    """
    if schedule is None:
        schedule = DoorSchedule()
    if validate:
        space.validate()
        schedule.validate_doors(space.door_ids())

    matrices = build_distance_matrices(space)

    door_table: Dict[str, DoorRecord] = {}
    for door in space.iter_doors():
        door_type = (door_types or {}).get(door.door_id, door.door_type)
        door_table[door.door_id] = DoorRecord(
            door_id=door.door_id,
            door_type=door_type,
            atis=schedule.atis_for(door.door_id),
            position=door.position,
        )

    partition_table: Dict[str, PartitionRecord] = {}
    for partition in space.iter_partitions():
        partition_table[partition.partition_id] = PartitionRecord(
            partition_id=partition.partition_id,
            partition_type=partition.partition_type,
            distance_matrix=matrices[partition.partition_id],
            floor=partition.floor,
            is_outdoor=partition.is_outdoor,
        )

    checkpoints = schedule.checkpoints()
    return ITGraph(space, door_table, partition_table, checkpoints)
