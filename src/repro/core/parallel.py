"""Supervised multiprocess parallel batch execution over a serialisable
compiled graph.

The :class:`~repro.core.batch.BatchExecutor` makes batch groups independent
by construction — every group is one self-contained multi-target search —
but still answers them on a single core.  This module dispatches the groups
of one plan across a pool of worker processes **and supervises the pool**:
workers can crash, hang or fail to come up without poisoning the answer.

Process model
-------------
* **Plan in the parent, search in the workers.**  The parent owns the real
  :class:`~repro.core.compiled.CompiledITGraph` and runs the
  :class:`~repro.core.batch.BatchPlanner` (endpoint location included), so
  malformed queries fail fast with :class:`~repro.exceptions.QueryError`
  before any work is shipped.  Each planned group carries its
  :class:`~repro.core.semantics.TemporalSemantics` — a frozen, picklable
  value object inside the pickled :class:`~repro.core.batch.BatchGroup` —
  so workers answer wait-tolerant, latest-departure and time-window queries
  without any semantics-specific plumbing in this module.
* **Arena per worker.**  Each worker process owns one
  :class:`~repro.core.batch.BatchExecutor` — and therefore one
  generation-stamped :class:`~repro.core.batch.SearchArena` and one
  :class:`~repro.core.snapshot.CompiledSnapshotStore` — reused across every
  chunk and every ``run_batch`` call it serves.  Nothing is shared between
  workers at search time, so there are no locks on the hot path.
* **Serialised index hand-off.**  Workers rehydrate the compiled index from
  the :mod:`repro.io.compiled_codec` payload (one compact ``bytes`` blob)
  instead of recompiling the venue; since the codec grew CRC32 integrity
  sections, a payload damaged in flight fails the worker's initializer with
  :class:`~repro.exceptions.CorruptPayloadError` instead of decoding into a
  wrong index — the supervisor treats that like any other worker-startup
  death (see the failure model below).
* **Tracked, retryable chunks.**  The plan's groups are packed into roughly
  size-balanced chunks (heaviest first, a few chunks per worker); each
  chunk is dispatched as its own :class:`concurrent.futures.Future` with at
  most one in-flight chunk per worker, so an idle worker picks up the next
  chunk (work stealing) and the per-chunk timeout clock never runs on a
  chunk that is merely queued.
* **Deterministic merge.**  Every result carries its query's input-order
  index, each group's results are computed entirely within one worker, and
  chunk execution is a pure function of the chunk's groups — so the merged
  output (ordering, paths, lengths and every
  :class:`~repro.core.query.SearchStatistics` counter) is bit-identical to
  sequential execution no matter how chunks are scheduled, retried or
  recovered (``tests/test_parallel_parity.py`` and
  ``tests/test_fault_injection.py`` enforce this).  Only
  ``runtime_seconds`` keeps its batch semantics (group wall time amortised
  over members, measured wherever the group finally ran).

Failure model — the degradation ladder
--------------------------------------
``run_batch`` treats every chunk as a tracked unit of work and climbs the
following rungs until the chunk's results exist:

1. **Dispatch** on the pool.  A chunk whose worker answers normally is done.
2. **Retry.**  A chunk whose worker raised an exception is resubmitted to
   the (still healthy) pool.  A chunk whose worker died
   (:class:`~concurrent.futures.process.BrokenProcessPool` — SIGKILL, OOM,
   initializer failure, corrupt payload at rehydration) or blew through the
   per-chunk timeout costs the whole pool: the supervisor kills any stuck
   processes, sleeps a bounded exponential backoff, respawns the pool and
   resubmits.  Chunks that merely shared the doomed pool are requeued
   without being charged a retry.
3. **In-process fallback.**  A chunk that exhausts ``max_chunk_retries`` —
   or a pool that cannot survive ``max_chunk_retries + 1`` consecutive
   respawns — is executed in the parent via
   :meth:`~repro.core.batch.BatchExecutor.run_planned`, which cannot be
   killed by pool failures.  This rung is what makes the ladder total:
   ``run_batch`` always returns complete, bit-identical results, no matter
   what the pool does.  (``in_process_fallback=False`` turns the last rung
   off for callers that would rather fail loudly, raising
   :class:`~repro.exceptions.WorkerCrashError`,
   :class:`~repro.exceptions.ChunkTimeoutError` or
   :class:`~repro.exceptions.ParallelExecutionError`.)

Every call produces an :class:`ExecutionReport` (``executor.last_report``,
also surfaced as ``ITSPQEngine.last_execution_report``) counting dispatches,
retries, timeouts, crashes, respawns, fallbacks and backoff time, so a
serving layer can observe degradation instead of guessing; a healthy run
reports ``clean`` with zero retries and zero fallbacks.

Fault injection for tests is threaded through the worker initializer: pass
a :class:`repro.testing.faults.FaultPlan` as ``fault_plan`` and workers
sabotage themselves on the planned (chunk, attempt) and pool-generation
coordinates — deterministically, so chaos runs replay exactly.  Production
pools (``fault_plan=None``) never import :mod:`repro.testing`.

On a single-core host the pool only adds IPC overhead; sizing the pool is
the caller's job (``benchmarks/bench_parallel_scaling.py`` measures the
scaling curve and records the host's usable CPU count alongside it).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.constants import WALKING_SPEED_MPS
from repro.core.batch import BatchExecutor, BatchGroup, BatchPlanner
from repro.core.compiled import CompiledITGraph
from repro.core.query import ITSPQuery, QueryResult
from repro.core.snapshot import CompiledSnapshotStore
from repro.exceptions import (
    ChunkTimeoutError,
    ParallelExecutionError,
    WorkerCrashError,
)

#: The per-process executor over the rehydrated index (set by the pool
#: initializer; one per worker process, never shared).
_WORKER_EXECUTOR: Optional[BatchExecutor] = None
#: The fault plan threaded through the initializer (tests only; ``None`` in
#: every production pool).
_WORKER_FAULT_PLAN = None

#: Executors with a live pool; the atexit guard closes them so interpreter
#: shutdown never depends on best-effort ``__del__`` ordering.
_LIVE_EXECUTORS: "weakref.WeakSet[ParallelBatchExecutor]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _close_live_executors() -> None:
    """Atexit guard: tear down any pools still alive at interpreter exit."""
    for executor in list(_LIVE_EXECUTORS):
        try:
            executor.close()
        except Exception:
            pass


def _register_live_executor(executor: "ParallelBatchExecutor") -> None:
    global _ATEXIT_REGISTERED
    _LIVE_EXECUTORS.add(executor)
    if not _ATEXIT_REGISTERED:
        atexit.register(_close_live_executors)
        _ATEXIT_REGISTERED = True


def _init_worker(
    payload: bytes, walking_speed: float, fault_plan, generation: int, cache_config=None
) -> None:
    """Pool initializer: rehydrate the compiled index and build the arena.

    Runs once per worker process.  Workers never see IT-Graph objects — the
    codec payload is the only hand-off — so startup is one flat decode
    regardless of venue complexity and identical under every multiprocessing
    start method.  ``generation`` is the parent's pool-respawn counter;
    fault plans use it to sabotage only specific pool incarnations.

    ``cache_config`` (a picklable :class:`~repro.core.cache.CacheConfig`, or
    ``None``) gives each worker its own shortest-path-tree cache over the
    rehydrated graph — including any precompute overlays that rode along in
    the payload's ``precompute`` section; trees themselves never cross the
    process boundary.
    """
    global _WORKER_EXECUTOR, _WORKER_FAULT_PLAN
    from repro.io.compiled_codec import compiled_graph_from_bytes

    if fault_plan is not None:
        from repro.testing.faults import prepare_worker_payload

        payload = prepare_worker_payload(fault_plan, payload, generation)
    _WORKER_EXECUTOR = BatchExecutor(
        compiled_graph_from_bytes(payload), walking_speed=walking_speed, cache=cache_config
    )
    _WORKER_FAULT_PLAN = fault_plan


def _run_chunk(
    chunk_id: int, attempt: int, groups: List[BatchGroup]
) -> List[Tuple[int, QueryResult]]:
    """Execute one dispatched chunk on this worker's executor.

    A pure function of ``groups`` (the arena is generation-stamped, so prior
    chunks leave no trace): re-running a lost chunk — on any worker, any
    attempt — reproduces bit-identical results, which is what makes retries
    and duplicated deliveries harmless.
    """
    if _WORKER_FAULT_PLAN is not None:
        from repro.testing.faults import fire_chunk_fault

        spec = _WORKER_FAULT_PLAN.chunk_fault(chunk_id, attempt)
        if spec is not None:
            fire_chunk_fault(spec, chunk_id, attempt)
    return _WORKER_EXECUTOR.run_planned(groups)


def default_worker_count() -> int:
    """The host's *usable* CPU count (the pool size ``workers=None`` implies).

    Respects CPU affinity masks — container cpusets, ``taskset``, batch
    schedulers — via ``os.sched_getaffinity`` where available, so a pool
    sized by default never oversubscribes a limited allocation the way raw
    ``os.cpu_count()`` would; falls back to ``os.cpu_count()`` elsewhere.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return max(1, os.cpu_count() or 1)


@dataclass
class ExecutionReport:
    """Observability record of one ``run_batch`` call.

    Counters cover the supervised pool path; an in-process run (``workers=1``
    or a single-group plan) reports zeros with ``mode="in-process"``.  A
    healthy parallel run is :attr:`clean`: every chunk completed on its
    first dispatch, no retries, no respawns, no fallbacks.
    """

    mode: str  #: ``"pool"``, ``"in-process"``, ``"batched"`` or ``"sequential"``.
    workers: int  #: configured pool size (1 for in-process modes).
    usable_cpus: int  #: :func:`default_worker_count` at run time.
    queries: int  #: workload size.
    groups: int  #: planned batch groups.
    chunks_total: int = 0  #: chunks the plan was packed into.
    chunks_dispatched: int = 0  #: dispatch attempts, retries included.
    chunks_completed: int = 0  #: chunks that completed on the pool.
    chunks_retried: int = 0  #: chunk retries charged to a failed attempt.
    chunks_fallback: int = 0  #: chunks recovered by the in-process rung.
    worker_crashes: int = 0  #: chunk losses to a dead worker / broken pool.
    chunk_timeouts: int = 0  #: chunk losses to the per-chunk timeout.
    chunk_failures: int = 0  #: chunks whose worker raised an exception.
    pool_respawns: int = 0  #: pools torn down and restarted.
    backoff_seconds: float = 0.0  #: total backoff slept between respawns.
    elapsed_seconds: float = 0.0  #: wall time of the whole call.
    dispatch_unix: float = 0.0  #: ``time.time()`` when the call started.
    pool_seconds: float = 0.0  #: wall time of the supervised-pool rung.
    fallback_seconds: float = 0.0  #: wall time of the in-process fallback rung.
    fault_plan: Optional[str] = field(default=None, repr=False)  #: repr of an injected plan.

    @property
    def clean(self) -> bool:
        """True when nothing went wrong: no retries, losses, respawns or
        fallbacks (the acceptance criterion for a healthy pool)."""
        return (
            self.chunks_retried == 0
            and self.chunks_fallback == 0
            and self.worker_crashes == 0
            and self.chunk_timeouts == 0
            and self.chunk_failures == 0
            and self.pool_respawns == 0
        )

    @property
    def total_seconds(self) -> float:
        """Alias of :attr:`elapsed_seconds` under the service's metric name
        (``dispatch_unix + total_seconds`` brackets the call in wall-clock
        terms, which is what a health scorer correlates across reports)."""
        return self.elapsed_seconds

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary (for bench records and gate summaries)."""
        record = {
            "mode": self.mode,
            "workers": self.workers,
            "usable_cpus": self.usable_cpus,
            "queries": self.queries,
            "groups": self.groups,
            "chunks_total": self.chunks_total,
            "chunks_dispatched": self.chunks_dispatched,
            "chunks_completed": self.chunks_completed,
            "chunks_retried": self.chunks_retried,
            "chunks_fallback": self.chunks_fallback,
            "worker_crashes": self.worker_crashes,
            "chunk_timeouts": self.chunk_timeouts,
            "chunk_failures": self.chunk_failures,
            "pool_respawns": self.pool_respawns,
            "backoff_seconds": self.backoff_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "dispatch_unix": self.dispatch_unix,
            "total_seconds": self.total_seconds,
            "pool_seconds": self.pool_seconds,
            "fallback_seconds": self.fallback_seconds,
            "clean": self.clean,
        }
        if self.fault_plan is not None:
            record["fault_plan"] = self.fault_plan
        return record

    def summary(self) -> str:
        """One line for logs and gate tables."""
        if self.mode != "pool":
            return (
                f"{self.mode}: {self.queries} queries in {self.groups} groups "
                f"({self.total_seconds:.3f}s)"
            )
        state = "clean" if self.clean else "degraded"
        return (
            f"pool({self.workers}): {self.chunks_completed}/{self.chunks_total} chunks "
            f"on-pool, {self.chunks_retried} retries, {self.chunk_timeouts} timeouts, "
            f"{self.worker_crashes} crashes, {self.pool_respawns} respawns, "
            f"{self.chunks_fallback} fallbacks [{state}] "
            f"({self.total_seconds:.3f}s: pool {self.pool_seconds:.3f}s, "
            f"fallback {self.fallback_seconds:.3f}s)"
        )


class _ChunkTask:
    """Supervision record of one dispatched chunk."""

    __slots__ = ("chunk_id", "groups", "attempt", "deadline", "last_failure")

    def __init__(self, chunk_id: int, groups: List[BatchGroup]):
        self.chunk_id = chunk_id
        self.groups = groups
        self.attempt = 0
        self.deadline: Optional[float] = None
        self.last_failure: Optional[str] = None

    def describe(self) -> str:
        sequences = [group.sequence for group in self.groups]
        return (
            f"chunk {self.chunk_id} ({len(self.groups)} groups "
            f"{min(sequences)}..{max(sequences)}, attempt {self.attempt})"
        )


class ParallelBatchExecutor:
    """Answers ITSPQ workloads by dispatching planned batch groups over a
    supervised pool of worker processes (see the module docstring for the
    process and failure model).

    The pool is created lazily on the first parallel ``run_batch`` and
    reused across calls; :meth:`close` (idempotent, also registered with
    ``atexit``) shuts it down.  With ``workers=1`` — or whenever a plan has
    too few groups to be worth shipping — execution stays in-process on the
    local executor, so small batches never pay IPC costs.

    Parameters
    ----------
    max_chunk_retries:
        Pool attempts charged to a chunk beyond the first before it drops to
        the in-process fallback rung (also the bound on *consecutive* pool
        respawns before the pool is declared dead for the call).
    chunk_timeout:
        Per-chunk wall-time budget in seconds, measured from dispatch to a
        worker (never while queued).  ``None`` disables the timeout rung.
    backoff_base / backoff_cap:
        Bounded exponential backoff between pool respawns: the n-th
        consecutive respawn sleeps ``min(cap, base * 2**(n-1))`` seconds.
    in_process_fallback:
        ``True`` (default) completes unrecoverable chunks in the parent;
        ``False`` raises the matching
        :class:`~repro.exceptions.ParallelExecutionError` subclass instead.
    fault_plan:
        A :class:`repro.testing.faults.FaultPlan` for chaos tests; ``None``
        (production) never touches :mod:`repro.testing`.
    """

    def __init__(
        self,
        compiled_graph: CompiledITGraph,
        workers: int,
        store: Optional[CompiledSnapshotStore] = None,
        walking_speed: float = WALKING_SPEED_MPS,
        chunks_per_worker: int = 4,
        start_method: Optional[str] = None,
        payload: Optional[bytes] = None,
        max_chunk_retries: int = 2,
        chunk_timeout: Optional[float] = 120.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        in_process_fallback: bool = True,
        fault_plan=None,
        cache=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be positive, got {chunks_per_worker}")
        if max_chunk_retries < 0:
            raise ValueError(f"max_chunk_retries must be non-negative, got {max_chunk_retries}")
        if chunk_timeout is not None and not chunk_timeout > 0:
            raise ValueError(f"chunk_timeout must be positive or None, got {chunk_timeout}")
        if backoff_base < 0:
            raise ValueError(f"backoff_base must be non-negative, got {backoff_base}")
        if backoff_cap < 0:
            raise ValueError(f"backoff_cap must be non-negative, got {backoff_cap}")
        if walking_speed <= 0:
            raise ValueError(f"walking_speed must be positive, got {walking_speed}")
        self._workers = int(workers)
        self._chunks_per_worker = int(chunks_per_worker)
        # The parent shares ``cache`` (an SPTreeCache or CacheConfig) with
        # its in-process fallback executor; workers get their own caches,
        # rebuilt from the *config* in the pool initializer — cached trees
        # are process-local by design.
        self._local = BatchExecutor(compiled_graph, store, walking_speed, cache=cache)
        local_cache = self._local.cache
        self._cache_config = local_cache.config if local_cache is not None else None
        self._speed = walking_speed
        self._payload = payload
        self._start_method = start_method
        self._max_retries = int(max_chunk_retries)
        self._chunk_timeout = chunk_timeout
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._fallback_enabled = bool(in_process_fallback)
        self._fault_plan = fault_plan
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Pools spawned over this executor's lifetime; doubles as the
        #: generation passed to worker initializers (0 = first pool).
        self._pools_spawned = 0
        #: The report of the most recent :meth:`run_batch` call.
        self.last_report: Optional[ExecutionReport] = None

    # -- introspection ------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Size of the worker pool."""
        return self._workers

    @property
    def graph(self) -> CompiledITGraph:
        """The compiled graph the parent plans over."""
        return self._local.graph

    @property
    def planner(self) -> BatchPlanner:
        """The parent-side workload planner."""
        return self._local.planner

    def payload_bytes(self) -> bytes:
        """The serialised index workers rehydrate from (built lazily once)."""
        if self._payload is None:
            from repro.io.compiled_codec import compiled_graph_to_bytes

            self._payload = compiled_graph_to_bytes(self._local.graph)
        return self._payload

    # -- execution ----------------------------------------------------------------

    def run_batch(self, queries: Sequence[ITSPQuery], method_name: str) -> List[QueryResult]:
        """Answer ``queries`` (canonical ``method_name``); results in input
        order, bit-identical to :meth:`BatchExecutor.run_batch` no matter
        what the pool does.  The call's :class:`ExecutionReport` is left on
        :attr:`last_report`."""
        started = time.perf_counter()
        dispatch_unix = time.time()
        groups = self._local.planner.plan(queries, method_name)
        results: List[Optional[QueryResult]] = [None] * len(queries)
        if self._workers <= 1 or len(groups) <= 1:
            report = ExecutionReport(
                mode="in-process",
                workers=self._workers,
                usable_cpus=default_worker_count(),
                queries=len(queries),
                groups=len(groups),
                dispatch_unix=dispatch_unix,
            )
            for order, result in self._local.run_planned(groups):
                results[order] = result
        else:
            chunks = self._chunk(groups)
            report = ExecutionReport(
                mode="pool",
                workers=self._workers,
                usable_cpus=default_worker_count(),
                queries=len(queries),
                groups=len(groups),
                chunks_total=len(chunks),
                dispatch_unix=dispatch_unix,
                fault_plan=repr(self._fault_plan) if self._fault_plan is not None else None,
            )
            for order, result in self._run_supervised(chunks, report):
                results[order] = result
        report.elapsed_seconds = time.perf_counter() - started
        self.last_report = report
        return results  # type: ignore[return-value]

    def _chunk(self, groups: Sequence[BatchGroup]) -> List[List[BatchGroup]]:
        """Pack groups into size-balanced chunks for the dispatch queue.

        Groups are distributed greedily by descending member count into
        ``workers * chunks_per_worker`` chunks (ties broken by plan order,
        so chunking is deterministic), and the heaviest chunks are emitted
        first: a worker that finishes a light chunk picks up the next one
        while a heavy chunk is still running elsewhere.  The emitted
        position is the chunk's id — the coordinate retry bookkeeping (and
        fault plans) key on.
        """
        chunk_count = min(len(groups), self._workers * self._chunks_per_worker)
        order = sorted(range(len(groups)), key=lambda index: (-groups[index].size, index))
        chunks: List[List[BatchGroup]] = [[] for _ in range(chunk_count)]
        weights = [0] * chunk_count
        for index in order:
            lightest = min(range(chunk_count), key=weights.__getitem__)
            chunks[lightest].append(groups[index])
            # Every group pays one fixed search setup on top of its members.
            weights[lightest] += groups[index].size + 1
        emit = sorted(range(chunk_count), key=lambda chunk: (-weights[chunk], chunk))
        return [chunks[chunk] for chunk in emit]

    # -- the supervisor -----------------------------------------------------------

    def _run_supervised(
        self, chunks: List[List[BatchGroup]], report: ExecutionReport
    ) -> List[Tuple[int, QueryResult]]:
        """Climb the degradation ladder until every chunk's results exist.

        Dispatches at most one in-flight chunk per worker, watches futures
        for completion / worker death / timeout, retries lost chunks with
        bounded exponential backoff on a respawned pool, and finally runs
        anything unrecovered on the parent's in-process executor.  Returns
        the merged ``(order, result)`` pairs; duplicated deliveries (a chunk
        that completed in the same instant its pool was condemned) are
        harmless because chunk execution is deterministic and the merge is
        keyed by input order.
        """
        pending: Deque[_ChunkTask] = deque(
            _ChunkTask(chunk_id, chunk) for chunk_id, chunk in enumerate(chunks)
        )
        fallback: List[_ChunkTask] = []
        in_flight: Dict[Future, _ChunkTask] = {}
        pairs: List[Tuple[int, QueryResult]] = []
        consecutive_respawns = 0
        #: The most recent failure kind — what never-dispatched chunks are
        #: attributed to when the respawn guard drains the queue.
        last_failure_kind: Optional[str] = None

        pool_started = time.perf_counter()

        def charge_failure(task: _ChunkTask, failure: str) -> None:
            """Charge one failed attempt; route to retry or the last rung."""
            nonlocal last_failure_kind
            task.attempt += 1
            task.last_failure = failure
            last_failure_kind = failure
            if task.attempt > self._max_retries:
                self._route_to_fallback(task, fallback, report)
            else:
                report.chunks_retried += 1
                pending.append(task)

        while pending or in_flight:
            broken = False
            # Fill the pool: one in-flight chunk per worker, so the timeout
            # clock of a chunk starts only when a worker actually holds it.
            while pending and len(in_flight) < self._workers and not broken:
                task = pending.popleft()
                try:
                    future = self._ensure_pool().submit(
                        _run_chunk, task.chunk_id, task.attempt, task.groups
                    )
                except BrokenProcessPool:
                    # The pool died before this chunk even left the parent —
                    # still evidence of worker death (e.g. an initializer
                    # failure noticed at submit time rather than via a
                    # future), so the crash counter reflects it.
                    pending.appendleft(task)
                    report.worker_crashes += 1
                    broken = True
                    break
                task.deadline = (
                    time.monotonic() + self._chunk_timeout
                    if self._chunk_timeout is not None
                    else None
                )
                in_flight[future] = task
                report.chunks_dispatched += 1

            if not broken and in_flight:
                timeout = None
                if self._chunk_timeout is not None:
                    next_deadline = min(task.deadline for task in in_flight.values())
                    timeout = max(0.0, next_deadline - time.monotonic())
                done, _ = wait(list(in_flight), timeout=timeout, return_when=FIRST_COMPLETED)
                for future in done:
                    task = in_flight.pop(future)
                    error = future.exception()
                    if error is None:
                        pairs.extend(future.result())
                        report.chunks_completed += 1
                        consecutive_respawns = 0
                    elif isinstance(error, BrokenProcessPool):
                        report.worker_crashes += 1
                        broken = True
                        charge_failure(task, "crash")
                    else:
                        report.chunk_failures += 1
                        charge_failure(task, "failure")
                if self._chunk_timeout is not None:
                    now = time.monotonic()
                    for future, task in list(in_flight.items()):
                        if task.deadline is not None and task.deadline <= now and not future.done():
                            del in_flight[future]
                            report.chunk_timeouts += 1
                            # The worker still holds the chunk; reclaiming it
                            # means condemning the pool.
                            broken = True
                            charge_failure(task, "timeout")

            if broken:
                # Salvage completed-but-uncollected chunks, requeue the rest
                # without charging them (they merely shared the doomed pool).
                for future, task in list(in_flight.items()):
                    if future.done() and future.exception() is None:
                        pairs.extend(future.result())
                        report.chunks_completed += 1
                    else:
                        pending.appendleft(task)
                in_flight.clear()
                consecutive_respawns += 1
                if consecutive_respawns > self._max_retries:
                    # The pool cannot be kept alive at all (e.g. every
                    # initializer dies): drain everything to the last rung.
                    self._close_pool()
                    while pending:
                        task = pending.popleft()
                        task.last_failure = (
                            task.last_failure or last_failure_kind or "crash"
                        )
                        self._route_to_fallback(task, fallback, report)
                else:
                    self._respawn_pool(report, consecutive_respawns)

        report.pool_seconds = time.perf_counter() - pool_started

        # The ladder's last rung: whatever the pool could not answer runs on
        # the parent's executor, whose results are bit-identical by the batch
        # parity contract.  Chunk order is normalised for determinism.
        fallback_started = time.perf_counter()
        for task in sorted(fallback, key=lambda task: task.chunk_id):
            pairs.extend(self._local.run_planned(task.groups))
        report.fallback_seconds = time.perf_counter() - fallback_started
        return pairs

    def _route_to_fallback(
        self, task: _ChunkTask, fallback: List[_ChunkTask], report: ExecutionReport
    ) -> None:
        """Drop a chunk to the in-process rung — or raise when it is off."""
        if self._fallback_enabled:
            report.chunks_fallback += 1
            fallback.append(task)
            return
        self._close_pool()
        message = (
            f"{task.describe()} unrecoverable after {task.attempt} failed pool "
            f"attempt(s) and in-process fallback is disabled"
        )
        if task.last_failure == "timeout":
            raise ChunkTimeoutError(message)
        if task.last_failure == "crash":
            raise WorkerCrashError(message)
        raise ParallelExecutionError(message)

    # -- pool lifecycle -----------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            method = self._start_method
            if method is None:
                # ``fork`` starts workers in milliseconds where available;
                # elsewhere fall back to the platform default (the codec
                # hand-off makes workers identical either way).
                method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            context = multiprocessing.get_context(method)
            generation = self._pools_spawned
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(
                    self.payload_bytes(),
                    self._speed,
                    self._fault_plan,
                    generation,
                    self._cache_config,
                ),
            )
            self._pools_spawned += 1
            _register_live_executor(self)
        return self._pool

    def _respawn_pool(self, report: ExecutionReport, consecutive: int) -> None:
        """Tear the pool down, back off, and let the next dispatch respawn it."""
        self._close_pool()
        delay = min(self._backoff_cap, self._backoff_base * (2 ** (consecutive - 1)))
        if delay > 0:
            time.sleep(delay)
            report.backoff_seconds += delay
        report.pool_respawns += 1

    def _close_pool(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        # Kill worker processes first: a stuck or sleeping worker would make
        # a graceful shutdown hang, and workers are stateless by design.
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the executor stays usable —
        the next parallel call starts a fresh pool).  Also invoked by the
        module's ``atexit`` guard, so interpreter shutdown never depends on
        ``__del__`` ordering."""
        self._close_pool()

    def __enter__(self) -> "ParallelBatchExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - redundant with the atexit guard
        try:
            self.close()
        except Exception:
            pass
