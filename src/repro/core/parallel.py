"""Multiprocess parallel batch execution over a serialisable compiled graph.

The :class:`~repro.core.batch.BatchExecutor` makes batch groups independent
by construction — every group is one self-contained multi-target search —
but still answers them on a single core.  This module dispatches the groups
of one plan across a pool of worker processes:

Process model
-------------
* **Plan in the parent, search in the workers.**  The parent owns the real
  :class:`~repro.core.compiled.CompiledITGraph` and runs the
  :class:`~repro.core.batch.BatchPlanner` (endpoint location included), so
  malformed queries fail fast with :class:`~repro.exceptions.QueryError`
  before any work is shipped.
* **Arena per worker.**  Each worker process owns one
  :class:`~repro.core.batch.BatchExecutor` — and therefore one
  generation-stamped :class:`~repro.core.batch.SearchArena` and one
  :class:`~repro.core.snapshot.CompiledSnapshotStore` — reused across every
  group and every ``run_batch`` call it serves.  Nothing is shared between
  workers at search time, so there are no locks on the hot path.
* **Serialised index hand-off.**  Workers rehydrate the compiled index from
  the :mod:`repro.io.compiled_codec` payload (one compact ``bytes`` blob)
  instead of recompiling the venue: startup cost is a flat decode,
  identical under ``fork`` and ``spawn``, and the payload is computed once
  per executor and reused by every worker.
* **Chunked work stealing.**  The plan's groups are packed into roughly
  size-balanced chunks (heaviest first, a few chunks per worker) and pulled
  from a shared task queue via ``imap_unordered`` — an idle worker steals
  the next chunk, so a straggler group cannot serialise the tail of the
  batch.
* **Deterministic merge.**  Every result carries its query's input-order
  index, and each group's results are computed entirely within one worker,
  so the merged output — ordering, paths, lengths and every
  :class:`~repro.core.query.SearchStatistics` counter — is bit-identical to
  sequential execution no matter how chunks are scheduled
  (``tests/test_parallel_parity.py`` enforces this).  Only
  ``runtime_seconds`` keeps its batch semantics (group wall time amortised
  over members, measured on the worker that ran the group).

On a single-core host the pool only adds IPC overhead; sizing the pool is
the caller's job (``benchmarks/bench_parallel_scaling.py`` measures the
scaling curve and records the host's CPU count alongside it).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro.constants import WALKING_SPEED_MPS
from repro.core.batch import BatchExecutor, BatchGroup, BatchPlanner
from repro.core.compiled import CompiledITGraph
from repro.core.query import ITSPQuery, QueryResult
from repro.core.snapshot import CompiledSnapshotStore

#: The per-process executor over the rehydrated index (set by the pool
#: initializer; one per worker process, never shared).
_WORKER_EXECUTOR: Optional[BatchExecutor] = None


def _init_worker(payload: bytes, walking_speed: float) -> None:
    """Pool initializer: rehydrate the compiled index and build the arena.

    Runs once per worker process.  Workers never see IT-Graph objects — the
    codec payload is the only hand-off — so startup is one flat decode
    regardless of venue complexity and identical under every
    multiprocessing start method.
    """
    global _WORKER_EXECUTOR
    from repro.io.compiled_codec import compiled_graph_from_bytes

    _WORKER_EXECUTOR = BatchExecutor(
        compiled_graph_from_bytes(payload), walking_speed=walking_speed
    )


def _run_chunk(groups: List[BatchGroup]) -> List[Tuple[int, QueryResult]]:
    """Execute one stolen chunk of groups on this worker's executor."""
    return _WORKER_EXECUTOR.run_planned(groups)


def default_worker_count() -> int:
    """The host's usable CPU count (the pool size ``workers=None`` implies)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return max(1, os.cpu_count() or 1)


class ParallelBatchExecutor:
    """Answers ITSPQ workloads by dispatching planned batch groups over a
    pool of worker processes (see the module docstring for the process
    model).

    The pool is created lazily on the first parallel ``run_batch`` and
    reused across calls; :meth:`close` (or use as a context manager) shuts
    it down.  With ``workers=1`` — or whenever a plan has too few groups to
    be worth shipping — execution stays in-process on the local executor,
    so small batches never pay IPC costs.
    """

    def __init__(
        self,
        compiled_graph: CompiledITGraph,
        workers: int,
        store: Optional[CompiledSnapshotStore] = None,
        walking_speed: float = WALKING_SPEED_MPS,
        chunks_per_worker: int = 4,
        start_method: Optional[str] = None,
        payload: Optional[bytes] = None,
    ):
        if workers < 1:
            raise ValueError(f"worker count must be positive, got {workers}")
        if chunks_per_worker < 1:
            raise ValueError(f"chunks per worker must be positive, got {chunks_per_worker}")
        self._workers = int(workers)
        self._chunks_per_worker = int(chunks_per_worker)
        self._local = BatchExecutor(compiled_graph, store, walking_speed)
        self._speed = walking_speed
        self._payload = payload
        self._start_method = start_method
        self._pool = None

    # -- introspection ------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Size of the worker pool."""
        return self._workers

    @property
    def graph(self) -> CompiledITGraph:
        """The compiled graph the parent plans over."""
        return self._local.graph

    @property
    def planner(self) -> BatchPlanner:
        """The parent-side workload planner."""
        return self._local.planner

    def payload_bytes(self) -> bytes:
        """The serialised index workers rehydrate from (built lazily once)."""
        if self._payload is None:
            from repro.io.compiled_codec import compiled_graph_to_bytes

            self._payload = compiled_graph_to_bytes(self._local.graph)
        return self._payload

    # -- execution ----------------------------------------------------------------

    def run_batch(self, queries: Sequence[ITSPQuery], method_name: str) -> List[QueryResult]:
        """Answer ``queries`` (canonical ``method_name``); results in input
        order, bit-identical to :meth:`BatchExecutor.run_batch`."""
        groups = self._local.planner.plan(queries, method_name)
        results: List[Optional[QueryResult]] = [None] * len(queries)
        if self._workers <= 1 or len(groups) <= 1:
            for order, result in self._local.run_planned(groups):
                results[order] = result
            return results  # type: ignore[return-value]
        pool = self._ensure_pool()
        for pairs in pool.imap_unordered(_run_chunk, self._chunk(groups)):
            for order, result in pairs:
                results[order] = result
        return results  # type: ignore[return-value]

    def _chunk(self, groups: Sequence[BatchGroup]) -> List[List[BatchGroup]]:
        """Pack groups into size-balanced chunks for the stealing queue.

        Groups are distributed greedily by descending member count into
        ``workers * chunks_per_worker`` chunks (ties broken by plan order,
        so chunking is deterministic), and the heaviest chunks are emitted
        first: a worker that finishes a light chunk steals the next one
        while a heavy chunk is still running elsewhere.
        """
        chunk_count = min(len(groups), self._workers * self._chunks_per_worker)
        order = sorted(range(len(groups)), key=lambda index: (-groups[index].size, index))
        chunks: List[List[BatchGroup]] = [[] for _ in range(chunk_count)]
        weights = [0] * chunk_count
        for index in order:
            lightest = min(range(chunk_count), key=weights.__getitem__)
            chunks[lightest].append(groups[index])
            # Every group pays one fixed search setup on top of its members.
            weights[lightest] += groups[index].size + 1
        emit = sorted(range(chunk_count), key=lambda chunk: (-weights[chunk], chunk))
        return [chunks[chunk] for chunk in emit]

    def _ensure_pool(self):
        if self._pool is None:
            method = self._start_method
            if method is None:
                # ``fork`` starts workers in milliseconds and is available on
                # every platform the benchmarks target; elsewhere fall back
                # to the platform default (the codec hand-off makes workers
                # identical either way).
                method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(
                processes=self._workers,
                initializer=_init_worker,
                initargs=(self.payload_bytes(), self._speed),
            )
        return self._pool

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the executor stays usable —
        the next parallel call starts a fresh pool)."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "ParallelBatchExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
