"""Indoor path value objects with per-hop arrival times and re-validation.

A valid ITSPQ answer is more than a door sequence: rule 1 of the problem
definition ties every door to the *arrival time* implied by the path prefix
leading to it.  :class:`IndoorPath` therefore records, per crossed door, the
cumulative walking distance and the arrival time, and can re-check both rules
against an IT-Graph — the property the test-suite leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.constants import WALKING_SPEED_MPS
from repro.geometry.point import IndoorPoint
from repro.temporal.timeofday import TimeOfDay


@dataclass(frozen=True)
class PathHop:
    """One door crossing along an indoor path.

    Attributes
    ----------
    door_id:
        The door crossed.
    from_partition / to_partition:
        The partition the traveller leaves and the partition entered through
        the door.
    distance_from_source:
        Cumulative walking distance from the source point up to this door.
    arrival_time:
        Wall-clock arrival time at the door (query time + walking time).
    """

    door_id: str
    from_partition: str
    to_partition: str
    distance_from_source: float
    arrival_time: TimeOfDay


@dataclass(frozen=True)
class PathViolation:
    """One violated ITSPQ rule found when re-validating a path."""

    rule: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.subject}: {self.detail}"


class IndoorPath:
    """An indoor route from a source point to a target point.

    The path is the sequence ``(p_s, d_1, d_2, ..., d_k, p_t)`` of the paper,
    enriched with the partitions traversed, the per-hop cumulative distances
    and arrival times, and the total length.
    """

    __slots__ = ("source", "target", "query_time", "hops", "total_length", "method_label")

    def __init__(
        self,
        source: IndoorPoint,
        target: IndoorPoint,
        query_time: TimeOfDay,
        hops: Sequence[PathHop],
        total_length: float,
        method_label: str = "",
    ):
        self.source = source
        self.target = target
        self.query_time = query_time
        self.hops: Tuple[PathHop, ...] = tuple(hops)
        self.total_length = float(total_length)
        self.method_label = method_label

    # -- views -------------------------------------------------------------------

    @property
    def door_sequence(self) -> List[str]:
        """Identifiers of the doors crossed, in order."""
        return [hop.door_id for hop in self.hops]

    @property
    def partition_sequence(self) -> List[str]:
        """Partitions traversed, in order, starting with the source partition."""
        if not self.hops:
            return []
        partitions = [self.hops[0].from_partition]
        for hop in self.hops:
            partitions.append(hop.to_partition)
        return partitions

    @property
    def door_count(self) -> int:
        """Number of doors crossed."""
        return len(self.hops)

    @property
    def arrival_time_at_target(self) -> TimeOfDay:
        """Wall-clock arrival time at the target point."""
        return self.query_time.add_seconds(self.total_length / WALKING_SPEED_MPS)

    def travel_time_seconds(self, walking_speed: float = WALKING_SPEED_MPS) -> float:
        """Total walking time along the path."""
        return self.total_length / walking_speed

    def as_node_sequence(self) -> List[str]:
        """The paper's textual path representation: ``[p_s, d_1, ..., d_k, p_t]``."""
        return ["p_s"] + self.door_sequence + ["p_t"]

    def describe(self) -> str:
        """Human-readable one-line description."""
        nodes = ", ".join(["ps"] + self.door_sequence + ["pt"])
        return f"({nodes}) length={self.total_length:.1f} m doors={self.door_count}"

    # -- validation ----------------------------------------------------------------

    def validate(
        self,
        itgraph,
        walking_speed: float = WALKING_SPEED_MPS,
        distance_tolerance: float = 1e-6,
    ) -> List[PathViolation]:
        """Re-check both ITSPQ rules and the internal consistency of the path.

        Returns the list of violations (empty when the path is valid).  The
        checks performed:

        * **rule 1** — every hop's door is open at its arrival time;
        * **rule 2** — no traversed partition is private unless it covers the
          source or target point;
        * **consistency** — hop distances are non-decreasing, arrival times
          match ``query_time + distance / speed``, consecutive hops share a
          partition, and every door actually connects the partitions claimed.
        """
        violations: List[PathViolation] = []
        topology = itgraph.topology

        source_partition = itgraph.covering_partition(self.source).partition_id
        target_partition = itgraph.covering_partition(self.target).partition_id
        allowed_private = {source_partition, target_partition}

        previous_distance = 0.0
        previous_to_partition: Optional[str] = None
        for index, hop in enumerate(self.hops):
            record = itgraph.door_record(hop.door_id)

            # Rule 1: door open at arrival time.
            if not record.atis.contains(hop.arrival_time):
                violations.append(
                    PathViolation(
                        rule="rule-1",
                        subject=hop.door_id,
                        detail=f"closed at arrival time {hop.arrival_time} (ATIs {record.atis})",
                    )
                )

            # Rule 2: no private partitions other than the endpoints' own.
            for partition_id in (hop.from_partition, hop.to_partition):
                partition_record = itgraph.partition_record(partition_id)
                if partition_record.is_private and partition_id not in allowed_private:
                    violations.append(
                        PathViolation(
                            rule="rule-2",
                            subject=partition_id,
                            detail=f"path traverses private partition via door {hop.door_id}",
                        )
                    )

            # Consistency: arrival time derived from distance.
            expected_arrival = self.query_time.add_seconds(hop.distance_from_source / walking_speed)
            if abs(expected_arrival.seconds - hop.arrival_time.seconds) > 1e-6:
                violations.append(
                    PathViolation(
                        rule="consistency",
                        subject=hop.door_id,
                        detail=(
                            f"arrival time {hop.arrival_time} does not match distance "
                            f"{hop.distance_from_source:.3f} m at {walking_speed:.3f} m/s"
                        ),
                    )
                )

            # Consistency: cumulative distances never decrease.
            if hop.distance_from_source + distance_tolerance < previous_distance:
                violations.append(
                    PathViolation(
                        rule="consistency",
                        subject=hop.door_id,
                        detail="cumulative distance decreases along the path",
                    )
                )
            previous_distance = hop.distance_from_source

            # Consistency: the door connects the claimed partitions in the claimed direction.
            if topology.has_door(hop.door_id):
                if hop.from_partition not in topology.leaveable_partitions(hop.door_id) or (
                    hop.to_partition not in topology.enterable_partitions(hop.door_id)
                ):
                    violations.append(
                        PathViolation(
                            rule="consistency",
                            subject=hop.door_id,
                            detail=(
                                f"door does not allow crossing from {hop.from_partition} "
                                f"to {hop.to_partition}"
                            ),
                        )
                    )
            else:
                violations.append(
                    PathViolation(
                        rule="consistency",
                        subject=hop.door_id,
                        detail="door is not part of the IT-Graph",
                    )
                )

            # Consistency: consecutive hops chain through shared partitions.
            if index > 0 and previous_to_partition is not None:
                if hop.from_partition != previous_to_partition:
                    violations.append(
                        PathViolation(
                            rule="consistency",
                            subject=hop.door_id,
                            detail=(
                                f"hop leaves partition {hop.from_partition} but the previous hop "
                                f"entered {previous_to_partition}"
                            ),
                        )
                    )
            previous_to_partition = hop.to_partition

        # Endpoint partitions must match the hop chain.
        if self.hops:
            if self.hops[0].from_partition != source_partition:
                violations.append(
                    PathViolation(
                        rule="consistency",
                        subject=self.hops[0].door_id,
                        detail=(
                            f"path starts in {self.hops[0].from_partition} but the source point "
                            f"lies in {source_partition}"
                        ),
                    )
                )
            if self.hops[-1].to_partition != target_partition:
                violations.append(
                    PathViolation(
                        rule="consistency",
                        subject=self.hops[-1].door_id,
                        detail=(
                            f"path ends in {self.hops[-1].to_partition} but the target point "
                            f"lies in {target_partition}"
                        ),
                    )
                )
        else:
            if source_partition != target_partition:
                violations.append(
                    PathViolation(
                        rule="consistency",
                        subject="<empty path>",
                        detail="a door-free path requires source and target in the same partition",
                    )
                )

        return violations

    def is_valid(self, itgraph, walking_speed: float = WALKING_SPEED_MPS) -> bool:
        """``True`` when :meth:`validate` finds no violations."""
        return not self.validate(itgraph, walking_speed)

    # -- dunder ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.hops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndoorPath):
            return NotImplemented
        return (
            self.source == other.source
            and self.target == other.target
            and self.query_time == other.query_time
            and self.door_sequence == other.door_sequence
            and abs(self.total_length - other.total_length) < 1e-9
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndoorPath({self.describe()})"
