"""Query and result value objects for ITSPQ processing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import QueryError
from repro.geometry.point import IndoorPoint
from repro.core.path import IndoorPath
from repro.core.semantics import NO_WAIT, SemanticsLike, TemporalSemantics, canonical_semantics
from repro.temporal.timeofday import TimeLike, TimeOfDay, as_time_of_day


@dataclass(frozen=True)
class ITSPQuery:
    """An Indoor Temporal-variation aware Shortest Path Query ``ITSPQ(ps, pt, t)``.

    Attributes
    ----------
    source:
        The start point ``p_s``.
    target:
        The target point ``p_t``.
    query_time:
        The timestamp ``t`` at which the user starts walking (or, under
        latest-departure semantics, the arrival deadline).
    label:
        Optional free-form tag used by workload generators (e.g. the δs2t
        bucket the query instance was generated for).
    semantics:
        The :class:`~repro.core.semantics.TemporalSemantics` the query is to
        be answered under; defaults to the paper's no-wait semantics.  All
        normalisation/validation of the semantics argument happens here, once,
        rather than per engine tier.
    """

    source: IndoorPoint
    target: IndoorPoint
    query_time: TimeOfDay
    label: str = ""
    semantics: TemporalSemantics = NO_WAIT

    def __init__(
        self,
        source: IndoorPoint,
        target: IndoorPoint,
        query_time: TimeLike,
        label: str = "",
        semantics: SemanticsLike = NO_WAIT,
    ):
        if not isinstance(source, IndoorPoint) or not isinstance(target, IndoorPoint):
            raise QueryError("query endpoints must be IndoorPoint instances")
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "query_time", as_time_of_day(query_time))
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "semantics", canonical_semantics(semantics))

    def at_time(self, query_time: TimeLike) -> "ITSPQuery":
        """Return the same origin/destination pair issued at a different time."""
        return ITSPQuery(self.source, self.target, query_time, self.label, self.semantics)

    def with_semantics(self, semantics: SemanticsLike) -> "ITSPQuery":
        """Return the same query under a different temporal semantics.

        Accepts an instance or a canonical name (``"no-wait"``,
        ``"wait-tolerant"``, ``"latest-departure"``; a time window needs an
        explicit :class:`~repro.core.semantics.TimeWindow` instance).
        """
        return ITSPQuery(self.source, self.target, self.query_time, self.label, semantics)

    def __str__(self) -> str:
        return f"ITSPQ({self.source}, {self.target}, {self.query_time})"


@dataclass
class SearchStatistics:
    """Instrumentation collected during one ITSPQ search.

    The counters mirror the cost factors the paper's evaluation discusses:
    how much of the graph the search touches (settled doors, relaxations,
    heap traffic) and how much temporal-checking work each method performs
    (ATI probes for ITG/S, snapshot refreshes and membership tests for
    ITG/A).
    """

    #: The deterministic counters, i.e. every field that must be bit-identical
    #: across execution tiers (sequential, compiled, batch, parallel) for the
    #: same query — everything except ``runtime_seconds`` and ``extra``.  The
    #: parity gates and benchmarks iterate this instead of hand-maintaining
    #: their own field lists, so a newly added counter is gated automatically.
    COUNTER_FIELDS = (
        "doors_settled",
        "relaxations",
        "heap_pushes",
        "heap_pops",
        "partitions_expanded",
        "private_partitions_pruned",
        "temporally_pruned_doors",
        "ati_probes",
        "snapshot_refreshes",
        "membership_checks",
        "peak_heap_size",
    )

    doors_settled: int = 0
    relaxations: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    partitions_expanded: int = 0
    private_partitions_pruned: int = 0
    temporally_pruned_doors: int = 0
    ati_probes: int = 0
    snapshot_refreshes: int = 0
    membership_checks: int = 0
    runtime_seconds: float = 0.0
    peak_heap_size: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def merge_strategy_counters(self, counters: Dict[str, int]) -> None:
        """Fold the TV-check strategy counters into these statistics."""
        self.ati_probes += counters.get("ati_probes", 0)
        self.snapshot_refreshes += counters.get("snapshot_refreshes", 0)
        self.membership_checks += counters.get("membership_checks", 0)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the benchmark reporter."""
        result = {
            "doors_settled": self.doors_settled,
            "relaxations": self.relaxations,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "partitions_expanded": self.partitions_expanded,
            "private_partitions_pruned": self.private_partitions_pruned,
            "temporally_pruned_doors": self.temporally_pruned_doors,
            "ati_probes": self.ati_probes,
            "snapshot_refreshes": self.snapshot_refreshes,
            "membership_checks": self.membership_checks,
            "runtime_seconds": self.runtime_seconds,
            "peak_heap_size": self.peak_heap_size,
        }
        result.update(self.extra)
        return result


@dataclass
class QueryResult:
    """Outcome of one ITSPQ evaluation.

    ``found`` is ``False`` when no valid route exists at the query time (the
    paper's "no such routes" outcome, e.g. ``ITSPQ(p3, p4, 23:30)`` in
    Example 1); ``path`` is then ``None`` and ``length`` is ``inf``.
    """

    query: ITSPQuery
    method_label: str
    found: bool
    path: Optional[IndoorPath] = None
    length: float = float("inf")
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def is_reachable(self) -> bool:
        """Alias of ``found``."""
        return self.found

    @property
    def semantics(self) -> TemporalSemantics:
        """The temporal semantics the result was computed under (the
        query's — a result can never answer a different semantics)."""
        return self.query.semantics

    def require_path(self) -> IndoorPath:
        """Return the path or raise :class:`~repro.exceptions.NoPathExistsError`."""
        from repro.exceptions import NoPathExistsError

        if not self.found or self.path is None:
            raise NoPathExistsError(f"no valid route for {self.query}")
        return self.path

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.found or self.path is None:
            return f"{self.method_label}: no such routes for {self.query}"
        return f"{self.method_label}: {self.path.describe()}"
