"""Independent reference implementations used as correctness oracles.

The test-suite never trusts the main engine to check itself.  This module
provides two deliberately different implementations of the ITSPQ semantics:

* :func:`selection_dijkstra_reference` — a selection-based (O(n²), heap-free)
  Dijkstra over an explicitly materialised door-to-door adjacency list, with
  the synchronous temporal rule applied inline.  Same label-setting semantics
  as Algorithm 1, different code path and data structures.
* :func:`time_expanded_exact` — an exhaustive branch-and-bound search over
  simple door sequences.  It explores *all* simple valid paths (not only the
  greedy label-setting ones), so it can find valid detours that arrive at a
  door after it opens even when the shortest prefix would arrive too early.
  It is exponential and only meant for small venues in tests; it also powers
  the "future work" waiting-free exactness analysis in the examples.

Both return light-weight result tuples rather than :class:`QueryResult` so
that they share no code with the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.constants import WALKING_SPEED_MPS
from repro.core.deadline import SearchDeadline
from repro.core.itgraph import ITGraph
from repro.exceptions import UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.temporal.timeofday import TimeLike, as_time_of_day

_INFINITY = float("inf")


@dataclass(frozen=True)
class ReferenceAnswer:
    """Result of a reference computation: reachability, length, door sequence."""

    found: bool
    length: float
    doors: Tuple[str, ...]

    @classmethod
    def unreachable(cls) -> "ReferenceAnswer":
        return cls(False, _INFINITY, ())


def _endpoint_partitions(itgraph: ITGraph, source: IndoorPoint, target: IndoorPoint) -> Tuple[str, str]:
    return (
        itgraph.covering_partition(source).partition_id,
        itgraph.covering_partition(target).partition_id,
    )


def _point_to_door(itgraph: ITGraph, point: IndoorPoint, door_id: str, partition_id: str) -> Optional[float]:
    try:
        return itgraph.point_to_door(point, door_id, partition_id)
    except UnknownEntityError:
        return None


def _routable(itgraph: ITGraph, partition_id: str, allowed_private: Set[str]) -> bool:
    record = itgraph.partition_record(partition_id)
    if record.is_outdoor:
        return False
    if record.is_private and partition_id not in allowed_private:
        return False
    return True


def selection_dijkstra_reference(
    itgraph: ITGraph,
    source: IndoorPoint,
    target: IndoorPoint,
    query_time: TimeLike,
    walking_speed: float = WALKING_SPEED_MPS,
    deadline: Optional[SearchDeadline] = None,
) -> ReferenceAnswer:
    """Label-setting reference with the same semantics as Algorithm 1.

    Works on door labels selected by linear scan (no heap), with door-to-door
    moves enumerated from the topology on the fly.  Used to cross-check the
    engine's ITG/S and ITG/A answers.  An armed ``deadline`` is polled once
    per selection step and raises
    :class:`~repro.exceptions.DeadlineExceededError` on expiry — the oracle
    observes the same cooperative budget contract as the engine tiers.
    """
    t = as_time_of_day(query_time)
    topology = itgraph.topology
    source_pid, target_pid = _endpoint_partitions(itgraph, source, target)
    allowed_private = {source_pid, target_pid}

    def door_open_on_arrival(door_id: str, distance: float) -> bool:
        arrival = t.add_seconds(distance / walking_speed)
        return itgraph.door_record(door_id).atis.contains(arrival)

    dist: Dict[str, float] = {}
    prev: Dict[str, str] = {}
    best_target = _INFINITY
    best_last_door: Optional[str] = None

    # Direct, door-free path.
    if source_pid == target_pid and source.floor == target.floor:
        best_target = source.point2d.distance_to(target.point2d)

    # Seed labels from the source point.
    for door_id in topology.leaveable_doors(source_pid):
        leg = _point_to_door(itgraph, source, door_id, source_pid)
        if leg is None:
            continue
        if not door_open_on_arrival(door_id, leg):
            continue
        if leg < dist.get(door_id, _INFINITY):
            dist[door_id] = leg
            prev[door_id] = ""

    settled: Set[str] = set()
    while True:
        if deadline is not None:
            deadline.tick()
        # Select the unsettled door with the smallest label by linear scan.
        current: Optional[str] = None
        current_distance = _INFINITY
        for door_id, value in dist.items():
            if door_id not in settled and value < current_distance:
                current, current_distance = door_id, value
        if current is None or current_distance >= best_target:
            break
        settled.add(current)

        for partition_id in topology.enterable_partitions(current):
            if not _routable(itgraph, partition_id, allowed_private):
                continue
            if partition_id == target_pid:
                final_leg = _point_to_door(itgraph, target, current, partition_id)
                if final_leg is not None and current_distance + final_leg < best_target:
                    best_target = current_distance + final_leg
                    best_last_door = current
            for next_door in topology.leaveable_doors(partition_id):
                if next_door == current or next_door in settled:
                    continue
                try:
                    leg = itgraph.intra_distance(partition_id, current, next_door)
                except UnknownEntityError:
                    continue
                candidate = current_distance + leg
                if candidate >= dist.get(next_door, _INFINITY):
                    continue
                if not door_open_on_arrival(next_door, candidate):
                    continue
                dist[next_door] = candidate
                prev[next_door] = current

    if best_target is _INFINITY or best_target == _INFINITY:
        return ReferenceAnswer.unreachable()

    doors: List[str] = []
    node = best_last_door
    while node:
        doors.append(node)
        node = prev.get(node, "")
    doors.reverse()
    return ReferenceAnswer(True, best_target, tuple(doors))


def time_expanded_exact(
    itgraph: ITGraph,
    source: IndoorPoint,
    target: IndoorPoint,
    query_time: TimeLike,
    walking_speed: float = WALKING_SPEED_MPS,
    max_doors: int = 32,
    deadline: Optional[SearchDeadline] = None,
) -> ReferenceAnswer:
    """Exhaustive optimum over *simple* door sequences (no door repeated).

    Unlike the label-setting searches, this explores longer-but-later
    prefixes, so it finds valid paths that deliberately detour to arrive at a
    door after it opens.  Branch-and-bound on the incumbent length keeps it
    tractable on the test venues; ``max_doors`` caps the recursion depth, and
    an armed ``deadline`` (polled once per expansion) bounds wall time — the
    exponential oracle is exactly where a budget matters most.
    """
    t = as_time_of_day(query_time)
    topology = itgraph.topology
    source_pid, target_pid = _endpoint_partitions(itgraph, source, target)
    allowed_private = {source_pid, target_pid}

    best: Dict[str, object] = {"length": _INFINITY, "doors": ()}

    if source_pid == target_pid and source.floor == target.floor:
        best["length"] = source.point2d.distance_to(target.point2d)
        best["doors"] = ()

    def door_open_on_arrival(door_id: str, distance: float) -> bool:
        arrival = t.add_seconds(distance / walking_speed)
        return itgraph.door_record(door_id).atis.contains(arrival)

    def recurse(current_door: str, distance: float, used: Set[str], doors: Tuple[str, ...]) -> None:
        if deadline is not None:
            deadline.tick()
        if distance >= best["length"] or len(doors) >= max_doors:
            return
        for partition_id in topology.enterable_partitions(current_door):
            if not _routable(itgraph, partition_id, allowed_private):
                continue
            if partition_id == target_pid:
                final_leg = _point_to_door(itgraph, target, current_door, partition_id)
                if final_leg is not None and distance + final_leg < best["length"]:
                    best["length"] = distance + final_leg
                    best["doors"] = doors
            for next_door in topology.leaveable_doors(partition_id):
                if next_door in used or next_door == current_door:
                    continue
                try:
                    leg = itgraph.intra_distance(partition_id, current_door, next_door)
                except UnknownEntityError:
                    continue
                candidate = distance + leg
                if candidate >= best["length"]:
                    continue
                if not door_open_on_arrival(next_door, candidate):
                    continue
                recurse(next_door, candidate, used | {next_door}, doors + (next_door,))

    for door_id in topology.leaveable_doors(source_pid):
        leg = _point_to_door(itgraph, source, door_id, source_pid)
        if leg is None:
            continue
        if not door_open_on_arrival(door_id, leg):
            continue
        recurse(door_id, leg, {door_id}, (door_id,))

    if best["length"] == _INFINITY:
        return ReferenceAnswer.unreachable()
    return ReferenceAnswer(True, float(best["length"]), tuple(best["doors"]))  # type: ignore[arg-type]
