"""Pluggable temporal semantics for the ITSPQ search kernel.

The paper's query semantics — *no-wait* earliest arrival, where a door must be
open at the exact instant the walker reaches it — used to be hard-wired into
every execution tier: the reference search, the compiled integer-label search,
the batch multi-target search and the cache's tree recorder each carried their
own inline copy of the TV-check relaxation logic.  This module is now the
**single source of truth** for that logic: every tier asks
:func:`make_edge_probe` for one probe closure and runs the same
``relax -> probe -> push`` kernel, so a semantics is implemented exactly once
and automatically works everywhere.

A probe maps ``(door_index, candidate_cost) -> float | None``:

``None``
    The relaxation is temporally infeasible — the caller counts it as a
    temporally pruned door and moves on.
``float``
    The (possibly adjusted) cost label to use for the distance-improvement
    test and heap push.  All costs are *equivalent metres* — elapsed time
    multiplied by the walking speed — so a semantics that waits at a door
    simply returns a larger label and Dijkstra's invariants are preserved
    (waiting is FIFO: leaving earlier can never make you arrive later).

The four built-in TV-check methods of the paper's no-wait semantics keep
their exact per-kind cost profile (dispatch kinds as in
:data:`repro.core.compiled.COMPILED_KINDS`):

kind 0 — synchronous (ITG/S)
    One ATI boundary bisect per relaxation at the arrival instant.  The
    probe counter is *derived* after the search (one probe per relaxation by
    construction); see :func:`derive_counters`.
kind 1 — asynchronous (ITG/A)
    Membership tests against the current checkpoint snapshot, refreshed
    forward when the arrival instant passes the snapshot's interval, one
    direct ATI probe for arrivals before the snapshot started.  Counted
    live through the probe's counter list.
kind 2 — static
    Every door passes; membership counters derived after the search.
kind 3 — query-time snapshot
    One bisect at the *query* instant per relaxation; derived like kind 0.

The additional semantics all ride on the synchronous method (kind 0), the
only method whose probe sees exact ATI boundaries:

:class:`WaitTolerant`
    A closed door may be waited out: the probe charges the wait as extra
    equivalent metres (``(next_opening - t_query) * speed``) instead of
    pruning, and prunes only doors that never reopen before the end of day
    (the day does not wrap — midnight is a hard horizon).
:class:`TimeWindow`
    A door is feasible only if it stays open for ``window_seconds`` past the
    arrival instant (the walker needs the door usable for a follow-up trip
    through it); half-open ATIs make "closes exactly at the window end" feasible.
:class:`LatestDeparture`
    The inverse query: ``query_time`` is an arrival *deadline* and the search
    runs backwards from the target, probing each door at
    ``deadline - cost / speed``.  The raw search is anchor-rooted at the
    target; :meth:`LatestDeparture.finalise_result` re-orients the path and
    rejects routes whose departure would fall before midnight.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.core.path import IndoorPath, PathHop
from repro.exceptions import QueryError

#: Index layout of the live counter list handed out by :func:`make_edge_probe`:
#: ``counters[ATI_PROBES]``, ``counters[SNAPSHOT_REFRESHES]``,
#: ``counters[MEMBERSHIP_CHECKS]``.  Callers snapshot these per event (batch,
#: cache) or copy them once after the search (engine).
ATI_PROBES = 0
SNAPSHOT_REFRESHES = 1
MEMBERSHIP_CHECKS = 2

#: A probe: ``(door_key, candidate_cost) -> cost | None`` (``None`` = pruned).
EdgeProbe = Callable[[object, float], Optional[float]]

#: What user-facing APIs accept wherever a semantics is expected: an
#: instance, or a canonical name resolved by :func:`canonical_semantics`.
SemanticsLike = Union[str, "TemporalSemantics"]


@dataclass(frozen=True)
class TemporalSemantics:
    """Base class for ITSPQ temporal query semantics.

    Subclasses are small frozen value objects: hashable (they participate in
    batch group keys and cache keys — trees are only shareable within one
    semantics), picklable (they travel to parallel workers inside planned
    groups) and stateless (all per-query state lives in the probe closure).
    """

    #: Canonical name, accepted by :func:`canonical_semantics`.
    name = "abstract"
    #: Whether search time flows forward from the anchor (``False`` only for
    #: :class:`LatestDeparture`, whose anchor is the target).
    forward = True

    def validate_method(self, method_name: str) -> None:
        """Raise :class:`~repro.exceptions.QueryError` unless ``method_name``
        supports this semantics.

        The non-default semantics need exact ATI boundaries at probe time, so
        they run only on the synchronous method; :class:`NoWait` accepts all
        four TV-check methods.
        """
        if method_name != "synchronous":
            raise QueryError(
                f"{self.name} semantics requires the synchronous TV-check method, "
                f"got {method_name!r}"
            )

    def search_endpoints(self, query) -> Tuple[object, object]:
        """The ``(anchor, goal)`` points the kernel searches between.

        The anchor roots the shortest-path tree (it is the batch/cache
        sharing key); forward semantics anchor at the query source,
        :class:`LatestDeparture` anchors at the target.
        """
        return query.source, query.target

    def finalise_result(self, result, walking_speed: float):
        """Post-process a raw anchor-rooted result into the user-facing one.

        The default (all forward semantics) is the identity; the engine, the
        batch executor and the cache replay all funnel their results through
        this hook so a semantics needing re-orientation only writes it once.
        """
        return result


@dataclass(frozen=True)
class NoWait(TemporalSemantics):
    """The paper's ITSPQ semantics: a door must be open on arrival."""

    name = "no-wait"

    def validate_method(self, method_name: str) -> None:
        return None


@dataclass(frozen=True)
class WaitTolerant(TemporalSemantics):
    """Earliest arrival when waiting at closed doors is allowed."""

    name = "wait-tolerant"


@dataclass(frozen=True)
class TimeWindow(TemporalSemantics):
    """No-wait arrival, but every used door must stay open for
    ``window_seconds`` past the arrival instant."""

    window_seconds: float

    name = "time-window"

    def __post_init__(self) -> None:
        if not self.window_seconds > 0:
            raise QueryError(
                f"time-window semantics needs a positive window, got {self.window_seconds!r}"
            )


@dataclass(frozen=True)
class LatestDeparture(TemporalSemantics):
    """Latest feasible departure arriving by the ``query_time`` deadline.

    On fixed (always-open) intervals this is the exact inverse of no-wait
    earliest arrival: same path length, departure = deadline - length/speed.
    """

    name = "latest-departure"
    forward = False

    def search_endpoints(self, query):
        return query.target, query.source

    def finalise_result(self, result, walking_speed: float):
        if not result.found:
            return result
        deadline = result.query.query_time.seconds
        if deadline - result.length / walking_speed < 0.0:
            # The route exists but its departure falls before midnight —
            # outside the day the ATIs describe, so "no such routes".
            result.found = False
            result.path = None
            result.length = float("inf")
            return result
        raw = result.path
        total = raw.total_length
        hops = [
            PathHop(
                hop.door_id,
                hop.to_partition,
                hop.from_partition,
                total - hop.distance_from_source,
                hop.arrival_time,
            )
            for hop in reversed(raw.hops)
        ]
        result.path = IndoorPath(
            source=result.query.source,
            target=result.query.target,
            query_time=result.query.query_time,
            hops=hops,
            total_length=total,
            method_label=raw.method_label,
        )
        return result


#: The default semantics instance, shared so that identity checks and cache
#: keys coincide for the overwhelmingly common case.
NO_WAIT = NoWait()

_NAMED_SEMANTICS = {
    "no-wait": NO_WAIT,
    "no_wait": NO_WAIT,
    "nowait": NO_WAIT,
    "wait-tolerant": WaitTolerant(),
    "wait_tolerant": WaitTolerant(),
    "latest-departure": LatestDeparture(),
    "latest_departure": LatestDeparture(),
}


def canonical_semantics(value) -> TemporalSemantics:
    """Normalise a semantics argument: an instance passes through, a known
    name resolves to the shared instance."""
    if isinstance(value, TemporalSemantics):
        return value
    if isinstance(value, str):
        semantics = _NAMED_SEMANTICS.get(value.strip().lower())
        if semantics is not None:
            return semantics
        if value.strip().lower() in ("time-window", "time_window"):
            raise QueryError(
                "time-window semantics needs an explicit TimeWindow(window_seconds=...) instance"
            )
        raise QueryError(f"unknown temporal semantics {value!r}")
    raise QueryError(f"semantics must be a TemporalSemantics or name, got {value!r}")


def make_edge_probe(
    semantics: TemporalSemantics,
    kind: int,
    bounds,
    query_seconds: float,
    speed: float,
    interval_at=None,
) -> Tuple[EdgeProbe, List[int]]:
    """Build the relaxation probe for one search.

    ``bounds`` is anything subscriptable by the caller's door key — the
    compiled tiers pass :attr:`CompiledITGraph.ati_bounds` (integer keys),
    the reference search passes a lazy per-door map (string keys) — so the
    exact same closure, float math and counter accounting serve every tier.
    ``interval_at`` is the snapshot store probe, required for kind 1 only.

    Returns ``(probe, counters)`` where ``counters`` is the live
    ``[ati_probes, snapshot_refreshes, membership_checks]`` list the probe
    mutates in place (see :data:`ATI_PROBES` and friends).  For kinds whose
    probe count is an exact function of the relaxation count, the probe
    leaves the counter at zero and :func:`derive_counters` fills it in.
    """
    counters = [0, 0, 0]
    qs = query_seconds

    if isinstance(semantics, NoWait):
        if kind == 0:

            def probe(idx, cost):
                if bisect_right(bounds[idx], qs + cost / speed) & 1:
                    return cost
                return None

        elif kind == 1:
            if interval_at is None:
                raise QueryError("the asynchronous method needs a snapshot store probe")
            cur_start, cur_end, cur_bits = interval_at(qs)
            counters[SNAPSHOT_REFRESHES] = 1

            def probe(idx, cost):
                nonlocal cur_start, cur_end, cur_bits
                t_arr = qs + cost / speed
                if cur_start <= t_arr < cur_end:
                    counters[MEMBERSHIP_CHECKS] += 1
                    open_now = cur_bits[idx]
                elif t_arr >= cur_end:
                    cur_start, cur_end, cur_bits = interval_at(t_arr)
                    counters[SNAPSHOT_REFRESHES] += 1
                    counters[MEMBERSHIP_CHECKS] += 1
                    open_now = cur_bits[idx]
                else:
                    counters[ATI_PROBES] += 1
                    open_now = bisect_right(bounds[idx], t_arr) & 1
                return cost if open_now else None

        elif kind == 2:

            def probe(idx, cost):
                return cost

        else:

            def probe(idx, cost):
                if bisect_right(bounds[idx], qs) & 1:
                    return cost
                return None

        return probe, counters

    if kind != 0:
        raise QueryError(
            f"{semantics.name} semantics requires the synchronous TV-check method"
        )

    if isinstance(semantics, WaitTolerant):

        def probe(idx, cost):
            door_bounds = bounds[idx]
            counters[ATI_PROBES] += 1
            index = bisect_right(door_bounds, qs + cost / speed)
            if index & 1:
                return cost
            # Closed on arrival: one more probe finds the next opening (the
            # flat-array twin of ATISet.next_opening).  An even index past
            # the last boundary means the door never reopens today.
            counters[ATI_PROBES] += 1
            if index >= len(door_bounds):
                return None
            return (door_bounds[index] - qs) * speed

    elif isinstance(semantics, TimeWindow):
        window = semantics.window_seconds

        def probe(idx, cost):
            door_bounds = bounds[idx]
            t_arr = qs + cost / speed
            counters[ATI_PROBES] += 1
            index = bisect_right(door_bounds, t_arr)
            if not index & 1:
                return None
            # Open on arrival, so ``index`` is odd and ``door_bounds[index]``
            # is the closing instant of the containing interval.
            if t_arr + window > door_bounds[index]:
                return None
            return cost

    elif isinstance(semantics, LatestDeparture):

        def probe(idx, cost):
            counters[ATI_PROBES] += 1
            # Walking backwards from the deadline: the door is crossed
            # ``cost`` equivalent metres *before* the deadline.  Instants
            # before midnight bisect to index 0 (even) and prune naturally.
            if bisect_right(bounds[idx], qs - cost / speed) & 1:
                return cost
            return None

    else:
        raise QueryError(f"no probe kernel for semantics {semantics!r}")

    return probe, counters


class _LazyBoundsMap(dict):
    """Per-door ATI boundary arrays, materialised on first probe.

    Lets the reference search share :func:`make_edge_probe` with the compiled
    tiers: same closure, keyed by door id instead of door index.
    """

    def __init__(self, itgraph):
        super().__init__()
        self._itgraph = itgraph

    def __missing__(self, door_id):
        door_bounds = tuple(self._itgraph.door_record(door_id).atis.boundary_seconds())
        self[door_id] = door_bounds
        return door_bounds


def make_reference_probe(
    semantics: TemporalSemantics, itgraph, query_seconds: float, speed: float
) -> Tuple[EdgeProbe, List[int]]:
    """The object-level twin of :func:`make_edge_probe` (synchronous kinds
    only — exactly the methods the non-default semantics validate to)."""
    return make_edge_probe(semantics, 0, _LazyBoundsMap(itgraph), query_seconds, speed)


def derive_counters(semantics: TemporalSemantics, kind: int, stats) -> None:
    """Fill in the probe counters that are exact functions of the relaxation
    count (one probe per relaxation, by construction of the reference
    strategies), so the hot loop never increments them.

    Only the no-wait kinds 0/2/3 derive; kind 1 and every non-default
    semantics count live through the probe's counter list.
    """
    if not isinstance(semantics, NoWait):
        return
    if kind == 0 or kind == 3:
        stats.ati_probes = stats.relaxations
    elif kind == 2:
        stats.membership_checks = stats.relaxations
