"""Time-dependent IT-Graph snapshots — ``Graph_Update`` (Algorithm 3).

Between two consecutive checkpoints the indoor topology does not change, so
the asynchronous method ITG/A works on a *reduced* IT-Graph that simply lacks
every door closed during the current checkpoint interval.  ``GraphUpdater``
produces such reduced snapshots on demand and caches them per interval, which
is exactly the amortisation Algorithm 3 relies on: one topology reduction per
checkpoint interval instead of one ATI probe per encountered door.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.constants import SECONDS_PER_DAY
from repro.core.itgraph import ITGraph
from repro.indoor.topology import Topology
from repro.temporal.interval import TimeInterval
from repro.temporal.timeofday import TimeLike, TimeOfDay, as_time_of_day


@dataclass(frozen=True)
class GraphSnapshot:
    """A reduced IT-Graph valid throughout one checkpoint interval.

    Attributes
    ----------
    interval:
        The checkpoint interval ``[cp, next_cp)`` the snapshot is valid for
        (clamped to the day boundaries when ``t`` lies before the first or
        after the last checkpoint).
    checkpoint:
        The checkpoint the snapshot was derived at (``cp`` in Algorithm 3);
        equals ``interval.start``.
    closed_doors:
        The doors removed from the topology because they are closed during
        the interval.
    topology:
        The reduced topology ``G'_IT`` with those doors removed.
    """

    interval: TimeInterval
    checkpoint: TimeOfDay
    closed_doors: FrozenSet[str]
    topology: Topology = field(compare=False)

    def covers(self, instant: TimeLike) -> bool:
        """Return ``True`` when ``instant`` falls inside this snapshot's interval."""
        return self.interval.contains(instant)

    def door_available(self, door_id: str) -> bool:
        """Return ``True`` when ``door_id`` is open throughout the interval.

        A door missing from the original graph is reported unavailable rather
        than raising, because the asynchronous check treats availability as a
        pure pruning signal.
        """
        return door_id not in self.closed_doors and self.topology.has_door(door_id)

    @property
    def open_door_count(self) -> int:
        """Number of doors remaining in the reduced topology."""
        return len(self.topology.door_ids)


class GraphUpdater:
    """Produces and caches reduced snapshots of an IT-Graph (Algorithm 3).

    The updater is deliberately stateless with respect to any particular
    query; the per-query "current snapshot" pointer lives in the asynchronous
    check strategy so that concurrent queries cannot interfere.
    """

    def __init__(self, itgraph: ITGraph):
        self._itgraph = itgraph
        self._cache: Dict[float, GraphSnapshot] = {}
        self._updates_performed = 0

    @property
    def itgraph(self) -> ITGraph:
        """The underlying full IT-Graph ``G^0_IT``."""
        return self._itgraph

    @property
    def updates_performed(self) -> int:
        """Number of snapshot constructions that actually ran (cache misses)."""
        return self._updates_performed

    def clear_cache(self) -> None:
        """Drop all cached snapshots (used by memory-cost experiments)."""
        self._cache.clear()

    @property
    def cached_snapshot_count(self) -> int:
        """Number of snapshots currently cached."""
        return len(self._cache)

    def graph_update(self, instant: TimeLike) -> GraphSnapshot:
        """``Graph_Update(t, T)``: the reduced IT-Graph in force at ``instant``.

        Finds the previous checkpoint ``cp`` relative to ``instant``, removes
        every door closed during ``[cp, next_cp)`` from the topology mappings
        and returns the resulting snapshot.  Snapshots are cached per
        checkpoint interval, so repeated calls inside the same interval are
        O(1).
        """
        t = as_time_of_day(instant)
        interval = self._itgraph.checkpoints.interval_containing(t)
        key = interval.start.seconds
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        # Representative instant: anywhere inside the interval gives the same
        # set of closed doors because the topology is constant between
        # checkpoints.  Use the interval start (the checkpoint itself).
        representative = interval.start
        closed = self._itgraph.doors_closed_at(representative)
        reduced = self._itgraph.topology.without_doors(closed)
        snapshot = GraphSnapshot(
            interval=interval,
            checkpoint=interval.start,
            closed_doors=frozenset(closed),
            topology=reduced,
        )
        self._cache[key] = snapshot
        self._updates_performed += 1
        return snapshot

    def snapshot_for_query(self, query_time: TimeLike) -> GraphSnapshot:
        """Convenience alias used at the start of an ITG/A search."""
        return self.graph_update(query_time)

    def all_snapshots(self) -> Dict[float, GraphSnapshot]:
        """Eagerly materialise snapshots for every checkpoint interval of the day.

        Useful for offline analyses and for the memory ablation benchmark; a
        live ITG/A search only ever materialises the intervals its arrival
        times actually visit.
        """
        boundaries = [TimeOfDay.midnight()] + list(self._itgraph.checkpoints.times)
        for boundary in boundaries:
            self.graph_update(boundary)
        return dict(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphUpdater({self._itgraph!r}, cached={len(self._cache)}, "
            f"updates={self._updates_performed})"
        )


class IntervalBitsets:
    """Precomputed per-checkpoint-interval open-door bitsets.

    This is the compiled counterpart of :class:`GraphUpdater`: instead of a
    reduced :class:`~repro.indoor.topology.Topology` per interval, it stores
    one ``bytes`` flag array per interval whose entry ``i`` is ``1`` when
    door ``i`` (in the compiled door numbering) is open throughout the
    interval.  The ITG/A membership test ``door_available(d)`` then lowers
    to ``flags[i]`` — a true O(1) index test with no set probing and no
    big-integer shifting, regardless of venue size.

    The candidate interval starts are midnight plus every checkpoint, exactly
    the keys :meth:`GraphUpdater.graph_update` can cache under.
    """

    __slots__ = ("_starts", "_bitsets")

    def __init__(self, itgraph: ITGraph, door_ids: Sequence[str]):
        checkpoint_seconds = [t.seconds for t in itgraph.checkpoints.times]
        starts = sorted({0.0, *checkpoint_seconds})
        atis_by_index = [itgraph.door_record(door_id).atis for door_id in door_ids]
        bitsets: List[bytes] = [
            bytes(1 if atis.contains_seconds(start) else 0 for atis in atis_by_index)
            for start in starts
        ]
        self._starts = starts
        self._bitsets = bitsets

    @classmethod
    def _from_state(cls, starts: Sequence[float], bitsets: Sequence[bytes]) -> "IntervalBitsets":
        """Rebuild bitsets from already-computed state (the ``repro.io`` codec).

        The rehydrated instance is indistinguishable from one built against
        the original IT-Graph: the starts and flag arrays *are* the whole
        state, so every probe — and therefore every ITG/A counter — matches
        bit for bit.
        """
        if len(starts) != len(bitsets):
            raise ValueError(
                f"interval starts and bitsets disagree: {len(starts)} vs {len(bitsets)}"
            )
        instance = object.__new__(cls)
        instance._starts = [float(start) for start in starts]
        instance._bitsets = [bytes(flags) for flags in bitsets]
        return instance

    @property
    def starts(self) -> List[float]:
        """The interval start instants in increasing order (seconds)."""
        return list(self._starts)

    @property
    def interval_count(self) -> int:
        """Number of distinct constant-topology intervals."""
        return len(self._starts)

    def index_at(self, instant_seconds: float) -> int:
        """Index of the constant-topology interval containing the instant.

        The arena-friendly primitive shared by :meth:`bitset_at`, the
        per-engine :class:`CompiledSnapshotStore` and the batch planner: one
        ``bisect`` on raw floats, no object construction.
        """
        index = bisect.bisect_right(self._starts, instant_seconds) - 1
        return index if index > 0 else 0

    def bitset_by_index(self, index: int) -> bytes:
        """The open-door flag array of interval ``index`` (no bounds probe)."""
        return self._bitsets[index]

    def bitset_at(self, instant_seconds: float) -> bytes:
        """The open-door flag array in force at ``instant_seconds``."""
        return self._bitsets[self.index_at(instant_seconds)]

    def store(self) -> "CompiledSnapshotStore":
        """A fresh per-engine view over these bitsets (see the store's docs)."""
        return CompiledSnapshotStore(self)


class CompiledSnapshotStore:
    """Per-engine interval lookup over shared :class:`IntervalBitsets`.

    The bitsets themselves are immutable and shared, but the *end* of the
    interval past the last checkpoint mirrors
    :meth:`~repro.temporal.checkpoints.CheckpointSet.interval_containing`:
    it is pinned by the first instant that materialises that interval, just
    as :class:`GraphUpdater` caches the snapshot built at first access.
    Keeping that cache per engine keeps the compiled ITG/A refresh counters
    bit-identical to the reference strategy's.
    """

    __slots__ = ("_source", "_bitsets", "_starts", "_tail_end")

    def __init__(self, bitsets: IntervalBitsets):
        self._source = bitsets
        self._bitsets = bitsets._bitsets
        self._starts = bitsets._starts
        self._tail_end: Optional[float] = None

    @property
    def bitsets(self) -> IntervalBitsets:
        """The shared immutable bitsets this store serves."""
        return self._source

    def interval_at(self, instant_seconds: float) -> Tuple[float, float, bytes]:
        """``(start, end, open_bits)`` of the interval containing the instant."""
        starts = self._starts
        index = bisect.bisect_right(starts, instant_seconds) - 1
        if index < 0:
            index = 0
        if index + 1 < len(starts):
            end = starts[index + 1]
        else:
            if self._tail_end is None:
                self._tail_end = max(float(SECONDS_PER_DAY), instant_seconds) + SECONDS_PER_DAY
            end = self._tail_end
        return starts[index], end, self._bitsets[index]
