"""Temporal-validity check strategies: ``TV_Check`` instantiations.

Algorithm 1 delegates the question *"will door d still be open when the user
gets there?"* to a pluggable ``TV_Check`` function.  The paper instantiates it
two ways:

* **Synchronous check** (Algorithm 2, method ITG/S): compute the arrival time
  ``t_arr = t + dist / velocity`` and probe the door's ATIs directly.
* **Asynchronous check** (Algorithm 4, method ITG/A): keep a reduced
  IT-Graph snapshot valid for the current checkpoint interval
  (Algorithm 3) and refresh it lazily when arrival times cross the next
  checkpoint; accessibility then follows from the door's membership in the
  reduced topology rather than from per-door ATI probes.

Note on faithfulness: the published pseudocode of Algorithm 1 (line 30) and
Algorithms 2/4 disagree on the boolean convention (see DESIGN.md §2).  Here
``is_passable`` uniformly returns ``True`` when the door can be crossed at
its arrival time, and the engine skips doors for which it returns ``False``.

All strategies expose counters (`ati_probes`, `snapshot_refreshes`, ...) so
benchmarks can attribute where the checking work goes — this is the ablation
the paper's ITG/S-vs-ITG/A comparison is really about.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.constants import WALKING_SPEED_MPS
from repro.core.itgraph import ITGraph
from repro.core.snapshot import GraphSnapshot, GraphUpdater
from repro.temporal.timeofday import TimeOfDay, as_time_of_day


class TVCheckStrategy(abc.ABC):
    """Interface of a temporal-validity check used by the ITSPQ engine.

    A strategy instance is bound to one IT-Graph and is reset at the start of
    every query via :meth:`begin_query`.  ``is_passable`` answers whether a
    door can be crossed by a traveller who left the source at ``query_time``
    and has walked ``distance_from_source`` metres when reaching the door.
    """

    #: Human-readable method label used in benchmark reports ("ITG/S", ...).
    method_label: str = "abstract"

    def __init__(self, itgraph: ITGraph, walking_speed: float = WALKING_SPEED_MPS):
        if walking_speed <= 0:
            raise ValueError(f"walking speed must be positive, got {walking_speed}")
        self._itgraph = itgraph
        self._walking_speed = walking_speed
        self.ati_probes = 0
        self.snapshot_refreshes = 0
        self.membership_checks = 0

    # -- lifecycle -------------------------------------------------------------

    def begin_query(self, query_time: TimeOfDay) -> None:
        """Reset per-query state; called once by the engine before the search."""
        self.reset_counters()

    def reset_counters(self) -> None:
        """Zero the instrumentation counters."""
        self.ati_probes = 0
        self.snapshot_refreshes = 0
        self.membership_checks = 0

    # -- the check --------------------------------------------------------------

    def arrival_time(self, query_time: TimeOfDay, distance_from_source: float) -> TimeOfDay:
        """``t_arr = t + dist / velocity`` — shared by all strategies."""
        return query_time.add_seconds(distance_from_source / self._walking_speed)

    @abc.abstractmethod
    def is_passable(self, door_id: str, distance_from_source: float, query_time: TimeOfDay) -> bool:
        """Return ``True`` when ``door_id`` is open at its arrival time."""

    # -- reporting ----------------------------------------------------------------

    def counters(self) -> dict:
        """Snapshot of the instrumentation counters."""
        return {
            "ati_probes": self.ati_probes,
            "snapshot_refreshes": self.snapshot_refreshes,
            "membership_checks": self.membership_checks,
        }

    @property
    def itgraph(self) -> ITGraph:
        """The IT-Graph the strategy validates against."""
        return self._itgraph

    @property
    def walking_speed(self) -> float:
        """Walking speed in metres per second used to convert distances to times."""
        return self._walking_speed


class SynchronousCheck(TVCheckStrategy):
    """``Syn_Check`` (Algorithm 2): direct ATI lookup at the arrival time.

    Every call performs one binary search in the door's ATI array; the cost of
    a query therefore scales with the number of relaxations times the (small)
    logarithm of the ATI count.  The probe stays in float seconds throughout
    (:meth:`~repro.temporal.atis.ATISet.contains_seconds`) — no ``TimeOfDay``
    is allocated per check.
    """

    method_label = "ITG/S"

    def is_passable(self, door_id: str, distance_from_source: float, query_time: TimeOfDay) -> bool:
        t_arr_seconds = (
            as_time_of_day(query_time).seconds + distance_from_source / self._walking_speed
        )
        self.ati_probes += 1
        return self._itgraph.door_record(door_id).atis.contains_seconds(t_arr_seconds)


class AsynchronousCheck(TVCheckStrategy):
    """``Asyn_Check`` (Algorithm 4): lazily refreshed reduced-graph membership.

    The strategy holds the snapshot of the checkpoint interval containing the
    query time.  While arrival times stay inside that interval, a door is
    passable iff it survived the reduction (Algorithm 3) — a set-membership
    test, no ATI probing.  When an arrival time falls *after* the interval,
    the snapshot is advanced (``Graph_Update``) to the interval containing
    that arrival time, mirroring the paper's lazy update.  Because Dijkstra
    settles doors in non-decreasing distance order the snapshot only ever
    moves forward; the rare relaxation whose arrival time falls *before* the
    currently materialised interval (possible because neighbours of one door
    are relaxed in arbitrary order) falls back to a direct ATI probe so that
    ITG/A returns exactly the same answers as ITG/S.
    """

    method_label = "ITG/A"

    def __init__(
        self,
        itgraph: ITGraph,
        updater: Optional[GraphUpdater] = None,
        walking_speed: float = WALKING_SPEED_MPS,
    ):
        super().__init__(itgraph, walking_speed)
        self._updater = updater if updater is not None else GraphUpdater(itgraph)
        self._current: Optional[GraphSnapshot] = None

    @property
    def updater(self) -> GraphUpdater:
        """The snapshot factory/cache shared by queries using this strategy."""
        return self._updater

    @property
    def current_snapshot(self) -> Optional[GraphSnapshot]:
        """The snapshot currently in force for the running query (if any)."""
        return self._current

    def begin_query(self, query_time: TimeOfDay) -> None:
        super().begin_query(query_time)
        # Line 1 of Algorithm 4: "get the current G_IT and its corresponding cp".
        self._current = self._updater.graph_update(query_time)
        self.snapshot_refreshes += 1

    def is_passable(self, door_id: str, distance_from_source: float, query_time: TimeOfDay) -> bool:
        t_arr = self.arrival_time(query_time, distance_from_source)
        snapshot = self._current
        if snapshot is None:
            # Engine used without begin_query (direct strategy use in tests).
            snapshot = self._updater.graph_update(query_time)
            self._current = snapshot
            self.snapshot_refreshes += 1

        if snapshot.covers(t_arr):
            self.membership_checks += 1
            return snapshot.door_available(door_id)

        if t_arr >= snapshot.interval.end:
            # Arrival time crossed the next checkpoint: advance the snapshot
            # (Algorithm 4 lines 4-6) and answer from the refreshed topology.
            snapshot = self._updater.graph_update(t_arr)
            self._current = snapshot
            self.snapshot_refreshes += 1
            self.membership_checks += 1
            return snapshot.door_available(door_id)

        # Arrival time precedes the materialised interval (out-of-order
        # relaxation): answer exactly with a direct ATI probe.
        self.ati_probes += 1
        return self._itgraph.door_record(door_id).atis.contains(t_arr)


class StaticCheck(TVCheckStrategy):
    """Temporal-unaware check: every door is always passable.

    This models the pre-existing indoor shortest-path queries the paper's
    introduction argues against; it is used by the baseline
    :func:`repro.core.baselines.static_shortest_path` and by ablation
    benchmarks that isolate the cost of temporal checking.
    """

    method_label = "static"

    def is_passable(self, door_id: str, distance_from_source: float, query_time: TimeOfDay) -> bool:
        self.membership_checks += 1
        return True


class QueryTimeCheck(TVCheckStrategy):
    """Approximate check that probes ATIs at the *query* time instead of the
    arrival time.

    This corresponds to the tempting-but-wrong shortcut of filtering the graph
    once at ``t`` and running a static search on it; it is included as an
    ablation baseline to quantify how often the approximation returns paths
    that are invalid under the paper's arrival-time semantics.
    """

    method_label = "query-time-snapshot"

    def is_passable(self, door_id: str, distance_from_source: float, query_time: TimeOfDay) -> bool:
        self.ati_probes += 1
        return self._itgraph.door_record(door_id).atis.contains(query_time)


#: Accepted aliases per canonical TV-check method name.
_METHOD_ALIASES = {
    "synchronous": ("synchronous", "syn", "itg/s", "itgs", "s"),
    "asynchronous": ("asynchronous", "asyn", "itg/a", "itga", "a"),
    "static": ("static", "none", "ignore-time"),
    "query-time": ("query-time", "query_time", "snapshot-at-query-time"),
}

_ALIAS_TO_CANONICAL = {
    alias: canonical for canonical, aliases in _METHOD_ALIASES.items() for alias in aliases
}


def canonical_method(method: str) -> str:
    """Normalise a method name/alias to its canonical form.

    Shared by :func:`make_strategy` and the engine's compiled-path dispatch so
    both resolve (and reject) method names identically.
    """
    normalised = method.strip().lower()
    try:
        return _ALIAS_TO_CANONICAL[normalised]
    except KeyError:
        raise ValueError(f"unknown TV-check method {method!r}") from None


def make_strategy(
    method: str,
    itgraph: ITGraph,
    updater: Optional[GraphUpdater] = None,
    walking_speed: float = WALKING_SPEED_MPS,
) -> TVCheckStrategy:
    """Factory mapping method names to strategy instances.

    ``method`` accepts the canonical names ``"synchronous"`` / ``"asynchronous"``
    / ``"static"`` / ``"query-time"`` as well as the paper's labels ``"ITG/S"``
    and ``"ITG/A"`` (case-insensitive).
    """
    normalised = canonical_method(method)
    if normalised == "synchronous":
        return SynchronousCheck(itgraph, walking_speed)
    if normalised == "asynchronous":
        return AsynchronousCheck(itgraph, updater, walking_speed)
    if normalised == "static":
        return StaticCheck(itgraph, walking_speed)
    return QueryTimeCheck(itgraph, walking_speed)
