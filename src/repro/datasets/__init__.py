"""Built-in datasets: the paper's running example and small test venues."""

from repro.datasets.example_floorplan import (
    TABLE_I_ATIS,
    build_example_itgraph,
    build_example_schedule,
    build_example_space,
    example_fanout_endpoints,
    example_query_points,
)
from repro.datasets.simple_venues import (
    build_corridor_venue,
    build_two_room_venue,
)

__all__ = [
    "TABLE_I_ATIS",
    "build_example_space",
    "build_example_schedule",
    "build_example_itgraph",
    "example_query_points",
    "example_fanout_endpoints",
    "build_two_room_venue",
    "build_corridor_venue",
]
