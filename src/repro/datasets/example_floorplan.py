"""The paper's running example: the Figure 1 floor plan with the Table I ATIs.

The paper publishes the door schedule of the example venue (Table I) and a
handful of structural facts about its IT-Graph (Section II-A), but not the
coordinates of the floor plan.  This module therefore *reconstructs* a venue
that honours every fact the text states:

* 17 partitions ``v1``–``v17`` and 21 doors ``d1``–``d21`` with exactly the
  Table I Active Time Intervals;
* ``v1`` and ``v15`` are private partitions, ``d7`` is a private door;
* ``v1`` has the single door ``d1`` (its ``DM`` is trivial);
* ``P2D(v3) = P2D⊣(v3) = {d1, d2, d3, d5, d6}`` while
  ``P2D⊢(v3) = {d1, d2, d5, d6}`` — door ``d3`` is usable only from ``v3``
  into ``v16`` (``D2P⊣(d3) = v3``, ``D2P⊢(d3) = v16``);
* door ``d14`` is directional (the directionality example of Figure 1);
* Example 1 behaves as printed: ``ITSPQ(p3, p4, 9:00)`` has a shorter
  candidate route ``(p3, d15, d16, p4)`` that is rejected because it crosses
  the private partition ``v15`` and therefore answers ``(p3, d18, p4)``,
  while ``ITSPQ(p3, p4, 23:30)`` returns no route because ``d18`` (and every
  other door out of ``p3``'s partition) is closed by then.

The concrete coordinates are this reconstruction's own; absolute path lengths
therefore differ by a metre or two from the numbers quoted in Example 1, but
every qualitative statement of the example holds and is asserted by the test
suite.  The distance-matrix values shown for ``v16`` in Figure 2 (2 m / 4 m /
5 m) belong to the unpublished original geometry and are not reproduced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.itgraph import ITGraph, build_itgraph
from repro.geometry.point import IndoorPoint
from repro.indoor.builder import IndoorSpaceBuilder
from repro.indoor.entities import DoorType, PartitionCategory, PartitionType
from repro.indoor.space import IndoorSpace
from repro.temporal.schedule import DoorSchedule

#: Table I of the paper: the Active Time Intervals of every door.
TABLE_I_ATIS: Dict[str, List[Tuple[str, str]]] = {
    "d1": [("5:00", "23:00")],
    "d2": [("8:00", "16:00")],
    "d3": [("6:00", "23:00")],
    "d4": [("9:00", "18:00")],
    "d5": [("6:30", "23:00")],
    "d6": [("8:00", "16:00")],
    "d7": [("6:00", "23:30")],
    "d8": [("9:00", "18:00")],
    "d9": [("0:00", "6:00"), ("6:30", "23:00")],
    "d10": [("8:00", "16:00")],
    "d11": [("5:00", "23:00")],
    "d12": [("5:00", "23:00")],
    "d13": [("5:00", "17:00"), ("18:00", "23:00")],
    "d14": [("0:00", "24:00")],
    "d15": [("8:00", "16:00")],
    "d16": [("8:00", "17:00")],
    "d17": [("0:00", "24:00")],
    "d18": [("0:00", "23:00")],
    "d19": [("8:00", "16:00")],
    "d20": [("5:00", "23:00")],
    "d21": [("8:00", "16:00")],
}

# Reconstructed rectangular footprints: (min_x, min_y, max_x, max_y, type, category).
_PARTITIONS: Dict[str, Tuple[float, float, float, float, PartitionType, PartitionCategory]] = {
    # north rooms
    "v1": (0, 12, 6, 18, PartitionType.PRIVATE, PartitionCategory.OFFICE),
    "v2": (6, 12, 11, 18, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v4": (11, 12, 18, 18, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v7": (18, 12, 26, 18, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v8": (26, 12, 33, 18, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v11": (33, 12, 44, 18, PartitionType.PUBLIC, PartitionCategory.SHOP),
    # hallway band
    "v3": (0, 6, 11, 12, PartitionType.PUBLIC, PartitionCategory.HALLWAY),
    "v16": (11, 6, 22, 12, PartitionType.PUBLIC, PartitionCategory.HALLWAY),
    "v10": (22, 6, 33, 12, PartitionType.PUBLIC, PartitionCategory.HALLWAY),
    "v13": (33, 6, 44, 12, PartitionType.PUBLIC, PartitionCategory.HALLWAY),
    # south rooms
    "v5": (0, 0, 6, 6, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v6": (6, 0, 11, 6, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v9": (11, 0, 18, 6, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v12": (18, 0, 26, 6, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v14": (26, 0, 36, 6, PartitionType.PUBLIC, PartitionCategory.SHOP),
    "v15": (36, 0, 40, 6, PartitionType.PRIVATE, PartitionCategory.STORAGE),
    "v17": (40, 0, 44, 6, PartitionType.PUBLIC, PartitionCategory.SHOP),
}

# Doors: (x, y, partition_a, partition_b, door_type, bidirectional).
# Directional doors allow movement only from partition_a to partition_b.
_DOORS: Dict[str, Tuple[float, float, str, str, DoorType, bool]] = {
    "d1": (3.0, 12.0, "v1", "v3", DoorType.PRIVATE, True),
    "d2": (8.5, 12.0, "v2", "v3", DoorType.PUBLIC, True),
    "d3": (11.0, 9.0, "v3", "v16", DoorType.PUBLIC, False),
    "d4": (11.0, 15.0, "v2", "v4", DoorType.PUBLIC, True),
    "d5": (3.0, 6.0, "v3", "v5", DoorType.PUBLIC, True),
    "d6": (8.5, 6.0, "v3", "v6", DoorType.PUBLIC, True),
    "d7": (6.0, 3.0, "v5", "v6", DoorType.PRIVATE, True),
    "d8": (18.0, 15.0, "v4", "v7", DoorType.PUBLIC, True),
    "d9": (11.0, 3.0, "v6", "v9", DoorType.PUBLIC, True),
    "d10": (22.0, 9.0, "v16", "v10", DoorType.PUBLIC, True),
    "d11": (26.0, 15.0, "v7", "v8", DoorType.PUBLIC, True),
    "d12": (33.0, 9.0, "v10", "v13", DoorType.PUBLIC, True),
    "d13": (24.0, 6.0, "v10", "v12", DoorType.PUBLIC, True),
    "d14": (38.0, 12.0, "v13", "v11", DoorType.PUBLIC, False),
    "d15": (36.0, 1.0, "v14", "v15", DoorType.PRIVATE, True),
    "d16": (38.0, 6.0, "v15", "v13", DoorType.PRIVATE, True),
    "d17": (14.0, 12.0, "v16", "v4", DoorType.PUBLIC, True),
    "d18": (33.5, 6.0, "v14", "v13", DoorType.PUBLIC, True),
    "d19": (29.0, 6.0, "v14", "v10", DoorType.PUBLIC, True),
    "d20": (42.0, 6.0, "v13", "v17", DoorType.PUBLIC, True),
    "d21": (15.0, 6.0, "v16", "v9", DoorType.PUBLIC, True),
}


def build_example_space() -> IndoorSpace:
    """Build the reconstructed Figure 1 venue (17 partitions, 21 doors)."""
    builder = IndoorSpaceBuilder("icde2020-running-example")
    for partition_id, (min_x, min_y, max_x, max_y, p_type, category) in _PARTITIONS.items():
        builder.add_rectangle_partition(
            partition_id,
            min_x,
            min_y,
            max_x,
            max_y,
            floor=0,
            partition_type=p_type,
            category=category,
            name=partition_id,
        )
    for door_id, (x, y, part_a, part_b, d_type, bidirectional) in _DOORS.items():
        builder.add_door(
            door_id,
            IndoorPoint(x, y, 0),
            between=(part_a, part_b),
            door_type=d_type,
            bidirectional=bidirectional,
        )
    return builder.build()


def build_example_schedule() -> DoorSchedule:
    """The Table I door schedule."""
    return DoorSchedule.from_pairs(TABLE_I_ATIS)


def build_example_itgraph() -> ITGraph:
    """The IT-Graph of the running example (venue + Table I schedule)."""
    return build_itgraph(build_example_space(), build_example_schedule())


def example_query_points() -> Dict[str, IndoorPoint]:
    """The query points used by the paper's figures and Example 1.

    ``p3`` and ``p4`` are positioned so that Example 1 reproduces; ``p1`` and
    ``p2`` are two additional points (inside the private office ``v1`` and
    the shop ``v8``) used by the examples and tests to exercise the
    private-endpoint rule and cross-venue routes.
    """
    return {
        "p1": IndoorPoint(3.0, 15.0, 0),   # inside private partition v1
        "p2": IndoorPoint(29.0, 15.0, 0),  # inside shop v8
        "p3": IndoorPoint(35.0, 1.0, 0),   # inside shop v14
        "p4": IndoorPoint(39.0, 11.0, 0),  # inside hallway v13
    }


def example_fanout_endpoints(
    itgraph: Optional[ITGraph] = None,
) -> Tuple[List[IndoorPoint], List[IndoorPoint]]:
    """``(sources, targets)`` of the fan-out workload on the running example.

    Sources are the four query points; targets are the sources plus an
    interior point of every public partition, so each source fans out across
    the whole venue — the many-users-few-entrances shape batch execution is
    built for.  Shared by the batch throughput benchmark and the perf gate so
    both always measure the same workload.
    """
    if itgraph is None:
        itgraph = build_example_itgraph()
    points = example_query_points()
    sources = [points[name] for name in sorted(points)]
    targets = list(sources)
    for partition in itgraph.space.iter_partitions():
        record = itgraph.partition_record(partition.partition_id)
        if record.is_private or record.is_outdoor or partition.polygon is None:
            continue
        center = partition.polygon.bounding_box.center
        candidate = IndoorPoint(center.x, center.y, partition.floor)
        if partition.contains_point(candidate):
            targets.append(candidate)
    return sources, targets
