"""Tiny hand-made venues used by unit tests and docs.

These venues are deliberately minimal so that shortest paths, arrival times
and temporal prunings can be verified by hand arithmetic in the tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.itgraph import ITGraph, build_itgraph
from repro.geometry.point import IndoorPoint
from repro.indoor.builder import IndoorSpaceBuilder
from repro.indoor.entities import PartitionCategory, PartitionType
from repro.temporal.schedule import DoorSchedule


def build_two_room_venue(
    door_atis: Optional[Dict[str, list]] = None,
) -> Tuple[ITGraph, Dict[str, IndoorPoint]]:
    """Two 10 m x 10 m rooms side by side with a single connecting door.

    Layout (floor 0)::

        +----------+----------+
        |  room-a  d1  room-b |
        +----------+----------+

    The door ``d1`` sits at ``(10, 5)``.  Returns the IT-Graph and the two
    canonical query points ``a = (2, 5)`` and ``b = (18, 5)``; the only route
    between them is 16 m long (8 m to the door, 8 m onwards).

    ``door_atis`` optionally assigns ATIs (e.g. ``{"d1": [("8:00", "16:00")]}``);
    by default the door is always open.
    """
    builder = IndoorSpaceBuilder("two-room-venue")
    builder.add_rectangle_partition("room-a", 0, 0, 10, 10, category=PartitionCategory.SHOP)
    builder.add_rectangle_partition("room-b", 10, 0, 20, 10, category=PartitionCategory.SHOP)
    builder.add_door("d1", IndoorPoint(10, 5, 0), between=("room-a", "room-b"))
    space = builder.build()
    schedule = DoorSchedule.from_pairs(door_atis or {})
    itgraph = build_itgraph(space, schedule)
    points = {"a": IndoorPoint(2, 5, 0), "b": IndoorPoint(18, 5, 0)}
    return itgraph, points


def build_corridor_venue(
    door_atis: Optional[Dict[str, list]] = None,
    private_rooms: Tuple[str, ...] = (),
) -> Tuple[ITGraph, Dict[str, IndoorPoint]]:
    """A corridor with four rooms hanging off it and a shortcut door.

    Layout (floor 0, corridor 40 m x 4 m along the bottom)::

        +-------+-------+-------+-------+
        | room1 | room2 | room3 | room4 |
        +--c1---+--c2---+--c3---+--c4---+
        |          corridor             |
        +-------------------------------+

    plus a direct door ``s12`` in the wall between ``room1`` and ``room2``
    (a shortcut that avoids the corridor).  Useful for testing detours,
    private-partition pruning (pass ``private_rooms=("room2",)``) and
    temporal pruning of the shortcut.

    Returns the IT-Graph and query points centred in each room plus one in
    the corridor.
    """
    builder = IndoorSpaceBuilder("corridor-venue")
    builder.add_rectangle_partition("corridor", 0, 0, 40, 4, category=PartitionCategory.HALLWAY)
    room_bounds = {
        "room1": (0, 4, 10, 12),
        "room2": (10, 4, 20, 12),
        "room3": (20, 4, 30, 12),
        "room4": (30, 4, 40, 12),
    }
    for room, (min_x, min_y, max_x, max_y) in room_bounds.items():
        builder.add_rectangle_partition(
            room,
            min_x,
            min_y,
            max_x,
            max_y,
            partition_type=PartitionType.PRIVATE if room in private_rooms else PartitionType.PUBLIC,
            category=PartitionCategory.SHOP,
        )
    for index, room in enumerate(room_bounds, start=1):
        door_x = (index - 1) * 10 + 5
        builder.add_door(f"c{index}", IndoorPoint(door_x, 4, 0), between=("corridor", room))
    builder.add_door("s12", IndoorPoint(10, 8, 0), between=("room1", "room2"))
    space = builder.build()
    schedule = DoorSchedule.from_pairs(door_atis or {})
    itgraph = build_itgraph(space, schedule)
    points = {
        "room1": IndoorPoint(5, 8, 0),
        "room2": IndoorPoint(15, 8, 0),
        "room3": IndoorPoint(25, 8, 0),
        "room4": IndoorPoint(35, 8, 0),
        "corridor": IndoorPoint(20, 2, 0),
    }
    return itgraph, points
