"""Exception hierarchy for the ITSPQ reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidTimeError(ReproError, ValueError):
    """A time of day or time interval was malformed (e.g. outside a day)."""


class InvalidGeometryError(ReproError, ValueError):
    """A geometric primitive was constructed with inconsistent data."""


class TopologyError(ReproError):
    """The indoor space topology is inconsistent (unknown door/partition,
    dangling references, duplicate identifiers, ...)."""


class UnknownEntityError(TopologyError, KeyError):
    """A door or partition identifier was looked up but does not exist."""


class DuplicateEntityError(TopologyError, ValueError):
    """A door or partition identifier was registered twice."""


class QueryError(ReproError):
    """An ITSPQ query was malformed (e.g. points outside the indoor space)."""


class NoPathExistsError(QueryError):
    """Raised by APIs that must return a path when no valid route exists.

    The main query engine returns an empty :class:`~repro.core.query.QueryResult`
    instead of raising; this exception is used by convenience wrappers that
    promise a path.
    """


class SerializationError(ReproError, ValueError):
    """A document could not be parsed into library objects."""


class CorruptPayloadError(SerializationError):
    """A binary payload failed an integrity checksum.

    Raised by :mod:`repro.io.compiled_codec` when a section CRC or the
    whole-payload CRC does not match — bit-flips, partial overwrites and
    framing corruption, as opposed to mere truncation (which stays a plain
    :class:`SerializationError`).  Catching :class:`SerializationError`
    catches both.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A search exhausted its cooperative :class:`~repro.core.deadline.SearchDeadline`.

    Raised from inside the Dijkstra loops of the reference, compiled, batch
    and cache-recording tiers when the per-request time budget runs out.
    The search never returns a partial result: the exception is the *only*
    outcome of an expired deadline, and the engine/executor remains fully
    usable for the next query.  Also a :class:`TimeoutError`, so generic
    timeout handling catches it.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` query service."""


class ServiceOverloadedError(ServiceError):
    """The service shed a request because offered load exceeds capacity.

    The admission controller raises this when the bounded pending queue is
    full, and the cache-replay-only degradation rung raises it for queries
    whose shortest-path tree is not cached.  Maps to HTTP 429.
    """


class ServiceUnavailableError(ServiceError):
    """The service cannot take the request at all (draining, no venue, or no
    execution rung available).  Maps to HTTP 503."""


class ParallelExecutionError(ReproError):
    """Parallel batch execution lost a unit of work beyond its retry budget.

    Only raised when the in-process fallback rung of the degradation ladder
    is disabled (``in_process_fallback=False``); with the ladder enabled the
    executor recovers every chunk instead of raising.
    """


class WorkerCrashError(ParallelExecutionError):
    """A worker process died (or its pool broke) while it held a chunk."""


class ChunkTimeoutError(ParallelExecutionError):
    """A dispatched chunk exceeded the per-chunk timeout."""
