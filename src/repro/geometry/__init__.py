"""Geometric primitives used by the indoor-space model.

The indoor model of the paper (and of Lu et al., ICDE 2012, which it builds
on) only needs light-weight planar geometry: 2D points, floor-aware indoor
points, axis-aligned and general polygons for partitions, and Euclidean
distances for intra-partition movement.  This package provides those
primitives without any third-party dependency.

Public classes
--------------
:class:`~repro.geometry.point.Point2D`
    Immutable planar point.
:class:`~repro.geometry.point.IndoorPoint`
    Planar point tagged with a floor number — the coordinates used by doors,
    query points and partition anchors.
:class:`~repro.geometry.segment.LineSegment`
    Segment with length, midpoint, intersection and point-distance helpers.
:class:`~repro.geometry.polygon.Polygon`
    Simple polygon with area, centroid, containment and bounding box.
:class:`~repro.geometry.polygon.Rectangle`
    Axis-aligned rectangle convenience subclass (most synthetic partitions).
"""

from repro.geometry.point import IndoorPoint, Point2D
from repro.geometry.segment import LineSegment
from repro.geometry.polygon import BoundingBox, Polygon, Rectangle
from repro.geometry.measures import (
    euclidean_distance,
    indoor_euclidean_distance,
    manhattan_distance,
    path_length,
)

__all__ = [
    "Point2D",
    "IndoorPoint",
    "LineSegment",
    "Polygon",
    "Rectangle",
    "BoundingBox",
    "euclidean_distance",
    "indoor_euclidean_distance",
    "manhattan_distance",
    "path_length",
]
