"""Distance measures shared across the library.

The indoor model prices intra-partition movement with the Euclidean distance
between doors (partitions are obstacle-free after the hallway decomposition),
and paths are sequences of indoor points whose total length is the sum of the
per-leg distances.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.exceptions import InvalidGeometryError
from repro.geometry.point import IndoorPoint, Point2D

PointLike = Union[Point2D, IndoorPoint]


def _as_planar(point: PointLike) -> Point2D:
    if isinstance(point, IndoorPoint):
        return point.point2d
    return point


def euclidean_distance(a: PointLike, b: PointLike) -> float:
    """Planar Euclidean distance between two points in metres.

    ``IndoorPoint`` arguments must share a floor; mixing an ``IndoorPoint``
    with a ``Point2D`` treats the latter as lying on the same floor.
    """
    if isinstance(a, IndoorPoint) and isinstance(b, IndoorPoint) and a.floor != b.floor:
        raise InvalidGeometryError(
            f"Euclidean distance undefined across floors ({a.floor} vs {b.floor})"
        )
    return _as_planar(a).distance_to(_as_planar(b))


def indoor_euclidean_distance(a: IndoorPoint, b: IndoorPoint) -> float:
    """Euclidean distance between two indoor points on the same floor."""
    return a.distance_to(b)


def manhattan_distance(a: PointLike, b: PointLike) -> float:
    """L1 distance between two points; a cheap upper-bound-ish heuristic used
    by the synthetic query generator when scanning for target points."""
    if isinstance(a, IndoorPoint) and isinstance(b, IndoorPoint) and a.floor != b.floor:
        raise InvalidGeometryError(
            f"Manhattan distance undefined across floors ({a.floor} vs {b.floor})"
        )
    pa, pb = _as_planar(a), _as_planar(b)
    return abs(pa.x - pb.x) + abs(pa.y - pb.y)


def path_length(points: Sequence[PointLike]) -> float:
    """Total length of the polyline through ``points`` (0 for fewer than 2)."""
    if len(points) < 2:
        return 0.0
    total = 0.0
    for previous, current in zip(points, points[1:]):
        total += euclidean_distance(previous, current)
    return total
