"""Planar and floor-aware point primitives.

``Point2D`` is the basic immutable planar coordinate.  ``IndoorPoint`` adds a
floor number so that doors, partitions and query points in a multi-floor
venue can be located unambiguously; two indoor points on different floors
have no finite direct Euclidean distance (vertical movement happens only
through staircase partitions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.exceptions import InvalidGeometryError


@dataclass(frozen=True, order=True)
class Point2D:
    """An immutable point in the plane, in metres.

    Supports tuple-like unpacking (``x, y = point``), vector-style addition
    and subtraction and scalar scaling, which keeps the synthetic floorplan
    generator readable.
    """

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise InvalidGeometryError(f"point coordinates must be finite, got ({self.x}, {self.y})")

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def distance_to(self, other: "Point2D") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point2D") -> float:
        """L1 (city-block) distance to ``other`` in metres."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: "Point2D") -> "Point2D":
        """Return the midpoint of the segment between this point and ``other``."""
        return Point2D((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point2D":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point2D(self.x + dx, self.y + dy)

    def __add__(self, other: "Point2D") -> "Point2D":
        return Point2D(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point2D") -> "Point2D":
        return Point2D(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point2D":
        """Return this point scaled about the origin by ``factor``."""
        return Point2D(self.x * factor, self.y * factor)

    def almost_equal(self, other: "Point2D", tolerance: float = 1e-9) -> bool:
        """Return ``True`` when both coordinates differ by at most ``tolerance``."""
        return abs(self.x - other.x) <= tolerance and abs(self.y - other.y) <= tolerance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Point2D({self.x:g}, {self.y:g})"


@dataclass(frozen=True, order=True)
class IndoorPoint:
    """A planar point annotated with the floor it lies on.

    ``floor`` is an integer floor index (ground floor is 0 in the synthetic
    venues).  Horizontal distance is only defined between points on the same
    floor; the query engine routes vertical movement through staircase
    partitions whose stairway length is part of the distance matrix.
    """

    x: float
    y: float
    floor: int = 0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise InvalidGeometryError(f"point coordinates must be finite, got ({self.x}, {self.y})")
        if not isinstance(self.floor, int):
            raise InvalidGeometryError(f"floor must be an integer, got {self.floor!r}")

    @property
    def point2d(self) -> Point2D:
        """The planar projection of this indoor point."""
        return Point2D(self.x, self.y)

    def as_tuple(self) -> Tuple[float, float, int]:
        """Return ``(x, y, floor)``."""
        return (self.x, self.y, self.floor)

    def same_floor(self, other: "IndoorPoint") -> bool:
        """Return ``True`` when both points lie on the same floor."""
        return self.floor == other.floor

    def distance_to(self, other: "IndoorPoint") -> float:
        """Planar Euclidean distance to ``other``.

        Raises
        ------
        InvalidGeometryError
            If the points are on different floors — direct distance between
            floors is undefined in the indoor model.
        """
        if self.floor != other.floor:
            raise InvalidGeometryError(
                f"direct distance undefined across floors ({self.floor} vs {other.floor})"
            )
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "IndoorPoint":
        """Return a copy of this point shifted by ``(dx, dy)`` on the same floor."""
        return IndoorPoint(self.x + dx, self.y + dy, self.floor)

    def on_floor(self, floor: int) -> "IndoorPoint":
        """Return a copy of this point relocated to ``floor``."""
        return IndoorPoint(self.x, self.y, floor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndoorPoint({self.x:g}, {self.y:g}, floor={self.floor})"
