"""Simple polygons and axis-aligned rectangles for indoor partitions.

The paper decomposes irregular hallways into "smaller, regular partitions",
so the synthetic venues are built almost entirely from rectangles; the
general :class:`Polygon` is nevertheless provided so hand-modelled venues
(such as the Figure 1 running example) can use arbitrary simple shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.exceptions import InvalidGeometryError
from repro.geometry.point import Point2D
from repro.geometry.segment import LineSegment


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise InvalidGeometryError(
                f"invalid bounding box: ({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point2D:
        return Point2D((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point2D, tolerance: float = 1e-9) -> bool:
        """Return ``True`` when ``point`` lies inside or on the box boundary."""
        return (
            self.min_x - tolerance <= point.x <= self.max_x + tolerance
            and self.min_y - tolerance <= point.y <= self.max_y + tolerance
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Return ``True`` when the two boxes overlap (boundary contact counts)."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )


class Polygon:
    """A simple polygon given by its vertices in order (no self-intersections
    are checked; callers are expected to provide simple rings).

    The vertex ring may be given in either orientation; ``area`` is always
    positive.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Sequence[Point2D]):
        points = [v if isinstance(v, Point2D) else Point2D(*v) for v in vertices]
        if len(points) < 3:
            raise InvalidGeometryError(f"a polygon needs at least 3 vertices, got {len(points)}")
        # Drop an explicitly closed ring's duplicate last vertex.
        if points[0].almost_equal(points[-1]):
            points = points[:-1]
        if len(points) < 3:
            raise InvalidGeometryError("degenerate polygon after removing closing vertex")
        self._vertices: Tuple[Point2D, ...] = tuple(points)

    @property
    def vertices(self) -> Tuple[Point2D, ...]:
        """The polygon vertices, in their original order, not explicitly closed."""
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def edges(self) -> List[LineSegment]:
        """Return the boundary edges of the polygon, in order."""
        result = []
        n = len(self._vertices)
        for i in range(n):
            result.append(LineSegment(self._vertices[i], self._vertices[(i + 1) % n]))
        return result

    @property
    def signed_area(self) -> float:
        """Shoelace signed area (positive when the ring is counter-clockwise)."""
        total = 0.0
        n = len(self._vertices)
        for i in range(n):
            a = self._vertices[i]
            b = self._vertices[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return total / 2.0

    @property
    def area(self) -> float:
        """Absolute area of the polygon in square metres."""
        return abs(self.signed_area)

    @property
    def perimeter(self) -> float:
        """Total boundary length in metres."""
        return sum(edge.length for edge in self.edges())

    @property
    def centroid(self) -> Point2D:
        """Area centroid of the polygon (vertex average for degenerate areas)."""
        signed = self.signed_area
        if abs(signed) < 1e-12:
            xs = sum(v.x for v in self._vertices) / len(self._vertices)
            ys = sum(v.y for v in self._vertices) / len(self._vertices)
            return Point2D(xs, ys)
        cx = cy = 0.0
        n = len(self._vertices)
        for i in range(n):
            a = self._vertices[i]
            b = self._vertices[(i + 1) % n]
            cross = a.x * b.y - b.x * a.y
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Point2D(cx * factor, cy * factor)

    @property
    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of the polygon."""
        xs = [v.x for v in self._vertices]
        ys = [v.y for v in self._vertices]
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    def contains(self, point: Point2D, tolerance: float = 1e-9) -> bool:
        """Return ``True`` when ``point`` is inside the polygon or on its boundary.

        Uses the even-odd ray-casting rule with an explicit boundary check so
        that door positions, which sit exactly on partition walls, count as
        contained in both adjacent partitions.
        """
        if not self.bounding_box.contains(point, tolerance):
            return False
        for edge in self.edges():
            if edge.contains_point(point, tolerance):
                return True
        inside = False
        n = len(self._vertices)
        j = n - 1
        for i in range(n):
            vi, vj = self._vertices[i], self._vertices[j]
            intersects = (vi.y > point.y) != (vj.y > point.y)
            if intersects:
                x_cross = (vj.x - vi.x) * (point.y - vi.y) / (vj.y - vi.y) + vi.x
                if point.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def distance_to_point(self, point: Point2D) -> float:
        """Distance from ``point`` to the polygon (0 when inside)."""
        if self.contains(point):
            return 0.0
        return min(edge.distance_to_point(point) for edge in self.edges())

    def translated(self, dx: float, dy: float) -> "Polygon":
        """Return a copy of the polygon shifted by ``(dx, dy)``."""
        return Polygon([v.translated(dx, dy) for v in self._vertices])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polygon({len(self._vertices)} vertices, area={self.area:.1f} m^2)"


class Rectangle(Polygon):
    """Axis-aligned rectangle — the work-horse shape of the synthetic venues."""

    __slots__ = ("_min_x", "_min_y", "_max_x", "_max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float):
        if min_x >= max_x or min_y >= max_y:
            raise InvalidGeometryError(
                f"rectangle must have positive extent, got ({min_x}, {min_y}, {max_x}, {max_y})"
            )
        super().__init__(
            [
                Point2D(min_x, min_y),
                Point2D(max_x, min_y),
                Point2D(max_x, max_y),
                Point2D(min_x, max_y),
            ]
        )
        self._min_x, self._min_y = min_x, min_y
        self._max_x, self._max_y = max_x, max_y

    @classmethod
    def from_origin_size(cls, origin: Point2D, width: float, height: float) -> "Rectangle":
        """Build a rectangle from its lower-left corner and its extents."""
        return cls(origin.x, origin.y, origin.x + width, origin.y + height)

    @property
    def width(self) -> float:
        return self._max_x - self._min_x

    @property
    def height(self) -> float:
        return self._max_y - self._min_y

    @property
    def min_corner(self) -> Point2D:
        return Point2D(self._min_x, self._min_y)

    @property
    def max_corner(self) -> Point2D:
        return Point2D(self._max_x, self._max_y)

    def contains(self, point: Point2D, tolerance: float = 1e-9) -> bool:
        """Fast axis-aligned containment test (boundary counts as inside)."""
        return (
            self._min_x - tolerance <= point.x <= self._max_x + tolerance
            and self._min_y - tolerance <= point.y <= self._max_y + tolerance
        )

    def shared_wall(self, other: "Rectangle", tolerance: float = 1e-9) -> "LineSegment | None":
        """Return the wall segment shared by two touching rectangles, if any.

        Used by the floorplan generator to decide where a door between two
        adjacent partitions can be placed.  Returns ``None`` when the two
        rectangles do not share a wall of positive length.
        """
        # Vertical shared wall.
        if abs(self._max_x - other._min_x) <= tolerance or abs(other._max_x - self._min_x) <= tolerance:
            x = self._max_x if abs(self._max_x - other._min_x) <= tolerance else self._min_x
            lo = max(self._min_y, other._min_y)
            hi = min(self._max_y, other._max_y)
            if hi - lo > tolerance:
                return LineSegment(Point2D(x, lo), Point2D(x, hi))
        # Horizontal shared wall.
        if abs(self._max_y - other._min_y) <= tolerance or abs(other._max_y - self._min_y) <= tolerance:
            y = self._max_y if abs(self._max_y - other._min_y) <= tolerance else self._min_y
            lo = max(self._min_x, other._min_x)
            hi = min(self._max_x, other._max_x)
            if hi - lo > tolerance:
                return LineSegment(Point2D(lo, y), Point2D(hi, y))
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Rectangle(({self._min_x:g}, {self._min_y:g}) .. ({self._max_x:g}, {self._max_y:g}))"
        )


def convex_hull(points: Iterable[Point2D]) -> Polygon:
    """Return the convex hull of a set of points as a polygon.

    Andrew's monotone chain; used by the floorplan generator to derive an
    outline partition around irregular groups of shops.
    """
    unique = sorted(set((p.x, p.y) for p in points))
    if len(unique) < 3:
        raise InvalidGeometryError("convex hull needs at least 3 distinct points")

    def cross(o: Tuple[float, float], a: Tuple[float, float], b: Tuple[float, float]) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: List[Tuple[float, float]] = []
    for p in unique:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Tuple[float, float]] = []
    for p in reversed(unique):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        raise InvalidGeometryError("points are collinear; hull is degenerate")
    return Polygon([Point2D(x, y) for x, y in hull])
