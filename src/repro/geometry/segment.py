"""Line-segment primitive with the small set of operations the indoor model
needs: length, midpoint, point projection/distance and segment intersection
(used by the floorplan generator to place doors on shared walls)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import InvalidGeometryError
from repro.geometry.point import Point2D


@dataclass(frozen=True)
class LineSegment:
    """A segment between two planar points."""

    start: Point2D
    end: Point2D

    def __post_init__(self) -> None:
        if not isinstance(self.start, Point2D) or not isinstance(self.end, Point2D):
            raise InvalidGeometryError("segment endpoints must be Point2D instances")

    @property
    def length(self) -> float:
        """Euclidean length of the segment in metres."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point2D:
        """Midpoint of the segment."""
        return self.start.midpoint(self.end)

    @property
    def is_degenerate(self) -> bool:
        """``True`` when the two endpoints coincide."""
        return self.length == 0.0

    def point_at(self, fraction: float) -> Point2D:
        """Return the point at ``fraction`` of the way from ``start`` to ``end``.

        ``fraction`` may lie outside ``[0, 1]``, in which case the returned
        point lies on the supporting line beyond the segment.
        """
        return Point2D(
            self.start.x + fraction * (self.end.x - self.start.x),
            self.start.y + fraction * (self.end.y - self.start.y),
        )

    def projection_fraction(self, point: Point2D) -> float:
        """Return the parameter of the orthogonal projection of ``point``.

        The returned value is the fraction ``t`` such that ``point_at(t)`` is
        the closest point on the *supporting line*; it is clamped by callers
        that need the closest point on the segment itself.
        """
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        denom = dx * dx + dy * dy
        if denom == 0.0:
            return 0.0
        return ((point.x - self.start.x) * dx + (point.y - self.start.y) * dy) / denom

    def closest_point_to(self, point: Point2D) -> Point2D:
        """Return the point on the segment closest to ``point``."""
        fraction = min(1.0, max(0.0, self.projection_fraction(point)))
        return self.point_at(fraction)

    def distance_to_point(self, point: Point2D) -> float:
        """Euclidean distance from ``point`` to the segment."""
        return point.distance_to(self.closest_point_to(point))

    def contains_point(self, point: Point2D, tolerance: float = 1e-9) -> bool:
        """Return ``True`` when ``point`` lies on the segment within ``tolerance``."""
        return self.distance_to_point(point) <= tolerance

    def intersection(self, other: "LineSegment", tolerance: float = 1e-12) -> Optional[Point2D]:
        """Return the intersection point of two segments, or ``None``.

        Collinear overlapping segments return the midpoint of the overlap;
        parallel non-intersecting segments return ``None``.
        """
        p, r = self.start, Point2D(self.end.x - self.start.x, self.end.y - self.start.y)
        q, s = other.start, Point2D(other.end.x - other.start.x, other.end.y - other.start.y)
        r_cross_s = r.x * s.y - r.y * s.x
        q_minus_p = Point2D(q.x - p.x, q.y - p.y)
        qp_cross_r = q_minus_p.x * r.y - q_minus_p.y * r.x

        if abs(r_cross_s) <= tolerance:
            if abs(qp_cross_r) > tolerance:
                return None  # parallel, non-collinear
            return self._collinear_overlap_midpoint(other)

        t = (q_minus_p.x * s.y - q_minus_p.y * s.x) / r_cross_s
        u = qp_cross_r / r_cross_s
        if -tolerance <= t <= 1 + tolerance and -tolerance <= u <= 1 + tolerance:
            return self.point_at(t)
        return None

    def _collinear_overlap_midpoint(self, other: "LineSegment") -> Optional[Point2D]:
        """Midpoint of the overlap of two collinear segments, or ``None``."""
        # Project everything on the dominant axis of this segment.
        use_x = abs(self.end.x - self.start.x) >= abs(self.end.y - self.start.y)

        def key(point: Point2D) -> float:
            return point.x if use_x else point.y

        lo_self, hi_self = sorted((self.start, self.end), key=key)
        lo_other, hi_other = sorted((other.start, other.end), key=key)
        lo = lo_self if key(lo_self) >= key(lo_other) else lo_other
        hi = hi_self if key(hi_self) <= key(hi_other) else hi_other
        if key(lo) > key(hi):
            return None
        return lo.midpoint(hi)

    def reversed(self) -> "LineSegment":
        """Return the segment with its endpoints swapped."""
        return LineSegment(self.end, self.start)

    def angle(self) -> float:
        """Return the angle of the segment direction in radians, in ``(-pi, pi]``."""
        return math.atan2(self.end.y - self.start.y, self.end.x - self.start.x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LineSegment({self.start!r} -> {self.end!r})"
