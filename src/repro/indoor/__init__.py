"""Indoor-space substrate: partitions, doors, topology mappings and distances.

This package implements the indoor accessibility model the paper builds on
(Lu, Cao and Jensen, ICDE 2012): a venue is a set of *partitions* (rooms,
hallway cells, staircases) connected through *doors*; a door may be
directional, i.e. usable only from one side (e.g. exit-only security doors).

The central topology mappings of that model — and of the paper's Section
II-A — are provided by :class:`~repro.indoor.topology.Topology`:

``P2D(v)``
    doors attached to partition ``v``.
``D2P(d)``
    partitions connected by door ``d``.
``P2D_enterable(v)`` / ``P2D_leaveable(v)``
    doors through which one can enter / leave ``v`` (``P2D⊢`` / ``P2D⊣``).
``D2P_enterable(d)`` / ``D2P_leaveable(d)``
    partitions one can enter / leave through ``d`` (``D2P⊢`` / ``D2P⊣``).

Intra-partition movement is priced by per-partition door-to-door distance
matrices (:mod:`repro.indoor.distance`), the ``DM`` component of the
IT-Graph's partition table.
"""

from repro.indoor.entities import (
    Door,
    DoorType,
    Floor,
    Partition,
    PartitionCategory,
    PartitionType,
    OUTDOOR_PARTITION_ID,
)
from repro.indoor.space import Connection, IndoorSpace
from repro.indoor.topology import Topology
from repro.indoor.distance import DistanceMatrix, build_distance_matrices, point_to_door_distance
from repro.indoor.builder import IndoorSpaceBuilder

__all__ = [
    "Door",
    "DoorType",
    "Partition",
    "PartitionType",
    "PartitionCategory",
    "Floor",
    "OUTDOOR_PARTITION_ID",
    "IndoorSpace",
    "Connection",
    "Topology",
    "DistanceMatrix",
    "build_distance_matrices",
    "point_to_door_distance",
    "IndoorSpaceBuilder",
]
