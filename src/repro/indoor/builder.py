"""Fluent builder for indoor spaces.

Hand-modelling a venue (the Figure 1 running example, the examples in
``examples/``) involves a lot of repetitive partition/door/connection
plumbing; ``IndoorSpaceBuilder`` wraps it in a compact, chainable API and
adds conveniences such as rectangle partitions, doors placed on shared walls
and staircases between floors.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.constants import DEFAULT_STAIRWAY_LENGTH_M
from repro.exceptions import TopologyError
from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Polygon, Rectangle
from repro.indoor.entities import (
    Door,
    DoorType,
    OUTDOOR_PARTITION_ID,
    Partition,
    PartitionCategory,
    PartitionType,
)
from repro.indoor.space import IndoorSpace


class IndoorSpaceBuilder:
    """Chainable construction helper for :class:`~repro.indoor.space.IndoorSpace`."""

    def __init__(self, name: str = "indoor-space"):
        self._space = IndoorSpace(name)
        self._has_outdoors = False

    # -- partitions -----------------------------------------------------------------

    def add_partition(
        self,
        partition_id: str,
        polygon: Optional[Polygon] = None,
        floor: int = 0,
        partition_type: PartitionType = PartitionType.PUBLIC,
        category: PartitionCategory = PartitionCategory.OTHER,
        name: Optional[str] = None,
    ) -> "IndoorSpaceBuilder":
        """Add a general partition."""
        self._space.add_partition(
            Partition(
                partition_id=partition_id,
                polygon=polygon,
                floor=floor,
                partition_type=partition_type,
                category=category,
                name=name,
            )
        )
        return self

    def add_rectangle_partition(
        self,
        partition_id: str,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        floor: int = 0,
        partition_type: PartitionType = PartitionType.PUBLIC,
        category: PartitionCategory = PartitionCategory.OTHER,
        name: Optional[str] = None,
    ) -> "IndoorSpaceBuilder":
        """Add an axis-aligned rectangular partition (the common case)."""
        return self.add_partition(
            partition_id,
            polygon=Rectangle(min_x, min_y, max_x, max_y),
            floor=floor,
            partition_type=partition_type,
            category=category,
            name=name,
        )

    def add_private_partition(
        self,
        partition_id: str,
        polygon: Optional[Polygon] = None,
        floor: int = 0,
        category: PartitionCategory = PartitionCategory.OFFICE,
        name: Optional[str] = None,
    ) -> "IndoorSpaceBuilder":
        """Add a private (PRP) partition."""
        return self.add_partition(
            partition_id,
            polygon=polygon,
            floor=floor,
            partition_type=PartitionType.PRIVATE,
            category=category,
            name=name,
        )

    def add_outdoors(self) -> "IndoorSpaceBuilder":
        """Add the outdoor pseudo-partition (``v0`` in the paper's IT-Graph)."""
        if not self._has_outdoors:
            self._space.add_partition(
                Partition(
                    partition_id=OUTDOOR_PARTITION_ID,
                    polygon=None,
                    floor=0,
                    partition_type=PartitionType.PUBLIC,
                    category=PartitionCategory.OUTDOOR,
                    name="outdoors",
                )
            )
            self._has_outdoors = True
        return self

    # -- doors -----------------------------------------------------------------------

    def add_door(
        self,
        door_id: str,
        position: IndoorPoint,
        between: Tuple[str, str],
        door_type: DoorType = DoorType.PUBLIC,
        bidirectional: bool = True,
    ) -> "IndoorSpaceBuilder":
        """Add a door and connect the two partitions it separates.

        ``between`` is ``(from_partition, to_partition)``; for bidirectional
        doors the order is irrelevant, for directional doors movement is only
        allowed from the first to the second.
        """
        self._space.add_door(Door(door_id=door_id, position=position, door_type=door_type))
        from_partition, to_partition = between
        self._space.connect(door_id, from_partition, to_partition, bidirectional=bidirectional)
        return self

    def add_door_to_outdoors(
        self,
        door_id: str,
        position: IndoorPoint,
        partition_id: str,
        door_type: DoorType = DoorType.PUBLIC,
        bidirectional: bool = True,
    ) -> "IndoorSpaceBuilder":
        """Add an exterior door between ``partition_id`` and the outdoors."""
        self.add_outdoors()
        return self.add_door(
            door_id,
            position,
            between=(OUTDOOR_PARTITION_ID, partition_id),
            door_type=door_type,
            bidirectional=bidirectional,
        )

    def add_wall_door(
        self,
        door_id: str,
        partition_a: str,
        partition_b: str,
        door_type: DoorType = DoorType.PUBLIC,
        bidirectional: bool = True,
        fraction: float = 0.5,
    ) -> "IndoorSpaceBuilder":
        """Add a door on the shared wall of two rectangular partitions.

        The door is placed at ``fraction`` along the shared wall.  Raises
        :class:`TopologyError` when the two partitions do not share a wall —
        that usually indicates a typo in the venue description.
        """
        rect_a = self._space.partition(partition_a).polygon
        rect_b = self._space.partition(partition_b).polygon
        if not isinstance(rect_a, Rectangle) or not isinstance(rect_b, Rectangle):
            raise TopologyError("add_wall_door requires rectangular partitions")
        wall = rect_a.shared_wall(rect_b)
        if wall is None:
            raise TopologyError(
                f"partitions {partition_a!r} and {partition_b!r} do not share a wall"
            )
        floor = self._space.partition(partition_a).floor
        position = wall.point_at(fraction)
        return self.add_door(
            door_id,
            IndoorPoint(position.x, position.y, floor),
            between=(partition_a, partition_b),
            door_type=door_type,
            bidirectional=bidirectional,
        )

    # -- staircases --------------------------------------------------------------------

    def add_staircase(
        self,
        staircase_id: str,
        lower_floor: int,
        upper_floor: int,
        lower_door: Tuple[str, IndoorPoint, str],
        upper_door: Tuple[str, IndoorPoint, str],
        stairway_length: float = DEFAULT_STAIRWAY_LENGTH_M,
        footprint: Optional[Polygon] = None,
    ) -> "IndoorSpaceBuilder":
        """Add a staircase partition connecting two floors.

        ``lower_door`` and ``upper_door`` are ``(door_id, position, hallway_partition_id)``
        triples describing the doors at the bottom and top of the stairs and
        the hallway partitions they open into.  The walking distance between
        the two staircase doors is ``stairway_length`` (20 m in the paper's
        synthetic space), registered as an explicit override.
        """
        lower_door_id, lower_position, lower_hallway = lower_door
        upper_door_id, upper_position, upper_hallway = upper_door
        staircase = Partition(
            partition_id=staircase_id,
            polygon=footprint,
            floor=lower_floor,
            partition_type=PartitionType.PUBLIC,
            category=PartitionCategory.STAIRCASE,
            spans_floors=(lower_floor, upper_floor),
            distance_overrides={frozenset((lower_door_id, upper_door_id)): stairway_length},
        )
        self._space.add_partition(staircase)
        self.add_door(lower_door_id, lower_position, between=(lower_hallway, staircase_id))
        self.add_door(upper_door_id, upper_position, between=(staircase_id, upper_hallway))
        return self

    # -- finishing --------------------------------------------------------------------------

    @property
    def space(self) -> IndoorSpace:
        """The space under construction (usable before :meth:`build` for lookups)."""
        return self._space

    def build(self, validate: bool = True) -> IndoorSpace:
        """Return the constructed space, optionally validating its consistency."""
        if validate:
            self._space.validate()
        return self._space
