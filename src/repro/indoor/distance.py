"""Intra-partition distances and the per-partition distance matrix ``DM``.

The IT-Graph's partition table stores, for every partition, a matrix of
walking distances between each pair of its doors (the ``DM`` of the paper's
Section II-A, inherited from Lu et al.).  After hallway decomposition the
partitions are obstacle-free, so the door-to-door distance inside a partition
is the planar Euclidean distance — except for staircases, whose stairway
length is an explicit override on the partition.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.exceptions import UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.indoor.entities import Door, Partition
from repro.indoor.space import IndoorSpace


class DistanceMatrix:
    """Symmetric door-to-door distances inside one partition.

    The matrix is stored sparsely as a mapping from unordered door pairs to
    metres.  Distances from a door to itself are implicitly zero.  The paper
    sets ``DM`` to ``null`` for single-door partitions; here the matrix is
    simply empty in that case, which behaves identically.
    """

    __slots__ = ("partition_id", "_distances", "_doors")

    def __init__(self, partition_id: str, distances: Mapping[FrozenSet[str], float], doors: Iterable[str]):
        self.partition_id = partition_id
        self._distances: Dict[FrozenSet[str], float] = dict(distances)
        self._doors: Tuple[str, ...] = tuple(sorted(set(doors)))

    @property
    def doors(self) -> Tuple[str, ...]:
        """Doors covered by this matrix, sorted by identifier."""
        return self._doors

    @property
    def is_trivial(self) -> bool:
        """``True`` for partitions with at most one door (``DM = null`` in the paper)."""
        return len(self._doors) <= 1

    def distance(self, door_a: str, door_b: str) -> float:
        """Walking distance between two doors of the partition, in metres.

        Raises
        ------
        UnknownEntityError
            If either door does not belong to the partition.
        """
        if door_a == door_b:
            if door_a not in self._doors:
                raise UnknownEntityError(
                    f"door {door_a!r} is not a door of partition {self.partition_id!r}"
                )
            return 0.0
        key = frozenset((door_a, door_b))
        try:
            return self._distances[key]
        except KeyError as exc:
            raise UnknownEntityError(
                f"no intra-partition distance between {door_a!r} and {door_b!r} "
                f"in partition {self.partition_id!r}"
            ) from exc

    def __contains__(self, pair: Tuple[str, str]) -> bool:
        door_a, door_b = pair
        if door_a == door_b:
            return door_a in self._doors
        return frozenset(pair) in self._distances

    def __len__(self) -> int:
        return len(self._distances)

    def pairs(self) -> Iterable[Tuple[str, str, float]]:
        """Iterate over ``(door_a, door_b, distance)`` triples (unordered pairs)."""
        for key, value in self._distances.items():
            door_a, door_b = sorted(key)
            yield door_a, door_b, value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceMatrix({self.partition_id!r}, {len(self._doors)} doors)"


def intra_partition_distance(partition: Partition, door_a: Door, door_b: Door) -> float:
    """Walking distance between two doors of ``partition``.

    Explicit overrides on the partition (staircases) win; otherwise the planar
    Euclidean distance between the door positions is used.  Doors of a
    staircase partition lie on different floors, so the override is mandatory
    there — a missing override raises ``UnknownEntityError``.
    """
    override = partition.override_distance(door_a.door_id, door_b.door_id)
    if override is not None:
        return override
    if door_a.door_id == door_b.door_id:
        return 0.0
    if door_a.position.floor != door_b.position.floor:
        raise UnknownEntityError(
            f"doors {door_a.door_id!r} and {door_b.door_id!r} lie on different floors of "
            f"partition {partition.partition_id!r} and no stairway length override is registered"
        )
    return door_a.position.distance_to(door_b.position)


def build_distance_matrix(space: IndoorSpace, partition_id: str) -> DistanceMatrix:
    """Build the ``DM`` of one partition from the space geometry."""
    partition = space.partition(partition_id)
    door_ids = sorted(space.topology.doors_of(partition_id))
    distances: Dict[FrozenSet[str], float] = {}
    for i, door_a_id in enumerate(door_ids):
        door_a = space.door(door_a_id)
        for door_b_id in door_ids[i + 1 :]:
            door_b = space.door(door_b_id)
            distances[frozenset((door_a_id, door_b_id))] = intra_partition_distance(
                partition, door_a, door_b
            )
    return DistanceMatrix(partition_id, distances, door_ids)


def build_distance_matrices(space: IndoorSpace) -> Dict[str, DistanceMatrix]:
    """Build the distance matrices of every partition of ``space``."""
    return {pid: build_distance_matrix(space, pid) for pid in space.partition_ids()}


def point_to_door_distance(
    space: IndoorSpace,
    point: IndoorPoint,
    door_id: str,
    partition: Optional[Partition] = None,
) -> float:
    """Distance from an arbitrary indoor point to a door of its partition.

    This is the ``|d_i, p_t|_E`` term of Algorithm 1: the final hop from the
    last door into the target's partition (and symmetrically the first hop
    from the source point to a leaveable door).  The point and the door must
    share a partition; movement inside the partition is obstacle-free.
    """
    if partition is None:
        partition = space.locate(point)
    door = space.door(door_id)
    if door_id not in space.topology.doors_of(partition.partition_id):
        raise UnknownEntityError(
            f"door {door_id!r} is not a door of partition {partition.partition_id!r}"
        )
    if door.position.floor != point.floor:
        # Points inside a staircase partition reaching the door on the other
        # floor walk the stairway; approximate by the stairway length if an
        # override exists for any same-partition pair, otherwise fail loudly.
        raise UnknownEntityError(
            f"point on floor {point.floor} cannot reach door {door_id!r} on floor "
            f"{door.position.floor} without an explicit stairway distance"
        )
    return point.point2d.distance_to(door.position.point2d)
