"""Indoor entities: doors, partitions and floors.

Terminology follows the paper:

* a **partition** is an indoor unit of space (a shop, an office, a hallway
  cell after decomposition, a staircase); it is either *public* (``PBP``) or
  *private* (``PRP``) — valid ITSPQ paths never cross private partitions other
  than those containing the query endpoints;
* a **door** connects two partitions (or a partition and the outdoors); it is
  either *public* (``PBD``) or *private* (``PRD``) and may be usable in only
  one direction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.exceptions import InvalidGeometryError
from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Polygon

#: Identifier of the implicit outdoor pseudo-partition (``v0`` in the paper's
#: IT-Graph figure).  Venues that model exterior doors connect them to this
#: partition; the query engine never routes *through* the outdoors.
OUTDOOR_PARTITION_ID = "outdoors"


class PartitionType(enum.Enum):
    """Partition access class: public (PBP) or private (PRP)."""

    PUBLIC = "PBP"
    PRIVATE = "PRP"

    @property
    def is_private(self) -> bool:
        return self is PartitionType.PRIVATE


class DoorType(enum.Enum):
    """Door access class: public (PBD) or private (PRD).

    A private door typically leads into a private partition (staff doors,
    security doors); the distinction is carried in the IT-Graph's door table
    so downstream applications can filter on it.
    """

    PUBLIC = "PBD"
    PRIVATE = "PRD"

    @property
    def is_private(self) -> bool:
        return self is DoorType.PRIVATE


class PartitionCategory(enum.Enum):
    """Functional category of a partition, used by the synthetic generator.

    The category does not influence routing semantics; it drives which
    opening-hours profile the schedule generator assigns and makes example
    output human-readable.
    """

    SHOP = "shop"
    ANCHOR_STORE = "anchor"
    FOOD_COURT = "food-court"
    HALLWAY = "hallway"
    STAIRCASE = "staircase"
    OFFICE = "office"
    STORAGE = "storage"
    WARD = "ward"
    LOBBY = "lobby"
    OUTDOOR = "outdoor"
    OTHER = "other"


@dataclass(frozen=True)
class Door:
    """A door (or virtual opening) between two indoor partitions.

    Attributes
    ----------
    door_id:
        Unique identifier, e.g. ``"d7"``.
    position:
        The door's location.  Doors produced by hallway decomposition are
        *virtual doors* — openings on the shared boundary of two hallway
        cells — and behave identically.
    door_type:
        Public or private (``PBD`` / ``PRD``).
    """

    door_id: str
    position: IndoorPoint
    door_type: DoorType = DoorType.PUBLIC

    def __post_init__(self) -> None:
        if not self.door_id:
            raise InvalidGeometryError("door_id must be a non-empty string")
        if not isinstance(self.position, IndoorPoint):
            raise InvalidGeometryError("door position must be an IndoorPoint")

    @property
    def floor(self) -> int:
        """Floor on which the door lies."""
        return self.position.floor

    @property
    def is_private(self) -> bool:
        """``True`` for private (PRD) doors."""
        return self.door_type.is_private

    def __str__(self) -> str:
        return self.door_id


@dataclass(frozen=True)
class Partition:
    """An indoor partition: a room, hallway cell, staircase or the outdoors.

    Attributes
    ----------
    partition_id:
        Unique identifier, e.g. ``"v3"``.
    polygon:
        Footprint of the partition on its floor.  ``None`` is allowed for
        abstract partitions (the outdoors, staircase shafts) — such partitions
        fall back to door-to-door Euclidean distances unless explicit
        overrides are given.
    floor:
        Floor index the partition belongs to.  Staircase partitions span two
        floors; by convention they are registered on the lower floor and the
        ``spans_floors`` attribute records both.
    partition_type:
        Public (PBP) or private (PRP).
    category:
        Functional category (shop, hallway, staircase, ...).
    distance_overrides:
        Optional explicit intra-partition door-to-door distances, keyed by the
        unordered pair of door identifiers.  Used for staircases whose walking
        distance (stairway length) is much larger than the planar distance
        between their doors.
    """

    partition_id: str
    polygon: Optional[Polygon] = None
    floor: int = 0
    partition_type: PartitionType = PartitionType.PUBLIC
    category: PartitionCategory = PartitionCategory.OTHER
    name: Optional[str] = None
    spans_floors: Optional[Tuple[int, int]] = None
    distance_overrides: Dict[FrozenSet[str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.partition_id:
            raise InvalidGeometryError("partition_id must be a non-empty string")
        if self.polygon is not None and not isinstance(self.polygon, Polygon):
            raise InvalidGeometryError("partition polygon must be a Polygon or None")
        if self.spans_floors is not None:
            low, high = self.spans_floors
            if high < low:
                raise InvalidGeometryError(
                    f"spans_floors must be ordered, got {self.spans_floors}"
                )

    @property
    def is_private(self) -> bool:
        """``True`` for private (PRP) partitions."""
        return self.partition_type.is_private

    @property
    def is_outdoor(self) -> bool:
        """``True`` for the outdoor pseudo-partition."""
        return self.category is PartitionCategory.OUTDOOR or self.partition_id == OUTDOOR_PARTITION_ID

    @property
    def is_staircase(self) -> bool:
        """``True`` for partitions that connect two floors."""
        return self.category is PartitionCategory.STAIRCASE or self.spans_floors is not None

    @property
    def area(self) -> float:
        """Footprint area in square metres (0 for abstract partitions)."""
        return self.polygon.area if self.polygon is not None else 0.0

    def contains_point(self, point: IndoorPoint, tolerance: float = 1e-9) -> bool:
        """Return ``True`` when ``point`` lies inside this partition.

        Abstract partitions (no polygon) never contain points; staircases
        accept points on either of the floors they span.
        """
        if self.polygon is None:
            return False
        if self.spans_floors is not None:
            low, high = self.spans_floors
            if not (low <= point.floor <= high):
                return False
        elif point.floor != self.floor:
            return False
        return self.polygon.contains(point.point2d, tolerance)

    def override_distance(self, door_a: str, door_b: str) -> Optional[float]:
        """Return the explicit distance between two of this partition's doors,
        or ``None`` when no override is registered."""
        return self.distance_overrides.get(frozenset((door_a, door_b)))

    def __str__(self) -> str:
        return self.partition_id


@dataclass(frozen=True)
class Floor:
    """Metadata about one floor of a multi-floor venue."""

    level: int
    name: Optional[str] = None
    width: float = 0.0
    height: float = 0.0

    @property
    def display_name(self) -> str:
        """Human-readable floor name."""
        return self.name if self.name else f"floor {self.level}"
