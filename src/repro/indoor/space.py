"""The :class:`IndoorSpace` container: partitions, doors and their connections.

An ``IndoorSpace`` is the static, geometry-level description of a venue.  It
knows nothing about temporal variation — that is layered on top by a
:class:`~repro.temporal.schedule.DoorSchedule` when the IT-Graph is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import DuplicateEntityError, TopologyError, UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.indoor.entities import Door, Partition, PartitionType
from repro.indoor.topology import Topology


@dataclass(frozen=True)
class Connection:
    """A directed crossing: one can go from ``from_partition`` to
    ``to_partition`` through ``door_id``."""

    door_id: str
    from_partition: str
    to_partition: str

    def reversed(self) -> "Connection":
        """The opposite direction of the same door."""
        return Connection(self.door_id, self.to_partition, self.from_partition)


class IndoorSpace:
    """A multi-floor indoor venue: partitions, doors and directed connections.

    The class enforces referential integrity (connections may only mention
    registered doors and partitions, identifiers are unique) and exposes the
    derived :class:`~repro.indoor.topology.Topology` mappings plus point
    location (which partition covers a query point).
    """

    def __init__(self, name: str = "indoor-space"):
        self.name = name
        self._partitions: Dict[str, Partition] = {}
        self._doors: Dict[str, Door] = {}
        self._connections: List[Connection] = []
        self._topology: Optional[Topology] = None

    # -- registration ---------------------------------------------------------------

    def add_partition(self, partition: Partition) -> Partition:
        """Register ``partition``; raises :class:`DuplicateEntityError` on id reuse."""
        if partition.partition_id in self._partitions:
            raise DuplicateEntityError(f"partition {partition.partition_id!r} already exists")
        self._partitions[partition.partition_id] = partition
        self._topology = None
        return partition

    def add_door(self, door: Door) -> Door:
        """Register ``door``; raises :class:`DuplicateEntityError` on id reuse."""
        if door.door_id in self._doors:
            raise DuplicateEntityError(f"door {door.door_id!r} already exists")
        self._doors[door.door_id] = door
        self._topology = None
        return door

    def connect(
        self,
        door_id: str,
        from_partition: str,
        to_partition: str,
        bidirectional: bool = True,
    ) -> None:
        """Declare that ``door_id`` links ``from_partition`` to ``to_partition``.

        With ``bidirectional=True`` (the common case) the reverse direction is
        added as well; directional doors — such as the exit-only doors in the
        paper's Figure 1 — pass ``bidirectional=False``.
        """
        self._require_door(door_id)
        self._require_partition(from_partition)
        self._require_partition(to_partition)
        if from_partition == to_partition:
            raise TopologyError(
                f"door {door_id!r} cannot connect partition {from_partition!r} to itself"
            )
        self._connections.append(Connection(door_id, from_partition, to_partition))
        if bidirectional:
            self._connections.append(Connection(door_id, to_partition, from_partition))
        self._topology = None

    # -- lookups -----------------------------------------------------------------------

    def _require_partition(self, partition_id: str) -> None:
        if partition_id not in self._partitions:
            raise UnknownEntityError(f"unknown partition {partition_id!r}")

    def _require_door(self, door_id: str) -> None:
        if door_id not in self._doors:
            raise UnknownEntityError(f"unknown door {door_id!r}")

    def partition(self, partition_id: str) -> Partition:
        """Return the partition registered under ``partition_id``."""
        self._require_partition(partition_id)
        return self._partitions[partition_id]

    def door(self, door_id: str) -> Door:
        """Return the door registered under ``door_id``."""
        self._require_door(door_id)
        return self._doors[door_id]

    def has_partition(self, partition_id: str) -> bool:
        """``True`` when ``partition_id`` is registered."""
        return partition_id in self._partitions

    def has_door(self, door_id: str) -> bool:
        """``True`` when ``door_id`` is registered."""
        return door_id in self._doors

    @property
    def partitions(self) -> Dict[str, Partition]:
        """Read-only view of all partitions keyed by identifier."""
        return dict(self._partitions)

    @property
    def doors(self) -> Dict[str, Door]:
        """Read-only view of all doors keyed by identifier."""
        return dict(self._doors)

    @property
    def connections(self) -> Tuple[Connection, ...]:
        """All directed connections."""
        return tuple(self._connections)

    def partition_ids(self) -> List[str]:
        """All partition identifiers (insertion order)."""
        return list(self._partitions)

    def door_ids(self) -> List[str]:
        """All door identifiers (insertion order)."""
        return list(self._doors)

    def iter_partitions(self) -> Iterator[Partition]:
        """Iterate over partitions in insertion order."""
        return iter(self._partitions.values())

    def iter_doors(self) -> Iterator[Door]:
        """Iterate over doors in insertion order."""
        return iter(self._doors.values())

    def __len__(self) -> int:
        return len(self._partitions)

    # -- derived structure -----------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The door/partition incidence mappings, rebuilt lazily after edits."""
        if self._topology is None:
            topology = Topology()
            for partition_id in self._partitions:
                topology.register_partition(partition_id)
            for door_id in self._doors:
                topology.register_door(door_id)
            for connection in self._connections:
                topology.add_directed_connection(
                    connection.from_partition, connection.to_partition, connection.door_id
                )
            self._topology = topology
        return self._topology

    def doors_of_partition(self, partition_id: str) -> List[Door]:
        """All door objects attached to ``partition_id``."""
        return [self._doors[d] for d in sorted(self.topology.doors_of(partition_id))]

    def floors(self) -> List[int]:
        """Sorted list of floor indices present in the venue."""
        return sorted({p.floor for p in self._partitions.values()})

    # -- point location ----------------------------------------------------------------------

    def locate(self, point: IndoorPoint) -> Partition:
        """Return the partition covering ``point`` (``P(p)`` in the paper).

        When several partitions contain the point (a point exactly on a shared
        wall), the first one in insertion order wins; callers that care should
        place query points strictly inside partitions.

        Raises
        ------
        UnknownEntityError
            If no partition covers the point.
        """
        for partition in self._partitions.values():
            if partition.contains_point(point):
                return partition
        raise UnknownEntityError(f"no partition covers point {point!r}")

    def locate_id(self, point: IndoorPoint) -> str:
        """Identifier variant of :meth:`locate`."""
        return self.locate(point).partition_id

    def try_locate(self, point: IndoorPoint) -> Optional[Partition]:
        """Like :meth:`locate` but returns ``None`` instead of raising."""
        try:
            return self.locate(point)
        except UnknownEntityError:
            return None

    # -- statistics & validation --------------------------------------------------------------

    def count_partitions(self, partition_type: Optional[PartitionType] = None) -> int:
        """Number of partitions, optionally restricted to one type."""
        if partition_type is None:
            return len(self._partitions)
        return sum(1 for p in self._partitions.values() if p.partition_type is partition_type)

    def count_doors(self) -> int:
        """Number of doors."""
        return len(self._doors)

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used by examples and benchmark reports."""
        topology = self.topology
        degrees = [topology.degree(pid) for pid in self._partitions]
        return {
            "partitions": len(self._partitions),
            "doors": len(self._doors),
            "directed_connections": topology.edge_count(),
            "floors": len(self.floors()),
            "private_partitions": self.count_partitions(PartitionType.PRIVATE),
            "mean_partition_degree": (sum(degrees) / len(degrees)) if degrees else 0.0,
            "max_partition_degree": max(degrees) if degrees else 0,
        }

    def validate(self) -> None:
        """Check structural consistency of the venue.

        Ensures every connection references known entities (already enforced
        at insertion), every door participates in at least one connection,
        every door lies on a floor consistent with the partitions it connects,
        and no partition is completely isolated (except the outdoors).

        Raises
        ------
        TopologyError
            Describing the first problem found.
        """
        topology = self.topology
        for door_id, door in self._doors.items():
            partitions = topology.partitions_of(door_id)
            if not partitions:
                raise TopologyError(f"door {door_id!r} is not connected to any partition")
            for partition_id in partitions:
                partition = self._partitions[partition_id]
                if partition.is_outdoor or partition.polygon is None:
                    continue
                floors = (
                    range(partition.spans_floors[0], partition.spans_floors[1] + 1)
                    if partition.spans_floors is not None
                    else (partition.floor,)
                )
                if door.floor not in floors:
                    raise TopologyError(
                        f"door {door_id!r} on floor {door.floor} is connected to partition "
                        f"{partition_id!r} on floor(s) {list(floors)}"
                    )
        for partition_id, partition in self._partitions.items():
            if partition.is_outdoor:
                continue
            if not topology.doors_of(partition_id):
                raise TopologyError(f"partition {partition_id!r} has no doors")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndoorSpace({self.name!r}: {len(self._partitions)} partitions, "
            f"{len(self._doors)} doors, {len(self._connections)} directed connections)"
        )
