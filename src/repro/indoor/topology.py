"""Topology mappings between doors and partitions.

The paper (following Lu et al., ICDE 2012) works with six mappings:

========================  =====================================================
``P2D(v)``                doors attached to partition ``v``
``D2P(d)``                partitions attached to door ``d``
``P2D_enterable(v)``      doors through which one can *enter* ``v``  (``P2D⊢``)
``P2D_leaveable(v)``      doors through which one can *leave* ``v``  (``P2D⊣``)
``D2P_enterable(d)``      partitions one can *enter* through ``d``   (``D2P⊢``)
``D2P_leaveable(d)``      partitions one can *leave* through ``d``   (``D2P⊣``)
========================  =====================================================

``Topology`` materialises all six from the directed connection list of an
:class:`~repro.indoor.space.IndoorSpace` and is also the object that
``Graph_Update`` (Algorithm 3) reduces when doors close: removing a door from
the mappings removes it from the search frontier without touching the
underlying space.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.exceptions import UnknownEntityError


class Topology:
    """Door/partition incidence mappings with directionality.

    The class is deliberately a plain container of sets so that reduced
    copies (snapshots with closed doors removed) are cheap to derive; see
    :meth:`without_doors`.
    """

    __slots__ = (
        "_p2d",
        "_d2p",
        "_p2d_enterable",
        "_p2d_leaveable",
        "_d2p_enterable",
        "_d2p_leaveable",
        "_directed_edges",
    )

    def __init__(self) -> None:
        self._p2d: Dict[str, Set[str]] = {}
        self._d2p: Dict[str, Set[str]] = {}
        self._p2d_enterable: Dict[str, Set[str]] = {}
        self._p2d_leaveable: Dict[str, Set[str]] = {}
        self._d2p_enterable: Dict[str, Set[str]] = {}
        self._d2p_leaveable: Dict[str, Set[str]] = {}
        self._directed_edges: Set[Tuple[str, str, str]] = set()

    # -- construction ----------------------------------------------------------

    def register_partition(self, partition_id: str) -> None:
        """Ensure ``partition_id`` has (possibly empty) entries in the mappings."""
        self._p2d.setdefault(partition_id, set())
        self._p2d_enterable.setdefault(partition_id, set())
        self._p2d_leaveable.setdefault(partition_id, set())

    def register_door(self, door_id: str) -> None:
        """Ensure ``door_id`` has (possibly empty) entries in the mappings."""
        self._d2p.setdefault(door_id, set())
        self._d2p_enterable.setdefault(door_id, set())
        self._d2p_leaveable.setdefault(door_id, set())

    def add_directed_connection(self, from_partition: str, to_partition: str, door_id: str) -> None:
        """Record that one can move from ``from_partition`` to ``to_partition``
        through ``door_id``.

        A bidirectional door is recorded as two directed connections.
        """
        self.register_partition(from_partition)
        self.register_partition(to_partition)
        self.register_door(door_id)
        self._directed_edges.add((from_partition, to_partition, door_id))

        self._p2d[from_partition].add(door_id)
        self._p2d[to_partition].add(door_id)
        self._d2p[door_id].update((from_partition, to_partition))

        self._p2d_leaveable[from_partition].add(door_id)
        self._p2d_enterable[to_partition].add(door_id)
        self._d2p_leaveable[door_id].add(from_partition)
        self._d2p_enterable[door_id].add(to_partition)

    # -- the six mappings --------------------------------------------------------

    def _require_partition(self, partition_id: str) -> None:
        if partition_id not in self._p2d:
            raise UnknownEntityError(f"unknown partition {partition_id!r}")

    def _require_door(self, door_id: str) -> None:
        if door_id not in self._d2p:
            raise UnknownEntityError(f"unknown door {door_id!r}")

    def doors_of(self, partition_id: str) -> FrozenSet[str]:
        """``P2D(v)``: doors attached to ``partition_id``."""
        self._require_partition(partition_id)
        return frozenset(self._p2d[partition_id])

    def partitions_of(self, door_id: str) -> FrozenSet[str]:
        """``D2P(d)``: partitions attached to ``door_id``."""
        self._require_door(door_id)
        return frozenset(self._d2p[door_id])

    def enterable_doors(self, partition_id: str) -> FrozenSet[str]:
        """``P2D⊢(v)``: doors through which one can enter ``partition_id``."""
        self._require_partition(partition_id)
        return frozenset(self._p2d_enterable[partition_id])

    def leaveable_doors(self, partition_id: str) -> FrozenSet[str]:
        """``P2D⊣(v)``: doors through which one can leave ``partition_id``."""
        self._require_partition(partition_id)
        return frozenset(self._p2d_leaveable[partition_id])

    def enterable_partitions(self, door_id: str) -> FrozenSet[str]:
        """``D2P⊢(d)``: partitions one can enter through ``door_id``."""
        self._require_door(door_id)
        return frozenset(self._d2p_enterable[door_id])

    def leaveable_partitions(self, door_id: str) -> FrozenSet[str]:
        """``D2P⊣(d)``: partitions one can leave through ``door_id``."""
        self._require_door(door_id)
        return frozenset(self._d2p_leaveable[door_id])

    # -- collection views ----------------------------------------------------------

    @property
    def partition_ids(self) -> FrozenSet[str]:
        """All partitions known to the topology."""
        return frozenset(self._p2d)

    @property
    def door_ids(self) -> FrozenSet[str]:
        """All doors known to the topology."""
        return frozenset(self._d2p)

    @property
    def directed_edges(self) -> FrozenSet[Tuple[str, str, str]]:
        """All directed connections ``(from_partition, to_partition, door)``."""
        return frozenset(self._directed_edges)

    def has_door(self, door_id: str) -> bool:
        """Return ``True`` when ``door_id`` is present in the topology."""
        return door_id in self._d2p

    def has_partition(self, partition_id: str) -> bool:
        """Return ``True`` when ``partition_id`` is present in the topology."""
        return partition_id in self._p2d

    def degree(self, partition_id: str) -> int:
        """Number of doors attached to ``partition_id``."""
        return len(self.doors_of(partition_id))

    # -- reduction (Algorithm 3 support) ----------------------------------------------

    def without_doors(self, closed_doors: Iterable[str]) -> "Topology":
        """Return a copy of the topology with ``closed_doors`` removed.

        This is the structural core of ``Graph_Update``: the reduced topology
        in force between two checkpoints simply lacks the doors closed during
        that interval, so the search never even considers them.
        """
        closed = set(closed_doors)
        reduced = Topology()
        for partition_id in self._p2d:
            reduced.register_partition(partition_id)
        for door_id in self._d2p:
            if door_id not in closed:
                reduced.register_door(door_id)
        for from_partition, to_partition, door_id in self._directed_edges:
            if door_id not in closed:
                reduced.add_directed_connection(from_partition, to_partition, door_id)
        return reduced

    def copy(self) -> "Topology":
        """Return an independent deep copy of the topology."""
        return self.without_doors(())

    # -- statistics ------------------------------------------------------------------

    def edge_count(self) -> int:
        """Number of directed connections."""
        return len(self._directed_edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({len(self._p2d)} partitions, {len(self._d2p)} doors, "
            f"{len(self._directed_edges)} directed connections)"
        )
