"""JSON serialisation of venues, schedules and query workloads.

Round-tripping venues through plain dictionaries serves two purposes: it lets
users persist generated synthetic venues (so benchmark runs can share one
venue), and it documents the on-disk data model for people who want to feed
their own building data into the library.
"""

from repro.io.serialize import (
    queries_from_dict,
    queries_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    space_from_dict,
    space_to_dict,
    load_json,
    save_json,
)

__all__ = [
    "space_to_dict",
    "space_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "queries_to_dict",
    "queries_from_dict",
    "save_json",
    "load_json",
]
