"""Serialisation of venues, schedules, workloads and compiled query indexes.

Round-tripping venues through plain JSON dictionaries serves two purposes:
it lets users persist generated synthetic venues (so benchmark runs can
share one venue), and it documents the on-disk data model for people who
want to feed their own building data into the library.

The compiled query index has a binary codec of its own
(:mod:`repro.io.compiled_codec`): a versioned flat-array payload that
round-trips the :class:`~repro.core.compiled.CompiledITGraph` (with its
interval bitsets) *exactly*, so worker processes and venue shards rehydrate
an index from bytes instead of recompiling the venue.  Since format
version 2 the payload carries CRC32 integrity checksums per section and
over the whole blob, so a damaged payload fails decoding with
:class:`~repro.exceptions.CorruptPayloadError` instead of producing a
silently wrong index (:func:`verify_payload` checks without decoding).
"""

from repro.io.compiled_codec import (
    compiled_graph_from_bytes,
    compiled_graph_to_bytes,
    payload_section_spans,
    verify_payload,
)
from repro.io.serialize import (
    load_compiled_graph,
    load_json,
    queries_from_dict,
    queries_to_dict,
    save_compiled_graph,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    space_from_dict,
    space_to_dict,
)

__all__ = [
    "space_to_dict",
    "space_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "queries_to_dict",
    "queries_from_dict",
    "save_json",
    "load_json",
    "compiled_graph_to_bytes",
    "compiled_graph_from_bytes",
    "payload_section_spans",
    "verify_payload",
    "save_compiled_graph",
    "load_compiled_graph",
]
