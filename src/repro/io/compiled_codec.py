"""Binary codec for the compiled ITSPQ index — the cross-process hand-off.

:class:`~repro.core.compiled.CompiledITGraph` is built from an
:class:`~repro.core.itgraph.ITGraph`, which is itself built from polygons,
schedules and distance matrices — an offline cost worth paying exactly once
per venue.  Worker processes (``repro.core.parallel``) and, eventually,
venue shards behind a router should not repeat it: this module flattens the
compiled index (plus its :class:`~repro.core.snapshot.IntervalBitsets`) into
one compact ``bytes`` payload and rebuilds it without touching the original
IT-Graph.

Format
------
A versioned little-endian binary layout (version 3):

* an 8-byte magic/version header and a 4-byte body length,
* a section table — one CRC32-checksummed, length-prefixed section per
  logical block of the compiled graph (interned id tables, partition flags,
  dense ``DM`` matrices, flattened adjacency, ATI boundary arrays, open-door
  bitsets, door geometry, leaveable-door lists and the point-location
  polygon rows — see :data:`SECTION_NAMES`), optionally followed by one
  ``precompute`` section (:data:`OPTIONAL_SECTION_NAME`) holding the graph's
  :class:`~repro.core.compiled.IntervalOverlays` — per-interval component
  rows and landmark distance rows, present iff the graph carries overlays,
* a trailing CRC32 over everything before it (the whole-payload checksum).

Version 3 differs from version 2 only in allowing the optional tenth
section; version-2 payloads (always exactly nine sections) still load.

All floats are IEEE-754 doubles written verbatim, so every distance,
boundary instant and polygon vertex round-trips **exactly** — the
rehydrated graph answers queries with bit-identical paths, lengths and
search-statistics counters, which ``tests/test_io_compiled_roundtrip.py``
enforces.  Unknown magics, old/future versions, truncations and trailing
bytes fail fast with :class:`~repro.exceptions.SerializationError`; a
payload whose framing is intact but whose bytes were flipped in flight
fails its checksums with :class:`~repro.exceptions.CorruptPayloadError`
(naming the damaged section), so a worker process never rehydrates — let
alone answers queries from — a silently damaged index
(``tests/test_codec_integrity.py`` flips bytes in every section to prove
it).

The payload is self-contained: deserialisation needs no venue files and no
geometry rebuild beyond reconstructing the (pure-float) polygons of the
point-location rows.  ``CompiledITGraph.itgraph`` is ``None`` on a
rehydrated graph — only the object-level reference engine needs it.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.core.compiled import CompiledITGraph, IntervalOverlays
from repro.core.snapshot import IntervalBitsets
from repro.exceptions import CorruptPayloadError, SerializationError
from repro.geometry.point import Point2D
from repro.geometry.polygon import Polygon, Rectangle

#: Magic prefix of every payload; the trailing pair is the format version.
_MAGIC = b"RPROCG"
#: Version 2 added the CRC-checksummed section table (version-1 payloads,
#: which carried no integrity information at all, are rejected); version 3
#: added the optional ``precompute`` section.  Both still load.
_VERSION = 3
_SUPPORTED_VERSIONS = (2, 3)
_HEADER = struct.Struct("<6sH")
_U32 = struct.Struct("<I")

#: The mandatory checksummed sections of a payload, in serialisation order.
SECTION_NAMES = (
    "id-tables",
    "partition-flags",
    "distance-matrices",
    "adjacency",
    "ati-bounds",
    "interval-bitsets",
    "door-geometry",
    "leaveable-doors",
    "point-location",
)

#: The optional trailing section (version 3+): serialised
#: :class:`~repro.core.compiled.IntervalOverlays`.
OPTIONAL_SECTION_NAME = "precompute"

_POLYGON_KIND = 0
_RECTANGLE_KIND = 1


def _to_little_endian(values: array) -> bytes:
    """Raw little-endian bytes of a typed array (byteswapped on BE hosts)."""
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI hosts
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


class _Writer:
    """Accumulates length-prefixed little-endian values (one section's worth)."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self._parts.append(struct.pack("<B", value))

    def u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def i32(self, value: int) -> None:
        self._parts.append(struct.pack("<i", value))

    def f64(self, value: float) -> None:
        self._parts.append(struct.pack("<d", value))

    def blob(self, data: bytes) -> None:
        self.u32(len(data))
        self._parts.append(bytes(data))

    def text(self, value: str) -> None:
        self.blob(value.encode("utf-8"))

    def f64_array(self, values) -> None:
        data = values if isinstance(values, array) and values.typecode == "d" else array("d", values)
        self.u32(len(data))
        self._parts.append(_to_little_endian(data))

    def u32_array(self, values: Sequence[int]) -> None:
        data = array("I", values)
        self.u32(len(data))
        self._parts.append(_to_little_endian(data))

    def i32_array(self, values: Sequence[int]) -> None:
        data = array("i", values)
        self.u32(len(data))
        self._parts.append(_to_little_endian(data))

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Sequential reader over a payload; truncation raises SerializationError."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, size: int) -> bytes:
        end = self._offset + size
        if end > len(self._data):
            raise SerializationError(
                f"truncated compiled-graph payload: wanted {size} bytes at "
                f"offset {self._offset}, have {len(self._data) - self._offset}"
            )
        chunk = self._data[self._offset : end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def i32(self) -> int:
        return struct.unpack("<i", self._take(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def blob(self) -> bytes:
        return self._take(self.u32())

    def text(self) -> str:
        return self.blob().decode("utf-8")

    def _typed_array(self, typecode: str, itemsize: int) -> array:
        count = self.u32()
        data = array(typecode)
        data.frombytes(self._take(count * itemsize))
        if sys.byteorder == "big":  # pragma: no cover - no big-endian CI hosts
            data.byteswap()
        return data

    def f64_array(self) -> array:
        return self._typed_array("d", 8)

    def u32_array(self) -> array:
        return self._typed_array("I", 4)

    def i32_array(self) -> array:
        return self._typed_array("i", 4)

    def done(self) -> bool:
        return self._offset == len(self._data)


def _write_polygon(writer: _Writer, polygon: Polygon) -> None:
    if isinstance(polygon, Rectangle):
        writer.u8(_RECTANGLE_KIND)
        low, high = polygon.min_corner, polygon.max_corner
        writer.f64(low.x)
        writer.f64(low.y)
        writer.f64(high.x)
        writer.f64(high.y)
    else:
        writer.u8(_POLYGON_KIND)
        vertices = polygon.vertices
        writer.u32(len(vertices))
        coords = array("d")
        for vertex in vertices:
            coords.append(vertex.x)
            coords.append(vertex.y)
        writer.f64_array(coords)


def _read_polygon(reader: _Reader) -> Polygon:
    kind = reader.u8()
    if kind == _RECTANGLE_KIND:
        min_x, min_y = reader.f64(), reader.f64()
        max_x, max_y = reader.f64(), reader.f64()
        return Rectangle(min_x, min_y, max_x, max_y)
    if kind == _POLYGON_KIND:
        count = reader.u32()
        coords = reader.f64_array()
        if len(coords) != 2 * count:
            raise SerializationError(
                f"polygon row is inconsistent: {count} vertices but {len(coords)} coordinates"
            )
        return Polygon([Point2D(coords[2 * i], coords[2 * i + 1]) for i in range(count)])
    raise SerializationError(f"unknown polygon kind {kind} in compiled-graph payload")


def _sections_of(graph: CompiledITGraph) -> List[bytes]:
    """The payload's checksummed sections, in :data:`SECTION_NAMES` order."""
    sections: List[bytes] = []

    writer = _Writer()
    writer.u32(len(graph.door_ids))
    for door_id in graph.door_ids:
        writer.text(door_id)
    writer.u32(len(graph.partition_ids))
    for partition_id in graph.partition_ids:
        writer.text(partition_id)
    sections.append(writer.getvalue())

    writer = _Writer()
    writer.blob(bytes(1 if flag else 0 for flag in graph.partition_private))
    writer.blob(bytes(1 if flag else 0 for flag in graph.partition_outdoor))
    sections.append(writer.getvalue())

    # Dense DM matrices: member door indices in local-rank order + the dense
    # row-major doubles (NaN encodes "no distance defined" and round-trips
    # through IEEE-754 unchanged).
    writer = _Writer()
    for local, dense in zip(graph.dm_locals, graph.dm_arrays):
        members = [0] * len(local)
        for door_idx, rank in local.items():
            members[rank] = door_idx
        writer.u32_array(members)
        writer.f64_array(dense)
    sections.append(writer.getvalue())

    # Flattened adjacency: per door, per group (partition + edge arrays).
    writer = _Writer()
    for groups in graph.adjacency:
        writer.u32(len(groups))
        for partition_idx, _is_private, edges in groups:
            writer.u32(partition_idx)
            writer.u32_array([next_idx for next_idx, _ in edges])
            writer.f64_array([leg for _, leg in edges])
    sections.append(writer.getvalue())

    writer = _Writer()
    for bounds in graph.ati_bounds:
        writer.f64_array(bounds)
    sections.append(writer.getvalue())

    writer = _Writer()
    bitsets = graph.interval_bitsets
    starts = bitsets.starts
    writer.f64_array(starts)
    writer.blob(b"".join(bitsets.bitset_by_index(i) for i in range(len(starts))))
    sections.append(writer.getvalue())

    writer = _Writer()
    writer.f64_array(graph.door_x)
    writer.f64_array(graph.door_y)
    writer.i32_array(graph.door_floor)
    sections.append(writer.getvalue())

    writer = _Writer()
    for door_indices in graph.leaveable_by_partition:
        writer.u32_array(door_indices)
    sections.append(writer.getvalue())

    writer = _Writer()
    writer.u32(len(graph.locate_specs))
    for pidx, floor, spans, polygon in graph.locate_specs:
        writer.u32(pidx)
        writer.i32(floor)
        if spans is None:
            writer.u8(0)
        else:
            writer.u8(1)
            writer.i32(spans[0])
            writer.i32(spans[1])
        _write_polygon(writer, polygon)
    sections.append(writer.getvalue())

    return sections


def _precompute_section(overlays: IntervalOverlays) -> bytes:
    """The optional ``precompute`` section: serialised overlay arrays.

    ``entering_doors`` is a pure function of the adjacency section and is
    rederived at decode time rather than serialised.
    """
    writer = _Writer()
    writer.u32(overlays.door_count)
    writer.u32(overlays.interval_count)
    for row in overlays.component_rows:
        writer.i32_array(row)
    writer.u32(len(overlays.landmark_indices))
    writer.u32_array(overlays.landmark_indices)
    for per_interval in overlays.landmark_rows:
        for row in per_interval:
            writer.f64_array(row)
    return writer.getvalue()


def _decode_precompute(
    section: bytes, adjacency, partition_count: int, door_count: int, interval_count: int
) -> IntervalOverlays:
    """Rebuild :class:`IntervalOverlays` from the optional section's bytes."""
    reader = _Reader(section)
    stored_doors = reader.u32()
    stored_intervals = reader.u32()
    if stored_doors != door_count or stored_intervals != interval_count:
        raise SerializationError(
            f"precompute section disagrees with the compiled graph: "
            f"{stored_doors} doors / {stored_intervals} intervals, "
            f"expected {door_count} / {interval_count}"
        )
    component_rows = tuple(reader.i32_array() for _ in range(interval_count + 2))
    for row in component_rows:
        if len(row) != door_count:
            raise SerializationError("precompute component row disagrees with the door table")
    landmark_count = reader.u32()
    landmark_indices = tuple(reader.u32_array())
    if len(landmark_indices) != landmark_count:
        raise SerializationError("precompute landmark table disagrees with its count word")
    landmark_rows = []
    for _ in range(interval_count):
        per_interval = tuple(reader.f64_array() for _ in range(landmark_count))
        for row in per_interval:
            if len(row) != door_count:
                raise SerializationError(
                    "precompute landmark row disagrees with the door table"
                )
        landmark_rows.append(per_interval)
    if not reader.done():
        raise SerializationError("trailing bytes after the precompute section data")
    return IntervalOverlays(
        door_count,
        interval_count,
        component_rows,
        landmark_indices,
        tuple(landmark_rows),
        IntervalOverlays.entering_from_adjacency(adjacency, partition_count),
    )


def compiled_graph_to_bytes(graph: CompiledITGraph) -> bytes:
    """Serialise a compiled graph (including its interval bitsets) to bytes.

    The payload captures everything query execution touches — a graph
    rebuilt by :func:`compiled_graph_from_bytes` plans and answers the same
    workloads with bit-identical results (precompute overlays riding along
    when the graph carries them).  It does **not** capture the source
    :class:`~repro.core.itgraph.ITGraph`.  Every section carries a CRC32 and
    the whole payload a trailing CRC32, so in-flight damage is detected at
    rehydration instead of decoded into a wrong index.
    """
    sections = _sections_of(graph)
    if graph.overlays is not None:
        sections.append(_precompute_section(graph.overlays))
    parts: List[bytes] = [_U32.pack(len(sections))]
    for section in sections:
        parts.append(_U32.pack(len(section)))
        parts.append(_U32.pack(crc32(section)))
        parts.append(section)
    body = b"".join(parts)
    framed = _HEADER.pack(_MAGIC, _VERSION) + _U32.pack(len(body)) + body
    return framed + _U32.pack(crc32(framed))


def _checked_sections(data: bytes) -> List[Tuple[str, bytes]]:
    """Validate framing and every checksum; return ``(name, bytes)`` pairs.

    Framing violations (foreign magic, unsupported version, truncation,
    trailing bytes, impossible section table) raise
    :class:`SerializationError`; intact framing with mismatching checksums —
    damaged content — raises :class:`CorruptPayloadError`.  The result lists
    the nine mandatory sections, plus the ``precompute`` section when the
    (version-3) payload carries one.
    """
    prefix = _HEADER.size + _U32.size
    if len(data) < prefix + _U32.size:
        raise SerializationError("compiled-graph payload shorter than its header")
    magic, version = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise SerializationError(f"not a compiled-graph payload (magic {magic!r})")
    if version not in _SUPPORTED_VERSIONS:
        raise SerializationError(
            f"unsupported compiled-graph format version {version} "
            f"(expected one of {_SUPPORTED_VERSIONS})"
        )
    (body_length,) = _U32.unpack_from(data, _HEADER.size)
    total = prefix + body_length + _U32.size
    if len(data) < total:
        raise SerializationError(
            f"truncated compiled-graph payload: framed length {total}, have {len(data)} bytes"
        )
    if len(data) > total:
        raise SerializationError(
            f"{len(data) - total} trailing bytes after the compiled-graph payload"
        )
    (stored_crc,) = _U32.unpack_from(data, total - _U32.size)
    if crc32(data[: total - _U32.size]) != stored_crc:
        raise CorruptPayloadError(
            "compiled-graph payload failed its whole-payload CRC32 check"
        )

    offset = prefix
    end = total - _U32.size
    (section_count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    names = list(SECTION_NAMES)
    if version >= 3 and section_count == len(SECTION_NAMES) + 1:
        names.append(OPTIONAL_SECTION_NAME)
    elif section_count != len(SECTION_NAMES):
        expected = (
            f"{len(SECTION_NAMES)} or {len(SECTION_NAMES) + 1}"
            if version >= 3
            else f"{len(SECTION_NAMES)}"
        )
        raise SerializationError(
            f"compiled-graph payload carries {section_count} sections, expected {expected}"
        )
    sections: List[Tuple[str, bytes]] = []
    for name in names:
        if offset + 2 * _U32.size > end:
            raise SerializationError(
                f"section table ends after {len(sections)} of {section_count} "
                f"declared sections (truncated at {name!r})"
            )
        (length,) = _U32.unpack_from(data, offset)
        (section_crc,) = _U32.unpack_from(data, offset + _U32.size)
        offset += 2 * _U32.size
        if offset + length > end:
            raise SerializationError(f"section {name!r} overruns the payload body")
        section = data[offset : offset + length]
        offset += length
        if crc32(section) != section_crc:
            raise CorruptPayloadError(
                f"section {name!r} of the compiled-graph payload failed its CRC32 check"
            )
        sections.append((name, section))
    if offset != end:
        raise SerializationError(
            f"{end - offset} unframed bytes after the last compiled-graph section"
        )
    return sections


def verify_payload(data: bytes) -> None:
    """Validate a payload's framing and checksums without rebuilding a graph.

    Raises exactly what :func:`compiled_graph_from_bytes` would raise for a
    damaged payload, in O(payload) time and O(1) extra memory — the cheap
    pre-flight a shard router can run before shipping a blob to a worker.
    """
    _checked_sections(data)


def payload_section_spans(data: bytes) -> List[Tuple[str, int, int]]:
    """``(name, start, end)`` byte spans of each section's data in ``data``.

    Diagnostic companion to :func:`verify_payload` (and the hook the codec
    integrity tests use to damage each section in isolation).  The spans
    cover section *content* only — framing words live between them.
    """
    sections = _checked_sections(data)
    spans: List[Tuple[str, int, int]] = []
    offset = _HEADER.size + 2 * _U32.size  # header, body length, section count
    for name, section in sections:
        offset += 2 * _U32.size  # section length + CRC words
        spans.append((name, offset, offset + len(section)))
        offset += len(section)
    return spans


def compiled_graph_from_bytes(data: bytes) -> CompiledITGraph:
    """Rebuild a :class:`CompiledITGraph` from :func:`compiled_graph_to_bytes`.

    Raises
    ------
    SerializationError
        On a foreign or truncated payload, or a format version this library
        does not understand.
    CorruptPayloadError
        When the framing is intact but a section CRC or the whole-payload
        CRC does not match (bit-flips, partial overwrites).
    """
    named_sections = _checked_sections(data)
    precompute: Optional[bytes] = None
    if named_sections and named_sections[-1][0] == OPTIONAL_SECTION_NAME:
        precompute = named_sections[-1][1]
        named_sections = named_sections[:-1]
    reader = _Reader(b"".join(section for _name, section in named_sections))

    door_ids = [reader.text() for _ in range(reader.u32())]
    partition_ids = [reader.text() for _ in range(reader.u32())]
    door_count = len(door_ids)
    partition_count = len(partition_ids)

    partition_private = [flag == 1 for flag in reader.blob()]
    partition_outdoor = [flag == 1 for flag in reader.blob()]
    if len(partition_private) != partition_count or len(partition_outdoor) != partition_count:
        raise SerializationError("partition flag arrays disagree with the partition table")

    dm_locals: List[Dict[int, int]] = []
    dm_arrays: List[array] = []
    for _ in range(partition_count):
        members = reader.u32_array()
        dense = reader.f64_array()
        if len(dense) != len(members) * len(members):
            raise SerializationError("dense DM matrix disagrees with its member list")
        dm_locals.append({door_idx: rank for rank, door_idx in enumerate(members)})
        dm_arrays.append(dense)

    adjacency: List[Tuple[Tuple[int, bool, Tuple[Tuple[int, float], ...]], ...]] = []
    for _ in range(door_count):
        groups = []
        for _ in range(reader.u32()):
            partition_idx = reader.u32()
            edge_doors = reader.u32_array()
            edge_legs = reader.f64_array()
            if len(edge_doors) != len(edge_legs):
                raise SerializationError("adjacency edge arrays disagree in length")
            groups.append(
                (
                    partition_idx,
                    partition_private[partition_idx],
                    tuple(zip(edge_doors, edge_legs)),
                )
            )
        adjacency.append(tuple(groups))

    ati_bounds = tuple(tuple(reader.f64_array()) for _ in range(door_count))

    starts = list(reader.f64_array())
    flags = reader.blob()
    if len(flags) != len(starts) * door_count:
        raise SerializationError("interval bitset block disagrees with the interval count")
    interval_bitsets = IntervalBitsets._from_state(
        starts,
        [flags[i * door_count : (i + 1) * door_count] for i in range(len(starts))],
    )

    door_x = reader.f64_array()
    door_y = reader.f64_array()
    door_floor = list(reader.i32_array())
    if not (len(door_x) == len(door_y) == len(door_floor) == door_count):
        raise SerializationError("door geometry arrays disagree with the door table")

    leaveable_by_partition = [tuple(reader.u32_array()) for _ in range(partition_count)]

    locate_specs = []
    for _ in range(reader.u32()):
        pidx = reader.u32()
        floor = reader.i32()
        spans: Optional[Tuple[int, int]] = None
        if reader.u8():
            spans = (reader.i32(), reader.i32())
        locate_specs.append((pidx, floor, spans, _read_polygon(reader)))
    if not reader.done():
        raise SerializationError(
            f"{len(reader._data) - reader._offset} trailing bytes after the "
            "compiled-graph section data"
        )

    overlays: Optional[IntervalOverlays] = None
    if precompute is not None:
        overlays = _decode_precompute(
            precompute,
            adjacency,
            partition_count,
            door_count,
            interval_bitsets.interval_count,
        )

    return CompiledITGraph._from_state(
        {
            "door_ids": door_ids,
            "partition_ids": partition_ids,
            "partition_private": partition_private,
            "partition_outdoor": partition_outdoor,
            "dm_arrays": dm_arrays,
            "dm_locals": dm_locals,
            "adjacency": adjacency,
            "ati_bounds": ati_bounds,
            "interval_bitsets": interval_bitsets,
            "door_x": door_x,
            "door_y": door_y,
            "door_floor": door_floor,
            "leaveable_by_partition": leaveable_by_partition,
            "locate_specs": locate_specs,
            "overlays": overlays,
        }
    )
