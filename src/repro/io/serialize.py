"""Dictionary / JSON round-tripping of the library's data model.

The format is deliberately plain: every entity becomes a dictionary of
primitive values so the documents can be produced by other tools (building
information systems, map digitisers) without depending on this library.

The one non-JSON format lives in :mod:`repro.io.compiled_codec`: the binary
payload of a compiled query index, whose floats must round-trip *exactly*
(bit-identical query answers are the contract).  :func:`save_compiled_graph`
and :func:`load_compiled_graph` below are the file-level conveniences over
that codec.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.core.query import ITSPQuery
from repro.exceptions import SerializationError
from repro.geometry.point import IndoorPoint, Point2D
from repro.geometry.polygon import Polygon
from repro.indoor.entities import Door, DoorType, Partition, PartitionCategory, PartitionType
from repro.indoor.space import IndoorSpace
from repro.temporal.atis import ATISet
from repro.temporal.schedule import DoorSchedule

_FORMAT_VERSION = 1


# -- indoor spaces ---------------------------------------------------------------------


def space_to_dict(space: IndoorSpace) -> Dict[str, Any]:
    """Serialise an :class:`IndoorSpace` to a plain dictionary."""
    partitions = []
    for partition in space.iter_partitions():
        entry: Dict[str, Any] = {
            "id": partition.partition_id,
            "floor": partition.floor,
            "type": partition.partition_type.value,
            "category": partition.category.value,
        }
        if partition.name:
            entry["name"] = partition.name
        if partition.polygon is not None:
            entry["polygon"] = [[v.x, v.y] for v in partition.polygon.vertices]
        if partition.spans_floors is not None:
            entry["spans_floors"] = list(partition.spans_floors)
        if partition.distance_overrides:
            entry["distance_overrides"] = [
                {"doors": sorted(pair), "distance": value}
                for pair, value in partition.distance_overrides.items()
            ]
        partitions.append(entry)

    doors = [
        {
            "id": door.door_id,
            "position": [door.position.x, door.position.y, door.position.floor],
            "type": door.door_type.value,
        }
        for door in space.iter_doors()
    ]

    connections = [
        {
            "door": connection.door_id,
            "from": connection.from_partition,
            "to": connection.to_partition,
        }
        for connection in space.connections
    ]

    return {
        "format_version": _FORMAT_VERSION,
        "name": space.name,
        "partitions": partitions,
        "doors": doors,
        "connections": connections,
    }


def space_from_dict(document: Dict[str, Any]) -> IndoorSpace:
    """Rebuild an :class:`IndoorSpace` from :func:`space_to_dict` output."""
    try:
        space = IndoorSpace(document.get("name", "indoor-space"))
        for entry in document["partitions"]:
            polygon = None
            if "polygon" in entry:
                polygon = Polygon([Point2D(x, y) for x, y in entry["polygon"]])
            overrides = {}
            for override in entry.get("distance_overrides", []):
                overrides[frozenset(override["doors"])] = float(override["distance"])
            spans = entry.get("spans_floors")
            space.add_partition(
                Partition(
                    partition_id=entry["id"],
                    polygon=polygon,
                    floor=int(entry.get("floor", 0)),
                    partition_type=PartitionType(entry.get("type", "PBP")),
                    category=PartitionCategory(entry.get("category", "other")),
                    name=entry.get("name"),
                    spans_floors=tuple(spans) if spans else None,
                    distance_overrides=overrides,
                )
            )
        for entry in document["doors"]:
            x, y, floor = entry["position"]
            space.add_door(
                Door(
                    door_id=entry["id"],
                    position=IndoorPoint(float(x), float(y), int(floor)),
                    door_type=DoorType(entry.get("type", "PBD")),
                )
            )
        for entry in document["connections"]:
            space.connect(entry["door"], entry["from"], entry["to"], bidirectional=False)
        return space
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed indoor-space document: {exc}") from exc


# -- schedules ----------------------------------------------------------------------------


def schedule_to_dict(schedule: DoorSchedule) -> Dict[str, Any]:
    """Serialise a :class:`DoorSchedule` (explicit entries only)."""
    return {
        "format_version": _FORMAT_VERSION,
        "doors": {
            door_id: [[str(interval.start), str(interval.end)] for interval in atis]
            for door_id, atis in schedule.items()
        },
    }


def schedule_from_dict(document: Dict[str, Any]) -> DoorSchedule:
    """Rebuild a :class:`DoorSchedule` from :func:`schedule_to_dict` output."""
    try:
        return DoorSchedule(
            {
                door_id: ATISet.from_pairs((start, end) for start, end in intervals)
                for door_id, intervals in document["doors"].items()
            }
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed schedule document: {exc}") from exc


# -- query workloads ----------------------------------------------------------------------------


def queries_to_dict(queries: Sequence[ITSPQuery]) -> Dict[str, Any]:
    """Serialise a query workload."""
    return {
        "format_version": _FORMAT_VERSION,
        "queries": [
            {
                "source": [q.source.x, q.source.y, q.source.floor],
                "target": [q.target.x, q.target.y, q.target.floor],
                "time": str(q.query_time),
                "label": q.label,
            }
            for q in queries
        ],
    }


def queries_from_dict(document: Dict[str, Any]) -> List[ITSPQuery]:
    """Rebuild a query workload from :func:`queries_to_dict` output."""
    try:
        queries = []
        for entry in document["queries"]:
            sx, sy, sf = entry["source"]
            tx, ty, tf = entry["target"]
            queries.append(
                ITSPQuery(
                    IndoorPoint(float(sx), float(sy), int(sf)),
                    IndoorPoint(float(tx), float(ty), int(tf)),
                    entry["time"],
                    label=entry.get("label", ""),
                )
            )
        return queries
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed query-workload document: {exc}") from exc


# -- files -----------------------------------------------------------------------------------------


def save_json(document: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write ``document`` as indented JSON and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True))
    return target


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a JSON document written by :func:`save_json`."""
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc


def save_compiled_graph(graph, path: Union[str, Path]) -> Path:
    """Write a compiled query index as a binary payload and return the path.

    The payload is the :mod:`repro.io.compiled_codec` format: versioned,
    self-contained and round-trip exact, so a service can compile a venue
    once offline and serve it from any number of processes.
    """
    from repro.io.compiled_codec import compiled_graph_to_bytes

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(compiled_graph_to_bytes(graph))
    return target


def load_compiled_graph(path: Union[str, Path]):
    """Load a compiled query index written by :func:`save_compiled_graph`.

    Raises :class:`~repro.exceptions.SerializationError` for an unreadable
    file and :class:`~repro.exceptions.CorruptPayloadError` (a subclass) for
    a readable payload that fails its integrity checksums — a service can
    treat both as "this index file is unusable" or distinguish disk problems
    from data damage.
    """
    from repro.io.compiled_codec import compiled_graph_from_bytes

    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise SerializationError(f"cannot read compiled-graph payload {path}: {exc}") from exc
    return compiled_graph_from_bytes(data)
