"""``repro.service`` — a resilient localhost query service over the engine.

The serving layer the ROADMAP's north star calls for: one asyncio process
owns one or more compiled venues (engines built normally or rehydrated from
:mod:`repro.io.compiled_codec` payloads), collects incoming single queries
into short time-windowed micro-batches for the
:class:`~repro.core.batch.BatchPlanner`, and wraps the whole request path in
robustness machinery:

* **cooperative deadlines** — every admitted request may carry a
  :class:`~repro.core.deadline.SearchDeadline`; expiry raises the typed
  :class:`~repro.exceptions.DeadlineExceededError` (HTTP 504), never a
  partial result;
* **admission control** — a bounded pending-request budget sheds load with
  :class:`~repro.exceptions.ServiceOverloadedError` (HTTP 429) and a
  semaphore caps in-flight batches (:mod:`repro.service.admission`);
* **a circuit-breaker degradation ladder** — parallel pool → in-process
  batch → sequential compiled → cache-replay-only, each rung guarded by a
  breaker scored from outcomes and
  :class:`~repro.core.parallel.ExecutionReport` history, with
  bounded-backoff recovery probes (:mod:`repro.service.degradation`);
* **graceful lifecycle** — ``/healthz`` / ``/readyz`` / ``/metrics``
  endpoints and drain-then-close shutdown reusing the engines' idempotent
  ``close()`` contract (:mod:`repro.service.server`);
* **sharded serving** — a :class:`~repro.service.shard.ShardRouter`
  front-end over N supervised service subprocesses (one venue subset each,
  static venue→shard map, pooled proxying, bounded-backoff respawn,
  aggregated health/metrics), the ``--shards`` mode of
  ``python -m repro.service`` (:mod:`repro.service.shard`).

Every rung answers **bit-identically** to the sequential oracle (the
repository's standing parity invariant); degradation changes latency and
availability, never answers.  ``python -m repro.service`` runs a server;
``benchmarks/bench_service_load.py`` drives it with open-loop load.
"""

from repro.service.admission import AdmissionController
from repro.service.degradation import CircuitBreaker, DegradationLadder
from repro.service.metrics import ServiceMetrics, aggregate_request_snapshots
from repro.service.server import ITSPQService, ServiceConfig
from repro.service.shard import ShardRouter, ShardRouterConfig, ShardSpec, plan_shards

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DegradationLadder",
    "ServiceMetrics",
    "ITSPQService",
    "ServiceConfig",
    "ShardRouter",
    "ShardRouterConfig",
    "ShardSpec",
    "aggregate_request_snapshots",
    "plan_shards",
]
