"""``python -m repro.service`` — run an ITSPQ query server on localhost.

Venue selection:

* ``--venue example`` (default) serves the Figure 1 / Table I running
  example;
* ``--venue mall`` serves a small synthetic multi-floor mall (deterministic
  seed, built at startup);
* ``--venue /path/to/payload.bin`` serves a venue rehydrated from a
  :mod:`repro.io.compiled_codec` payload file (the shard deployment — no
  object-level IT-Graph is built).

The server prints exactly one ``listening on HOST:PORT`` line to stdout
once ready (the line the load generator and the CI job wait for), serves
until SIGINT/SIGTERM, then drains and closes gracefully.

Example
-------
::

    python -m repro.service --venue example --port 8321 --cache eager &
    curl -s localhost:8321/query -d '{"source": [26, 5, 0],
        "target": [9, 10, 0], "time": "9:00"}'
    curl -s localhost:8321/readyz
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys

from repro.core.cache import CacheConfig
from repro.core.engine import ITSPQEngine
from repro.service.server import ITSPQService, ServiceConfig


def build_engine(venue: str, cache: str) -> ITSPQEngine:
    """Build the engine for a ``--venue`` choice (see the module docstring)."""
    cache_option = None if cache == "off" else CacheConfig(mode=cache)
    if os.path.exists(venue):
        with open(venue, "rb") as handle:
            payload = handle.read()
        return ITSPQEngine.from_compiled_payload(payload, cache=cache_option)
    if venue == "example":
        from repro.datasets.example_floorplan import build_example_itgraph

        return ITSPQEngine(build_example_itgraph(), cache=cache_option)
    if venue == "mall":
        from repro.core.itgraph import build_itgraph
        from repro.synthetic.floorplan import MallFloorConfig
        from repro.synthetic.multifloor import MultiFloorConfig, generate_mall_venue
        from repro.synthetic.schedules import ScheduleConfig, generate_schedule

        config = MultiFloorConfig(
            floors=2,
            staircases_per_floor_pair=2,
            floor_config=MallFloorConfig(
                side=300.0,
                corridors=2,
                corridor_cells=3,
                shop_depth=25.0,
                shops_per_row=6,
                double_door_fraction=0.4,
                private_shop_fraction=0.1,
            ),
        )
        venue_obj = generate_mall_venue(config, seed=5)
        schedule, _ = generate_schedule(venue_obj.space, ScheduleConfig(checkpoint_count=8, seed=3))
        return ITSPQEngine(build_itgraph(venue_obj.space, schedule, validate=False), cache=cache_option)
    raise SystemExit(f"unknown venue {venue!r}: expected 'example', 'mall' or a payload path")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve ITSPQ queries over localhost HTTP with deadlines, "
        "admission control and a degradation ladder.",
    )
    parser.add_argument("--venue", default="example", help="example | mall | payload path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--workers", type=int, default=1, help=">1 adds the parallel-pool rung")
    parser.add_argument(
        "--cache",
        choices=("off", "promote", "eager"),
        default="promote",
        help="SP-tree cache mode (an enabled cache adds the cache-replay rung)",
    )
    parser.add_argument("--window-ms", type=float, default=5.0, help="micro-batch window")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--max-inflight", type=int, default=4)
    parser.add_argument(
        "--deadline-ms", type=float, default=None, help="default per-request budget"
    )
    parser.add_argument("--breaker-threshold", type=int, default=3)
    parser.add_argument("--breaker-backoff", type=float, default=0.5)
    parser.add_argument("--breaker-backoff-cap", type=float, default=30.0)
    return parser


async def amain(args: argparse.Namespace) -> None:
    engine = build_engine(args.venue, args.cache)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        batch_window_ms=args.window_ms,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        max_inflight_batches=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
        workers=args.workers,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_backoff_base=args.breaker_backoff,
        breaker_backoff_cap=args.breaker_backoff_cap,
    )
    service = ITSPQService({args.venue if not os.path.exists(args.venue) else "shard": engine}, config)
    await service.start()
    print(f"listening on {service.host}:{service.port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    serve = asyncio.ensure_future(service.serve_forever())
    stopper = asyncio.ensure_future(stop.wait())
    await asyncio.wait((serve, stopper), return_when=asyncio.FIRST_COMPLETED)
    serve.cancel()
    await service.aclose()
    print("drained and closed", flush=True)


def main(argv=None) -> None:
    args = make_parser().parse_args(argv)
    try:
        asyncio.run(amain(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass


if __name__ == "__main__":
    main(sys.argv[1:])
