"""``python -m repro.service`` — run an ITSPQ query server on localhost.

Venue selection (``--venue``, repeatable):

* ``--venue example`` (default) serves the Figure 1 / Table I running
  example;
* ``--venue mall`` serves a small synthetic multi-floor mall (deterministic
  seed, built at startup);
* ``--venue /path/to/payload.bin`` serves a venue rehydrated from a
  :mod:`repro.io.compiled_codec` payload file — the **payload-venue mode**
  used by shard deployments: no object-level IT-Graph is ever built in the
  serving process, the compiled index travels as one binary blob (write one
  with ``repro.io.serialize.save_compiled_graph``).  The venue is named
  after the file stem (``/data/mall_a.bin`` serves venue ``mall_a``);
* any form takes an explicit name as ``--venue NAME=SPEC``
  (``--venue a=example --venue b=/data/b.bin`` serves venues ``a``, ``b``).

Topology selection:

* without ``--shards`` one process serves every ``--venue`` directly;
* ``--shards N`` runs a :class:`~repro.service.shard.ShardRouter` instead:
  the venues are round-robin partitioned over N supervised worker
  subprocesses (each an ordinary ``python -m repro.service`` on its own
  localhost port) and this process proxies ``POST /query`` by venue,
  aggregates ``/healthz`` ``/readyz`` ``/metrics``, and respawns dead
  shards with bounded backoff.  Engine flags (``--cache``, ``--workers``,
  ``--window-ms``, ...) are forwarded to every worker.

Either way the process prints exactly one ``listening on HOST:PORT`` line
to stdout once ready (the line the load generator and the CI job wait
for), serves until SIGINT/SIGTERM, then drains and closes gracefully,
printing ``drained and closed``.

End-to-end example (build payloads → serve sharded → query)::

    # 1. compile two venues offline into codec payloads
    PYTHONPATH=src python - <<'EOF'
    from repro.datasets.example_floorplan import build_example_itgraph
    from repro.io.serialize import save_compiled_graph
    graph = build_example_itgraph().compiled()
    save_compiled_graph(graph, "/tmp/venue_a.bin")
    save_compiled_graph(graph, "/tmp/venue_b.bin")
    EOF

    # 2. serve them: a router over 2 shards, one venue each
    PYTHONPATH=src python -m repro.service --shards 2 --port 8321 \\
        --venue a=/tmp/venue_a.bin --venue b=/tmp/venue_b.bin --cache eager &
    # wait for: listening on 127.0.0.1:8321

    # 3. query by venue; deadline_ms rides in the body through the router
    curl -s localhost:8321/query -d '{"venue": "a", "source": [26, 5, 0],
        "target": [9, 10, 0], "time": "9:00", "deadline_ms": 250}'
    curl -s localhost:8321/readyz    # per-shard state (pid, port, respawns)
    curl -s localhost:8321/metrics   # router + per-shard + aggregate
    kill -INT %1                     # drains every shard, then the router
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from pathlib import Path
from typing import List, Tuple

from repro.core.cache import CacheConfig
from repro.core.engine import ITSPQEngine
from repro.service.server import ITSPQService, ServiceConfig
from repro.service.shard import ShardRouter, ShardRouterConfig, plan_shards


def parse_venue_arg(entry: str) -> Tuple[str, str]:
    """One ``--venue`` entry as a ``(name, spec)`` pair.

    ``NAME=SPEC`` is explicit naming; a bare builtin (``example``/``mall``)
    names itself; a bare payload path is named after its file stem.
    """
    name, sep, spec = entry.partition("=")
    if sep:
        if not name:
            raise SystemExit(f"--venue {entry!r}: empty venue name")
        return name, spec
    if entry in ("example", "mall"):
        return entry, entry
    if os.path.exists(entry):
        return Path(entry).stem, entry
    return entry, entry  # an unknown spec: build_engine reports it properly


def build_engine(spec: str, cache: str) -> ITSPQEngine:
    """Build the engine for a ``--venue`` spec (see the module docstring)."""
    cache_option = None if cache == "off" else CacheConfig(mode=cache)
    if os.path.exists(spec):
        with open(spec, "rb") as handle:
            payload = handle.read()
        return ITSPQEngine.from_compiled_payload(payload, cache=cache_option)
    if spec == "example":
        from repro.datasets.example_floorplan import build_example_itgraph

        return ITSPQEngine(build_example_itgraph(), cache=cache_option)
    if spec == "mall":
        from repro.core.itgraph import build_itgraph
        from repro.synthetic.floorplan import MallFloorConfig
        from repro.synthetic.multifloor import MultiFloorConfig, generate_mall_venue
        from repro.synthetic.schedules import ScheduleConfig, generate_schedule

        config = MultiFloorConfig(
            floors=2,
            staircases_per_floor_pair=2,
            floor_config=MallFloorConfig(
                side=300.0,
                corridors=2,
                corridor_cells=3,
                shop_depth=25.0,
                shops_per_row=6,
                double_door_fraction=0.4,
                private_shop_fraction=0.1,
            ),
        )
        venue_obj = generate_mall_venue(config, seed=5)
        schedule, _ = generate_schedule(venue_obj.space, ScheduleConfig(checkpoint_count=8, seed=3))
        return ITSPQEngine(build_itgraph(venue_obj.space, schedule, validate=False), cache=cache_option)
    raise SystemExit(
        f"unknown venue spec {spec!r}: expected 'example', 'mall' or a compiled-codec payload path"
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve ITSPQ queries over localhost HTTP with deadlines, "
        "admission control and a degradation ladder — one process per venue set, "
        "or a sharded router over N worker processes (--shards).",
    )
    parser.add_argument(
        "--venue",
        action="append",
        metavar="[NAME=]SPEC",
        help="venue to serve: 'example', 'mall', or a compiled-codec payload path "
        "(the payload-venue / shard deployment; named after the file stem unless "
        "NAME= is given).  Repeatable; default: example",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run a ShardRouter over this many service subprocesses (venues are "
        "round-robin partitioned; 0 = single-process serving, the default)",
    )
    parser.add_argument("--workers", type=int, default=1, help=">1 adds the parallel-pool rung")
    parser.add_argument(
        "--cache",
        choices=("off", "promote", "eager"),
        default="promote",
        help="SP-tree cache mode (an enabled cache adds the cache-replay rung)",
    )
    parser.add_argument("--window-ms", type=float, default=5.0, help="micro-batch window")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--max-inflight", type=int, default=4)
    parser.add_argument(
        "--deadline-ms", type=float, default=None, help="default per-request budget"
    )
    parser.add_argument("--breaker-threshold", type=int, default=3)
    parser.add_argument("--breaker-backoff", type=float, default=0.5)
    parser.add_argument("--breaker-backoff-cap", type=float, default=30.0)
    router = parser.add_argument_group("router options (only with --shards)")
    router.add_argument(
        "--pool-size", type=int, default=4, help="idle keep-alive connections kept per shard"
    )
    router.add_argument(
        "--max-inflight-per-shard",
        type=int,
        default=64,
        help="proxied requests in flight per shard; excess sheds a typed 429",
    )
    router.add_argument(
        "--respawn-backoff", type=float, default=0.5, help="dead-shard respawn backoff base"
    )
    router.add_argument(
        "--respawn-backoff-cap", type=float, default=30.0, help="dead-shard respawn backoff cap"
    )
    return parser


def venue_entries(args: argparse.Namespace) -> List[str]:
    """The normalised ``NAME=SPEC`` venue entries of this invocation."""
    raw = args.venue if args.venue else ["example"]
    entries = []
    names = set()
    for item in raw:
        name, spec = parse_venue_arg(item)
        if name in names:
            raise SystemExit(f"duplicate venue name {name!r}")
        names.add(name)
        entries.append(f"{name}={spec}")
    return entries


def forwarded_worker_args(args: argparse.Namespace) -> Tuple[str, ...]:
    """Engine/service flags every shard worker inherits from the router CLI."""
    forwarded = [
        "--workers", str(args.workers),
        "--cache", args.cache,
        "--window-ms", str(args.window_ms),
        "--max-batch", str(args.max_batch),
        "--max-pending", str(args.max_pending),
        "--max-inflight", str(args.max_inflight),
        "--breaker-threshold", str(args.breaker_threshold),
        "--breaker-backoff", str(args.breaker_backoff),
        "--breaker-backoff-cap", str(args.breaker_backoff_cap),
    ]
    if args.deadline_ms is not None:
        forwarded.extend(("--deadline-ms", str(args.deadline_ms)))
    return tuple(forwarded)


async def amain(args: argparse.Namespace) -> None:
    entries = venue_entries(args)
    if args.shards:
        front = ShardRouter(
            plan_shards(entries, args.shards),
            ShardRouterConfig(
                host=args.host,
                port=args.port,
                pool_size=args.pool_size,
                max_inflight_per_shard=args.max_inflight_per_shard,
                respawn_backoff_base=args.respawn_backoff,
                respawn_backoff_cap=args.respawn_backoff_cap,
                worker_args=forwarded_worker_args(args),
            ),
        )
    else:
        engines = {}
        for entry in entries:
            name, _, spec = entry.partition("=")
            engines[name] = build_engine(spec, args.cache)
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            batch_window_ms=args.window_ms,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
            max_inflight_batches=args.max_inflight,
            default_deadline_ms=args.deadline_ms,
            workers=args.workers,
            breaker_failure_threshold=args.breaker_threshold,
            breaker_backoff_base=args.breaker_backoff,
            breaker_backoff_cap=args.breaker_backoff_cap,
        )
        front = ITSPQService(engines, config)
    await front.start()
    print(f"listening on {front.host}:{front.port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    serve = asyncio.ensure_future(front.serve_forever())
    stopper = asyncio.ensure_future(stop.wait())
    await asyncio.wait((serve, stopper), return_when=asyncio.FIRST_COMPLETED)
    serve.cancel()
    await front.aclose()
    print("drained and closed", flush=True)


def main(argv=None) -> None:
    args = make_parser().parse_args(argv)
    try:
        asyncio.run(amain(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass


if __name__ == "__main__":
    main(sys.argv[1:])
