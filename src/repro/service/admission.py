"""Admission control: bounded pending work and bounded batch concurrency.

Backpressure in this service is two-level, matching its two queues:

* **Per-request admission.**  Every request entering the service holds one
  *pending* slot from arrival until its response is written.  The budget is
  a plain counter (all mutation happens on the event-loop thread), and a
  full budget sheds the request immediately with
  :class:`~repro.exceptions.ServiceOverloadedError` — the typed 429.
  Shedding at the door is the whole point: a request the service cannot
  serve within its deadline is cheapest to refuse before any search runs.
* **Batch concurrency.**  Flushed micro-batches execute on worker threads
  (the engines are synchronous); an :class:`asyncio.Semaphore` caps how
  many are in flight at once so a burst cannot fan out into unbounded
  threads, and queued batches simply wait for a slot — their members'
  deadlines keep ticking, which is exactly the behaviour an overloaded
  service should exhibit (latency first, then 504s, then 429s).
"""

from __future__ import annotations

import asyncio
from typing import Dict

from repro.exceptions import ServiceOverloadedError


class AdmissionController:
    """Bounded admission: ``max_pending`` requests in the building at once,
    ``max_inflight_batches`` micro-batches executing at once.

    Single event-loop use only (counters are not thread-safe by design —
    the server mutates them exclusively from loop callbacks).
    """

    def __init__(self, max_pending: int, max_inflight_batches: int):
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        if max_inflight_batches < 1:
            raise ValueError(
                f"max_inflight_batches must be positive, got {max_inflight_batches}"
            )
        self.max_pending = int(max_pending)
        self.max_inflight_batches = int(max_inflight_batches)
        self._pending = 0
        self._inflight_batches = 0
        self.admitted = 0
        self.shed = 0
        self._batch_slots = asyncio.Semaphore(self.max_inflight_batches)

    # -- per-request admission --------------------------------------------------

    def admit(self) -> None:
        """Take one pending slot or shed the request (the typed 429)."""
        if self._pending >= self.max_pending:
            self.shed += 1
            raise ServiceOverloadedError(
                f"request queue full ({self._pending}/{self.max_pending} pending)"
            )
        self._pending += 1
        self.admitted += 1

    def release(self) -> None:
        """Return a pending slot (exactly once per successful :meth:`admit`)."""
        if self._pending > 0:
            self._pending -= 1

    @property
    def pending(self) -> int:
        """Requests currently holding a pending slot."""
        return self._pending

    # -- batch concurrency ------------------------------------------------------

    async def __aenter__(self) -> "AdmissionController":
        await self._batch_slots.acquire()
        self._inflight_batches += 1
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        self._inflight_batches -= 1
        self._batch_slots.release()

    @property
    def inflight_batches(self) -> int:
        """Micro-batches currently executing."""
        return self._inflight_batches

    # -- observability ----------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Counter snapshot for ``/metrics`` and ``/readyz``."""
        return {
            "pending": self._pending,
            "max_pending": self.max_pending,
            "inflight_batches": self._inflight_batches,
            "max_inflight_batches": self.max_inflight_batches,
            "admitted": self.admitted,
            "shed": self.shed,
        }
