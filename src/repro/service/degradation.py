"""The circuit-breaker degradation ladder over the execution tiers.

PR 4 gave the *parallel executor* an internal ladder (retry → respawn →
in-process fallback).  This module extends that idea to the whole service:
every execution tier is a **rung** with its own circuit breaker, and each
micro-batch runs on the highest healthy rung —

1. ``parallel`` — the supervised multiprocess pool (present when the
   service is configured with ``workers > 1``);
2. ``batch`` — the in-process multi-target batch executor;
3. ``sequential`` — one compiled search per query;
4. ``cache-replay`` — answers **only** queries whose shortest-path tree is
   already cached (present when the engines carry an SP-tree cache); misses
   are shed with :class:`~repro.exceptions.ServiceOverloadedError`.

Rung order is strictly decreasing capability and strictly increasing
isolation from failure: the bottom rung does no search at all, so it cannot
be sick in the ways the rungs above it can.  Degradation trades throughput
and coverage for availability — never correctness: every rung's answers are
bit-identical to the sequential oracle by the repository's standing parity
contracts, and the chaos suite re-proves it per rung.

Breaker semantics are classic: ``failure_threshold`` consecutive failures
open a rung's breaker; while open, traffic skips the rung; after a bounded,
doubling backoff one **probe** batch is allowed through (half-open) — its
success re-closes the breaker, its failure re-opens with a doubled delay up
to ``backoff_cap``.  The parallel rung is additionally health-scored from
:class:`~repro.core.parallel.ExecutionReport` history: a degraded report
(crashes, timeouts, fallbacks) counts as a strike even when the executor's
own ladder recovered the answers, so the service stops *offering* work to a
sick pool before requests start paying the recovery latency.

The bottom rung is always allowed to answer regardless of its breaker —
a service with every breaker open still serves what it can serve.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

#: Canonical rung names, highest capability first.
RUNG_PARALLEL = "parallel"
RUNG_BATCH = "batch"
RUNG_SEQUENTIAL = "sequential"
RUNG_CACHE_REPLAY = "cache-replay"

ALL_RUNGS = (RUNG_PARALLEL, RUNG_BATCH, RUNG_SEQUENTIAL, RUNG_CACHE_REPLAY)


class CircuitBreaker:
    """One rung's health state machine (closed → open → half-open).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    backoff_base / backoff_cap:
        The n-th consecutive open lasts ``min(cap, base * 2**(n-1))``
        seconds before a recovery probe is allowed.
    clock:
        Injectable monotonic clock (tests advance a fake one instead of
        sleeping).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be positive, got {failure_threshold}")
        if backoff_base < 0:
            raise ValueError(f"backoff_base must be non-negative, got {backoff_base}")
        if backoff_cap < 0:
            raise ValueError(f"backoff_cap must be non-negative, got {backoff_cap}")
        self.failure_threshold = int(failure_threshold)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._clock = clock
        self._failures = 0  # consecutive, since the last success
        self._opens = 0  # consecutive opens, for the doubling backoff
        self._open_until: Optional[float] = None
        self._probe_inflight = False
        self.trips = 0  # lifetime open count (observability)

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        if self._open_until is None:
            return "closed"
        if self._probe_inflight or self._clock() >= self._open_until:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether a batch may run on this rung right now.

        While open, returns ``False`` until the backoff elapses; then admits
        exactly one probe (half-open) until its outcome is recorded.
        """
        if self._open_until is None:
            return True
        if self._probe_inflight:
            return False
        if self._clock() >= self._open_until:
            self._probe_inflight = True
            return True
        return False

    def record_success(self) -> None:
        """A batch completed on this rung: close the breaker, reset backoff."""
        self._failures = 0
        self._opens = 0
        self._open_until = None
        self._probe_inflight = False

    def record_failure(self) -> None:
        """A batch failed on this rung (or a health strike was scored)."""
        self._probe_inflight = False
        if self._open_until is not None:
            # A failed recovery probe: re-open with a doubled delay.
            self._trip()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._opens += 1
        self.trips += 1
        self._failures = 0
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (self._opens - 1)))
        self._open_until = self._clock() + delay

    def snapshot(self) -> Dict[str, object]:
        """State for ``/metrics`` and ``/readyz``."""
        remaining = 0.0
        if self._open_until is not None:
            remaining = max(0.0, self._open_until - self._clock())
        return {
            "state": self.state,
            "consecutive_failures": self._failures,
            "trips": self.trips,
            "backoff_remaining_seconds": remaining,
        }


class DegradationLadder:
    """Rung selection over per-rung circuit breakers.

    ``rungs`` is the ordered subset of :data:`ALL_RUNGS` this deployment
    actually has (no parallel rung without workers, no cache-replay rung
    without engine caches).  :meth:`select` returns the highest rung whose
    breaker admits traffic; when every breaker is open the bottom rung
    answers anyway — the ladder never refuses outright, it only narrows
    what it can promise.
    """

    def __init__(
        self,
        rungs: Sequence[str],
        failure_threshold: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        rungs = tuple(rungs)
        if not rungs:
            raise ValueError("the ladder needs at least one rung")
        for rung in rungs:
            if rung not in ALL_RUNGS:
                raise ValueError(f"unknown rung {rung!r} (expected one of {ALL_RUNGS})")
        self.rungs: List[str] = list(rungs)
        self._breakers: Dict[str, CircuitBreaker] = {
            rung: CircuitBreaker(failure_threshold, backoff_base, backoff_cap, clock)
            for rung in rungs
        }
        self.selections: Dict[str, int] = {rung: 0 for rung in rungs}

    def breaker(self, rung: str) -> CircuitBreaker:
        """The breaker guarding ``rung``."""
        return self._breakers[rung]

    def select(self, start_after: Optional[str] = None) -> str:
        """The rung the next batch should run on.

        ``start_after`` (a rung name) restricts the choice to rungs strictly
        below it — the in-batch descent path after a rung failure.  Returns
        the bottom rung when nothing healthier admits traffic.
        """
        candidates = self.rungs
        if start_after is not None:
            candidates = candidates[candidates.index(start_after) + 1 :]
            if not candidates:
                candidates = self.rungs[-1:]
        for rung in candidates[:-1]:
            if self._breakers[rung].allow():
                self.selections[rung] += 1
                return rung
        bottom = candidates[-1]
        # The bottom candidate answers regardless; still consume its allow()
        # so a half-open probe there is tracked like any other.
        self._breakers[bottom].allow()
        self.selections[bottom] += 1
        return bottom

    def record(self, rung: str, ok: bool) -> None:
        """Record a batch outcome on ``rung``."""
        breaker = self._breakers[rung]
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def note_report(self, report) -> None:
        """Health-score the parallel rung from an
        :class:`~repro.core.parallel.ExecutionReport`.

        A pool run that needed crashes/timeouts/respawns/fallbacks to
        complete still *answered* — but it is evidence the pool is sick, so
        it is charged as a strike without failing any request."""
        if RUNG_PARALLEL not in self._breakers:
            return
        if report is not None and report.mode == "pool" and not report.clean:
            self._breakers[RUNG_PARALLEL].record_failure()

    def snapshot(self) -> Dict[str, object]:
        """Per-rung breaker state plus selection counts."""
        return {
            "rungs": list(self.rungs),
            "selections": dict(self.selections),
            "breakers": {rung: self._breakers[rung].snapshot() for rung in self.rungs},
        }
