"""Service counters and latency percentiles for ``/metrics``.

Deliberately dependency-free: a bounded reservoir of recent request
latencies (newest-wins ring buffer, so percentiles reflect the current
regime rather than the whole process lifetime) plus plain counters keyed by
outcome and by degradation rung.  The load-generator benchmark reads the
same snapshot shape it writes to ``BENCH_service.json``, so the service's
self-reported numbers and the bench's externally-measured ones line up
field for field.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional


class ServiceMetrics:
    """Counters + a bounded latency reservoir (single event-loop use)."""

    def __init__(self, reservoir_size: int = 8192):
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be positive, got {reservoir_size}")
        self.received = 0
        self.answered = 0
        self.shed = 0  # 429s: admission + cache-replay misses
        self.deadline_exceeded = 0  # 504s
        self.bad_requests = 0  # 400s
        self.client_timeouts = 0  # 408s: slow clients
        self.unavailable = 0  # 503s: draining / not ready
        self.internal_errors = 0  # 500s
        self.batches = 0
        self.answered_by_rung: Dict[str, int] = {}
        self._latencies: Deque[float] = deque(maxlen=reservoir_size)

    def observe_outcome(self, status: int) -> None:
        """Count one finished request by its HTTP status."""
        if status == 200:
            self.answered += 1
        elif status == 429:
            self.shed += 1
        elif status == 504:
            self.deadline_exceeded += 1
        elif status == 400:
            self.bad_requests += 1
        elif status == 408:
            self.client_timeouts += 1
        elif status == 503:
            self.unavailable += 1
        else:
            self.internal_errors += 1

    def observe_rung(self, rung: str, count: int = 1) -> None:
        """Count ``count`` queries answered on ``rung``."""
        self.answered_by_rung[rung] = self.answered_by_rung.get(rung, 0) + count

    def observe_latency(self, seconds: float) -> None:
        """Record one request's service-side latency (admit → response)."""
        self._latencies.append(seconds)

    def percentile(self, fraction: float) -> Optional[float]:
        """The ``fraction`` (0..1) percentile of the reservoir, or ``None``
        when empty.  Nearest-rank on a sorted copy — the reservoir is small
        and ``/metrics`` is not a hot path."""
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` payload's request section."""
        return {
            "received": self.received,
            "answered": self.answered,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "bad_requests": self.bad_requests,
            "client_timeouts": self.client_timeouts,
            "unavailable": self.unavailable,
            "internal_errors": self.internal_errors,
            "batches": self.batches,
            "answered_by_rung": dict(self.answered_by_rung),
            "latency_samples": len(self._latencies),
            "latency_p50_seconds": self.percentile(0.50),
            "latency_p99_seconds": self.percentile(0.99),
        }


def aggregate_request_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """The cross-shard ``aggregate`` section of a router's ``/metrics``.

    ``snapshots`` are the per-shard ``requests`` sections (the shape
    :meth:`ServiceMetrics.snapshot` emits).  Counters sum; the per-rung
    split merges by summation; ``latency_samples`` sums.  Percentiles do
    **not** compose across processes (a p99 of p99s is not the deployment's
    p99), so the aggregate reports the *worst shard's* p50/p99 — the
    conservative number an operator should alert on — and keeps the exact
    per-shard values available next to it in the ``shards`` section.

    ``shards_reporting`` counts the snapshots that actually contributed:
    during a shard death it is smaller than the shard count, which is
    itself a signal (the aggregate silently covering fewer shards would
    read as "traffic dropped" when it did not).
    """
    summed = {
        "received": 0,
        "answered": 0,
        "shed": 0,
        "deadline_exceeded": 0,
        "bad_requests": 0,
        "client_timeouts": 0,
        "unavailable": 0,
        "internal_errors": 0,
        "batches": 0,
        "latency_samples": 0,
    }
    answered_by_rung: Dict[str, int] = {}
    worst: Dict[str, Optional[float]] = {
        "latency_p50_seconds": None,
        "latency_p99_seconds": None,
    }
    reporting = 0
    for snapshot in snapshots:
        reporting += 1
        for key in summed:
            value = snapshot.get(key)
            if isinstance(value, (int, float)):
                summed[key] += int(value)
        rungs = snapshot.get("answered_by_rung")
        if isinstance(rungs, dict):
            for rung, count in rungs.items():
                answered_by_rung[rung] = answered_by_rung.get(rung, 0) + int(count)
        for field in worst:
            value = snapshot.get(field)
            if isinstance(value, (int, float)) and (worst[field] is None or value > worst[field]):
                worst[field] = float(value)
    return {
        **summed,
        "answered_by_rung": answered_by_rung,
        **worst,
        "shards_reporting": reporting,
    }
