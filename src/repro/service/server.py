"""The asyncio ITSPQ query service: HTTP front-end, micro-batching, rungs.

One :class:`ITSPQService` owns a set of named venues (each an
:class:`~repro.core.engine.ITSPQEngine`, built normally or rehydrated from a
:mod:`repro.io.compiled_codec` payload via :meth:`ITSPQService.from_payloads`)
and serves a minimal HTTP/1.1 API over raw asyncio streams — deliberately
dependency-free, like the rest of the repository:

``POST /query``
    Body: ``{"venue": name?, "source": [x, y, floor], "target":
    [x, y, floor], "time": "HH:MM[:SS]", "method": name?, "deadline_ms":
    number?}``.  Answers 200 with the result, 400 for malformed queries,
    408 for slow clients, 429 when shed, 503 while draining, 504 on
    deadline expiry, 500 otherwise — each error body carries the typed
    exception name.
``GET /healthz`` / ``GET /readyz`` / ``GET /metrics``
    Liveness (always 200 while the process runs), readiness (503 before
    start and while draining, with rung/breaker detail), and the full
    counter snapshot (requests, admission, ladder, per-venue engine stats).

Request path
------------
Admitted queries are buffered per ``(venue, method)`` for at most
``batch_window_ms`` (or until ``max_batch`` members arrive), then flushed as
one micro-batch through the :class:`~repro.service.degradation.DegradationLadder`:
the batch runs on the highest healthy rung — parallel pool, in-process
batch, sequential compiled, cache-replay — descending on rung failure, with
outcomes scored into the rungs' circuit breakers.  Engines are synchronous
and their search arenas are **not** thread-safe, so every rung execution
runs on a worker thread under a per-venue lock; concurrency comes from
batching, not from racing searches.

Deadlines compose with batching conservatively: a micro-batch's shared
budget is the *largest* remaining member budget (no budget at all if any
member is unbounded), so the shared search is never cut short while some
member could still be served; members whose own budget expired by
completion are answered 504 individually — the "never partial, never
stale" contract per request.

Lifecycle
---------
:meth:`ITSPQService.start` compiles every venue off-loop and binds the
socket; :meth:`ITSPQService.aclose` drains — stop admitting, flush every
buffer, let in-flight batches and handlers finish — then closes the socket
and the engines (whose ``close()`` is idempotent by contract, as is
``aclose`` itself).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.deadline import SearchDeadline
from repro.core.engine import ITSPQEngine
from repro.core.query import ITSPQuery, QueryResult
from repro.core.tvcheck import canonical_method
from repro.exceptions import (
    DeadlineExceededError,
    QueryError,
    ReproError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.geometry.point import IndoorPoint
from repro.service.admission import AdmissionController
from repro.service.degradation import (
    RUNG_BATCH,
    RUNG_CACHE_REPLAY,
    RUNG_PARALLEL,
    RUNG_SEQUENTIAL,
    DegradationLadder,
)
from repro.service.metrics import ServiceMetrics

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServiceConfig:
    """Tunables of one :class:`ITSPQService` (validated at construction —
    every violation names the offending field).

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        ``service.port`` after :meth:`ITSPQService.start`).
    batch_window_ms:
        How long the first query of a micro-batch waits for company before
        the batch flushes (``0`` flushes on the next loop tick).
    max_batch:
        Flush immediately once a buffer holds this many queries.
    max_pending / max_inflight_batches:
        The admission budgets (see :class:`~repro.service.admission.AdmissionController`).
    default_deadline_ms:
        Budget applied to requests that do not send ``deadline_ms``;
        ``None`` leaves them unbounded.
    client_timeout_seconds:
        Reading a request (headers + body) longer than this answers 408 —
        the slow-client guard.
    drain_timeout_seconds:
        How long :meth:`ITSPQService.aclose` waits for in-flight handlers
        after the batch queue empties.
    workers:
        ``> 1`` adds the parallel-pool rung with that pool size.
    parallel_options:
        Passed through to
        :meth:`~repro.core.engine.ITSPQEngine.parallel_executor` when the
        parallel rung is built (``chunk_timeout``, ``fault_plan``, ...).
    breaker_failure_threshold / breaker_backoff_base / breaker_backoff_cap:
        The per-rung circuit-breaker tuning.
    breaker_clock:
        Injectable monotonic clock for the breakers (chaos tests advance a
        fake clock instead of sleeping through recovery backoffs).
    rung_fault_hook:
        Test seam: called as ``hook(rung, venue)`` before a batch executes
        on a rung; an exception it raises is that rung's failure.  ``None``
        in production.
    max_body_bytes:
        Request bodies above this answer 400.
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window_ms: float = 5.0
    max_batch: int = 16
    max_pending: int = 64
    max_inflight_batches: int = 4
    default_deadline_ms: Optional[float] = None
    client_timeout_seconds: float = 5.0
    drain_timeout_seconds: float = 10.0
    workers: int = 1
    parallel_options: Optional[Dict[str, Any]] = None
    breaker_failure_threshold: int = 3
    breaker_backoff_base: float = 0.5
    breaker_backoff_cap: float = 30.0
    breaker_clock: Callable[[], float] = time.monotonic
    rung_fault_hook: Optional[Callable[[str, str], None]] = field(default=None, repr=False)
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be non-negative, got {self.batch_window_ms}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {self.max_pending}")
        if self.max_inflight_batches < 1:
            raise ValueError(
                f"max_inflight_batches must be positive, got {self.max_inflight_batches}"
            )
        if self.default_deadline_ms is not None and not self.default_deadline_ms > 0:
            raise ValueError(
                f"default_deadline_ms must be positive or None, got {self.default_deadline_ms}"
            )
        if not self.client_timeout_seconds > 0:
            raise ValueError(
                f"client_timeout_seconds must be positive, got {self.client_timeout_seconds}"
            )
        if self.drain_timeout_seconds < 0:
            raise ValueError(
                f"drain_timeout_seconds must be non-negative, got {self.drain_timeout_seconds}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                f"breaker_failure_threshold must be positive, got {self.breaker_failure_threshold}"
            )
        if self.breaker_backoff_base < 0:
            raise ValueError(
                f"breaker_backoff_base must be non-negative, got {self.breaker_backoff_base}"
            )
        if self.breaker_backoff_cap < 0:
            raise ValueError(
                f"breaker_backoff_cap must be non-negative, got {self.breaker_backoff_cap}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be positive, got {self.max_body_bytes}")


class _Member:
    """One admitted query waiting in (or flushed from) a micro-batch."""

    __slots__ = ("query", "deadline", "future", "admitted_at")

    def __init__(self, query: ITSPQuery, deadline: Optional[SearchDeadline], future: asyncio.Future):
        self.query = query
        self.deadline = deadline
        self.future = future
        self.admitted_at = time.perf_counter()


class ITSPQService:
    """The serving layer over one or more compiled venues (see module doc)."""

    def __init__(self, engines: Dict[str, ITSPQEngine], config: Optional[ServiceConfig] = None):
        if not engines:
            raise ValueError("the service needs at least one venue engine")
        self._engines: Dict[str, ITSPQEngine] = dict(engines)
        self._config = config if config is not None else ServiceConfig()
        # One lock per venue: the search arenas are not thread-safe, and the
        # supervised parallel executor is single-caller by design, so every
        # rung execution of a venue is serialised across worker threads.
        self._locks: Dict[str, threading.Lock] = {name: threading.Lock() for name in self._engines}
        rungs: List[str] = []
        if self._config.workers > 1:
            rungs.append(RUNG_PARALLEL)
        rungs.extend((RUNG_BATCH, RUNG_SEQUENTIAL))
        if all(engine.cache_enabled for engine in self._engines.values()):
            rungs.append(RUNG_CACHE_REPLAY)
        self._ladder = DegradationLadder(
            rungs,
            failure_threshold=self._config.breaker_failure_threshold,
            backoff_base=self._config.breaker_backoff_base,
            backoff_cap=self._config.breaker_backoff_cap,
            clock=self._config.breaker_clock,
        )
        self._admission = AdmissionController(
            self._config.max_pending, self._config.max_inflight_batches
        )
        self._metrics = ServiceMetrics()
        self._buffers: Dict[Tuple[str, str], List[_Member]] = {}
        self._flush_handles: Dict[Tuple[str, str], asyncio.TimerHandle] = {}
        self._batch_tasks: "set[asyncio.Task]" = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._started = False
        self._draining = False
        self._closed = False
        self._active_handlers = 0
        self.host: str = self._config.host
        self.port: int = self._config.port

    @classmethod
    def from_payloads(
        cls,
        payloads: Dict[str, bytes],
        config: Optional[ServiceConfig] = None,
        cache: Any = True,
        walking_speed: Optional[float] = None,
    ) -> "ITSPQService":
        """A service whose venues are rehydrated from codec payloads — the
        shard hand-off deployment: no object-level IT-Graph is ever built in
        the serving process.  ``cache`` (default ``True``) is passed to every
        :meth:`~repro.core.engine.ITSPQEngine.from_compiled_payload`, so the
        cache-replay rung exists unless explicitly disabled."""
        kwargs: Dict[str, Any] = {"cache": cache}
        if walking_speed is not None:
            kwargs["walking_speed"] = walking_speed
        engines = {
            name: ITSPQEngine.from_compiled_payload(payload, **kwargs)
            for name, payload in payloads.items()
        }
        return cls(engines, config)

    # -- introspection ---------------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def ladder(self) -> DegradationLadder:
        return self._ladder

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def metrics(self) -> ServiceMetrics:
        return self._metrics

    @property
    def venues(self) -> Tuple[str, ...]:
        return tuple(self._engines)

    @property
    def draining(self) -> bool:
        return self._draining

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Compile every venue (off-loop), arm the parallel rung's pools,
        and bind the socket; idempotent."""
        if self._server is not None:
            return
        for engine in self._engines.values():
            await asyncio.to_thread(engine.ensure_compiled)
        if RUNG_PARALLEL in self._ladder.rungs:
            options = self._config.parallel_options or {}
            for engine in self._engines.values():
                await asyncio.to_thread(
                    engine.parallel_executor, self._config.workers, **options
                )
        self._server = await asyncio.start_server(
            self._handle_client, self._config.host, self._config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started = True

    async def serve_forever(self) -> None:
        """Serve until cancelled (``python -m repro.service`` awaits this)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Drain, then close: stop admitting, flush every buffer, wait for
        in-flight batches and handlers, close the socket and the engines.
        Idempotent — the service analogue of the executors' ``close()``."""
        if self._closed:
            return
        self._draining = True
        for key in list(self._buffers):
            self._flush(key)
        while self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)
        deadline = time.monotonic() + self._config.drain_timeout_seconds
        while self._active_handlers > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            self._server = None
        for engine in self._engines.values():
            engine.close()
        self._closed = True

    # -- HTTP plumbing ---------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._active_handlers += 1
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self._config.client_timeout_seconds,
                    )
                except asyncio.TimeoutError:
                    self._metrics.received += 1
                    self._metrics.observe_outcome(408)
                    await self._respond(
                        writer,
                        408,
                        {"error": "request not received in time", "type": "ClientTimeout"},
                        keep_alive=False,
                    )
                    return
                except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
                    return  # disconnect or garbage framing: nothing to answer
                if request is None:
                    return  # clean EOF between requests (keep-alive close)
                http_method, path, body = request
                keep_alive = await self._dispatch(writer, http_method, path, body)
                if not keep_alive:
                    return
        finally:
            self._active_handlers -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF
            raise
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) < 3:
            raise ConnectionError("malformed request line")
        http_method, path = parts[0].upper(), parts[1]
        length = 0
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        length = int(value.strip())
                    except ValueError as exc:
                        raise ConnectionError("malformed content-length") from exc
        if length < 0 or length > self._config.max_body_bytes:
            raise ConnectionError("unacceptable content-length")
        body = await reader.readexactly(length) if length else b""
        return http_method, path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool = True,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # the client went away; its pending slot is still released

    async def _dispatch(
        self, writer: asyncio.StreamWriter, http_method: str, path: str, body: bytes
    ) -> bool:
        """Route one request; returns whether to keep the connection."""
        path = path.split("?", 1)[0]
        if path == "/query":
            if http_method != "POST":
                await self._respond(writer, 405, {"error": "POST only", "type": "MethodNotAllowed"})
                return True
            self._metrics.received += 1
            started = time.perf_counter()
            status, payload = await self._handle_query(body)
            self._metrics.observe_latency(time.perf_counter() - started)
            self._metrics.observe_outcome(status)
            await self._respond(writer, status, payload)
            return True
        if http_method != "GET":
            await self._respond(writer, 405, {"error": "GET only", "type": "MethodNotAllowed"})
            return True
        if path == "/healthz":
            await self._respond(writer, 200, {"status": "alive", "draining": self._draining})
            return True
        if path == "/readyz":
            ready = self._started and not self._draining
            payload = {
                "status": "ready" if ready else "not-ready",
                "draining": self._draining,
                "venues": list(self._engines),
                "ladder": self._ladder.snapshot(),
                "admission": self._admission.snapshot(),
            }
            await self._respond(writer, 200 if ready else 503, payload)
            return True
        if path == "/metrics":
            await self._respond(writer, 200, self._metrics_payload())
            return True
        await self._respond(writer, 404, {"error": f"no route {path}", "type": "NotFound"})
        return True

    def _metrics_payload(self) -> Dict[str, Any]:
        venues: Dict[str, Any] = {}
        for name, engine in self._engines.items():
            report = engine.last_execution_report
            venues[name] = {
                "cache": engine.cache.stats() if engine.cache is not None else None,
                "last_execution_report": report.as_dict() if report is not None else None,
            }
        return {
            "requests": self._metrics.snapshot(),
            "admission": self._admission.snapshot(),
            "ladder": self._ladder.snapshot(),
            "venues": venues,
        }

    # -- the query path --------------------------------------------------------

    async def _handle_query(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        if not self._started or self._draining:
            return 503, {
                "error": "draining" if self._draining else "not started",
                "type": "ServiceUnavailableError",
            }
        try:
            venue, method_name, query, deadline = self._parse_query(body)
        except (ReproError, ValueError, TypeError, KeyError) as exc:
            return 400, {"error": str(exc) or exc.__class__.__name__, "type": type(exc).__name__}
        try:
            self._admission.admit()
        except ServiceOverloadedError as exc:
            return 429, {"error": str(exc), "type": type(exc).__name__}
        try:
            result, rung = await self._enqueue(venue, method_name, query, deadline)
            return 200, self._result_payload(result, rung, venue)
        except DeadlineExceededError as exc:
            return 504, {"error": str(exc), "type": type(exc).__name__}
        except ServiceOverloadedError as exc:
            return 429, {"error": str(exc), "type": type(exc).__name__}
        except ServiceUnavailableError as exc:
            return 503, {"error": str(exc), "type": type(exc).__name__}
        except QueryError as exc:
            return 400, {"error": str(exc), "type": type(exc).__name__}
        except Exception as exc:  # noqa: BLE001 - the typed 500 boundary
            return 500, {"error": str(exc) or exc.__class__.__name__, "type": type(exc).__name__}
        finally:
            self._admission.release()

    def _parse_query(
        self, body: bytes
    ) -> Tuple[str, str, ITSPQuery, Optional[SearchDeadline]]:
        document = json.loads(body.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("the query body must be a JSON object")
        if "venue" in document:
            venue = str(document["venue"])
            if venue not in self._engines:
                raise ValueError(f"unknown venue {venue!r} (have {sorted(self._engines)})")
        elif len(self._engines) == 1:
            venue = next(iter(self._engines))
        else:
            raise ValueError(f"multi-venue service: pick a venue from {sorted(self._engines)}")
        method_name = canonical_method(str(document.get("method", "synchronous")))

        def point(name: str) -> IndoorPoint:
            raw = document[name]
            if not isinstance(raw, (list, tuple)) or len(raw) not in (2, 3):
                raise ValueError(f"{name} must be [x, y] or [x, y, floor]")
            floor = int(raw[2]) if len(raw) == 3 else 0
            return IndoorPoint(float(raw[0]), float(raw[1]), floor)

        query = ITSPQuery(point("source"), point("target"), document["time"])
        deadline_ms = document.get("deadline_ms", self._config.default_deadline_ms)
        deadline = None
        if deadline_ms is not None:
            budget = float(deadline_ms) / 1000.0
            if not budget > 0:
                raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
            deadline = SearchDeadline(budget)
        return venue, method_name, query, deadline

    @staticmethod
    def _result_payload(result: QueryResult, rung: str, venue: str) -> Dict[str, Any]:
        stats = result.statistics
        return {
            "venue": venue,
            "rung": rung,
            "method": result.method_label,
            "found": result.found,
            "length": result.length if result.found else None,
            "doors": list(result.path.door_sequence) if result.path is not None else [],
            "statistics": {
                "doors_settled": stats.doors_settled,
                "relaxations": stats.relaxations,
                "heap_pushes": stats.heap_pushes,
                "heap_pops": stats.heap_pops,
                "runtime_seconds": stats.runtime_seconds,
            },
        }

    async def _enqueue(
        self,
        venue: str,
        method_name: str,
        query: ITSPQuery,
        deadline: Optional[SearchDeadline],
    ) -> Tuple[QueryResult, str]:
        loop = asyncio.get_running_loop()
        member = _Member(query, deadline, loop.create_future())
        key = (venue, method_name)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = self._buffers[key] = []
            self._flush_handles[key] = loop.call_later(
                self._config.batch_window_ms / 1000.0, self._flush, key
            )
        buffer.append(member)
        if len(buffer) >= self._config.max_batch:
            self._flush(key)
        return await member.future

    def _flush(self, key: Tuple[str, str]) -> None:
        members = self._buffers.pop(key, None)
        handle = self._flush_handles.pop(key, None)
        if handle is not None:
            handle.cancel()
        if not members:
            return
        self._metrics.batches += 1
        task = asyncio.get_running_loop().create_task(
            self._run_batch(key[0], key[1], members)
        )
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    # -- rung execution --------------------------------------------------------

    async def _run_batch(self, venue: str, method_name: str, members: List[_Member]) -> None:
        """Run one flushed micro-batch down the ladder and resolve futures."""
        engine = self._engines[venue]
        lock = self._locks[venue]
        rung = None
        outcomes: List[Any] = []
        async with self._admission:
            rung = self._ladder.select()
            while True:
                try:
                    outcomes, report = await asyncio.to_thread(
                        self._execute_rung, engine, lock, venue, rung, method_name, members
                    )
                except DeadlineExceededError as exc:
                    # The shared budget (the *largest* member budget) ran
                    # out: every member is expired.  Not the rung's fault.
                    self._ladder.record(rung, True)
                    outcomes = [exc] * len(members)
                    break
                except QueryError as exc:
                    # A malformed member poisons a shared group search; the
                    # sequential rung isolates it so the other members still
                    # answer.  Not a rung-health event.
                    if rung in (RUNG_PARALLEL, RUNG_BATCH):
                        self._ladder.record(rung, True)
                        rung = RUNG_SEQUENTIAL
                        continue
                    # Lower rungs catch QueryError per member; reaching here
                    # means the fault hook raised it — answer it typed.
                    outcomes = [exc] * len(members)
                    break
                except Exception as exc:  # noqa: BLE001 - rung failure boundary
                    self._ladder.record(rung, False)
                    lower = self._ladder.select(start_after=rung)
                    if lower == rung:
                        outcomes = [exc] * len(members)
                        break
                    rung = lower
                    continue
                else:
                    self._ladder.record(rung, True)
                    if report is not None:
                        self._ladder.note_report(report)
                    break
        answered = sum(1 for outcome in outcomes if isinstance(outcome, QueryResult))
        if answered:
            self._metrics.observe_rung(rung, answered)
        for member, outcome in zip(members, outcomes):
            if member.future.done():
                continue
            if isinstance(outcome, BaseException):
                member.future.set_exception(outcome)
            else:
                member.future.set_result((outcome, rung))

    def _execute_rung(
        self,
        engine: ITSPQEngine,
        lock: threading.Lock,
        venue: str,
        rung: str,
        method_name: str,
        members: List[_Member],
    ) -> Tuple[List[Any], Any]:
        """Synchronous rung execution on a worker thread (venue serialised).

        Returns per-member outcomes (a :class:`QueryResult` or the typed
        exception) plus the :class:`~repro.core.parallel.ExecutionReport`
        of a parallel run; raises on rung-level failure."""
        hook = self._config.rung_fault_hook
        if hook is not None:
            hook(rung, venue)
        queries = [member.query for member in members]
        with lock:
            if rung == RUNG_PARALLEL:
                results = engine.run_batch(queries, method_name, workers=self._config.workers)
                return self._post_hoc_deadlines(members, results), engine.last_execution_report
            if rung == RUNG_BATCH:
                group_deadline = self._group_deadline(members)
                results = engine.run_batch(queries, method_name, deadline=group_deadline)
                return self._post_hoc_deadlines(members, results), None
            if rung == RUNG_SEQUENTIAL:
                outcomes: List[Any] = []
                for member in members:
                    try:
                        outcomes.append(
                            engine.run(member.query, method=method_name, deadline=member.deadline)
                        )
                    except (DeadlineExceededError, QueryError) as exc:
                        outcomes.append(exc)
                return outcomes, None
            # cache-replay: answers hits, sheds misses — no search ever runs.
            outcomes = []
            for member in members:
                try:
                    result = engine.answer_from_cache(member.query, method=method_name)
                except QueryError as exc:
                    outcomes.append(exc)
                    continue
                if result is None:
                    outcomes.append(
                        ServiceOverloadedError(
                            "degraded to cache-replay and this query's tree is not cached"
                        )
                    )
                else:
                    outcomes.append(result)
            return outcomes, None

    @staticmethod
    def _group_deadline(members: List[_Member]) -> Optional[SearchDeadline]:
        """The shared budget of one micro-batch: the largest remaining
        member budget, or none at all if any member is unbounded.  Raises
        when every member's budget is already spent."""
        budgets = []
        for member in members:
            if member.deadline is None:
                return None
            budgets.append(member.deadline.remaining())
        longest = max(budgets)
        if longest <= 0:
            raise DeadlineExceededError("every member budget expired before dispatch")
        return SearchDeadline(longest)

    @staticmethod
    def _post_hoc_deadlines(members: List[_Member], results: List[QueryResult]) -> List[Any]:
        """Per-member expiry after a shared run: the search completed, but a
        member whose own budget is gone is answered 504 — its client asked
        for a bound, not a best effort."""
        outcomes: List[Any] = []
        for member, result in zip(members, results):
            if member.deadline is not None and member.deadline.expired:
                outcomes.append(
                    DeadlineExceededError(
                        f"search deadline of {member.deadline.budget_seconds:.3f}s exceeded"
                    )
                )
            else:
                outcomes.append(result)
        return outcomes
