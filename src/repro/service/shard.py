"""Sharded multi-process serving: a venue router over N service processes.

One :class:`ITSPQService` process serves many venues well, but it is still
one process: one GIL, one degradation ladder, one blast radius.  The next
scale step (the ROADMAP's "router front-end over N service processes") is
this module — a :class:`ShardRouter` that owns a **static venue→shard
map**, spawns and supervises N worker processes (each an ordinary
``python -m repro.service`` serving its venue subset on its own localhost
port), and proxies ``POST /query`` by venue:

* **Routing.**  The router peeks at the request body only far enough to
  resolve the venue, then forwards the body **verbatim** to the owning
  shard over a pooled keep-alive connection and relays the shard's answer
  byte for byte.  Everything the single-process service guarantees —
  bit-identical answers, typed admission errors, ``deadline_ms`` carried in
  the request body — therefore survives sharding by construction: the
  router adds routing, never interpretation.
* **Isolation.**  Each shard has a bounded in-flight budget (excess sheds a
  typed ``429`` at the router, before any bytes reach a loaded shard) and
  its own failure domain: a dead shard answers ``503`` for *its* venues
  while every other shard keeps serving.
* **Supervision.**  A per-shard supervisor task waits on the worker
  process; an unexpected exit marks the shard down, discards its pooled
  connections, and respawns it with bounded exponential backoff
  (``min(cap, base * 2**n)``), re-waiting for the worker's ``listening on``
  line.  Supervised respawn is invisible to other shards and, once the
  worker is back, to clients of the dead shard's venues too.
* **Aggregation.**  ``GET /healthz`` / ``/readyz`` / ``/metrics`` answer
  for the whole deployment: per-shard process state (pid, port, deaths,
  respawns) plus each live shard's scraped ``/metrics`` and a summed
  cross-shard view (:func:`repro.service.metrics.aggregate_request_snapshots`).

Worker processes are real ``python -m repro.service`` subprocesses — the
same entry point, flags and lifecycle a single-process deployment uses
(SIGINT → drain → ``drained and closed``), so everything in
``docs/OPERATIONS.md`` about one service process applies verbatim to every
shard.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.service.metrics import aggregate_request_snapshots

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Shard process states surfaced by ``/readyz`` and ``/metrics``.
SHARD_STARTING = "starting"  #: spawned, waiting for its ``listening on`` line.
SHARD_UP = "up"  #: serving; the only state the router proxies to.
SHARD_DOWN = "down"  #: died unexpectedly; the supervisor is respawning it.
SHARD_FAILED = "failed"  #: gave up after ``max_respawns`` failed respawns.
SHARD_STOPPED = "stopped"  #: drained deliberately by :meth:`ShardRouter.aclose`.


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the static plan: a name and the venues it owns.

    ``venue_specs`` are ``NAME=SPEC`` strings in the ``--venue`` syntax of
    ``python -m repro.service`` (``SPEC`` is ``example``, ``mall`` or a
    compiled-codec payload path); they become the worker's command line, so
    the worker builds or rehydrates exactly the venues this shard owns.
    """

    name: str
    venue_specs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a shard needs a non-empty name")
        if not self.venue_specs:
            raise ValueError(f"shard {self.name!r} owns no venues")

    @property
    def venues(self) -> Tuple[str, ...]:
        """The venue names this shard owns (the routing keys)."""
        return tuple(spec.partition("=")[0] for spec in self.venue_specs)


def plan_shards(venue_specs: Sequence[str], shard_count: int) -> List[ShardSpec]:
    """Round-robin ``NAME=SPEC`` venue entries over ``shard_count`` shards.

    The assignment is deterministic (venue *i* goes to shard ``i % N``), so
    the same command line always yields the same venue→shard map — the map
    is static configuration, not runtime balancing.  Raises ``ValueError``
    for an empty plan, more shards than venues (a shard with nothing to
    serve is a misconfiguration, not a spare), or duplicate venue names.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be positive, got {shard_count}")
    entries = list(venue_specs)
    if not entries:
        raise ValueError("the shard plan needs at least one venue")
    if shard_count > len(entries):
        raise ValueError(
            f"more shards ({shard_count}) than venues ({len(entries)}): every shard must own a venue"
        )
    names = [entry.partition("=")[0] for entry in entries]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate venue names in the shard plan: {sorted(names)}")
    buckets: List[List[str]] = [[] for _ in range(shard_count)]
    for index, entry in enumerate(entries):
        buckets[index % shard_count].append(entry)
    return [
        ShardSpec(name=f"shard-{index}", venue_specs=tuple(bucket))
        for index, bucket in enumerate(buckets)
    ]


@dataclass
class ShardRouterConfig:
    """Tunables of one :class:`ShardRouter` (validated at construction —
    every violation names the offending field).

    Parameters
    ----------
    host / port:
        The router's bind address; ``port=0`` picks a free port (read it
        back from ``router.port`` after :meth:`ShardRouter.start`).
    pool_size:
        Idle keep-alive connections kept per shard; requests above the pool
        open (and then discard) extra connections rather than queueing.
    max_inflight_per_shard:
        Proxied requests in flight to one shard at once; excess sheds with
        a typed ``429`` at the router, before the shard sees any bytes.
    client_timeout_seconds:
        Reading a client request longer than this answers ``408``.
    shard_request_timeout_seconds:
        A proxied request unanswered by its shard within this answers
        ``504`` and the connection is discarded (never pooled again).
    startup_timeout_seconds:
        How long a spawning worker may take to print ``listening on``.
    respawn_backoff_base / respawn_backoff_cap:
        The n-th consecutive respawn attempt after a shard death waits
        ``min(cap, base * 2**(n-1))`` seconds.
    max_respawns:
        Consecutive *failed* respawn attempts before a shard is declared
        ``failed`` and left down (``None`` retries forever); a successful
        respawn resets the count.
    drain_timeout_seconds:
        How long :meth:`ShardRouter.aclose` waits for in-flight proxies,
        and then for each SIGINTed worker to drain, before escalating.
    worker_args:
        Extra command-line arguments appended to every worker's
        ``python -m repro.service`` invocation (``--cache``, ``--workers``,
        ``--window-ms``, ...), so shard tuning is the single-process tuning.
    max_body_bytes:
        Client request bodies above this answer ``400``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    pool_size: int = 4
    max_inflight_per_shard: int = 64
    client_timeout_seconds: float = 5.0
    shard_request_timeout_seconds: float = 30.0
    startup_timeout_seconds: float = 120.0
    respawn_backoff_base: float = 0.5
    respawn_backoff_cap: float = 30.0
    max_respawns: Optional[int] = None
    drain_timeout_seconds: float = 15.0
    worker_args: Tuple[str, ...] = ()
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError(f"pool_size must be positive, got {self.pool_size}")
        if self.max_inflight_per_shard < 1:
            raise ValueError(
                f"max_inflight_per_shard must be positive, got {self.max_inflight_per_shard}"
            )
        if not self.client_timeout_seconds > 0:
            raise ValueError(
                f"client_timeout_seconds must be positive, got {self.client_timeout_seconds}"
            )
        if not self.shard_request_timeout_seconds > 0:
            raise ValueError(
                "shard_request_timeout_seconds must be positive, "
                f"got {self.shard_request_timeout_seconds}"
            )
        if not self.startup_timeout_seconds > 0:
            raise ValueError(
                f"startup_timeout_seconds must be positive, got {self.startup_timeout_seconds}"
            )
        if self.respawn_backoff_base < 0:
            raise ValueError(
                f"respawn_backoff_base must be non-negative, got {self.respawn_backoff_base}"
            )
        if self.respawn_backoff_cap < 0:
            raise ValueError(
                f"respawn_backoff_cap must be non-negative, got {self.respawn_backoff_cap}"
            )
        if self.max_respawns is not None and self.max_respawns < 1:
            raise ValueError(f"max_respawns must be positive or None, got {self.max_respawns}")
        if self.drain_timeout_seconds < 0:
            raise ValueError(
                f"drain_timeout_seconds must be non-negative, got {self.drain_timeout_seconds}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be positive, got {self.max_body_bytes}")


class RouterMetrics:
    """The router's own counters (routing outcomes, not search outcomes).

    Search outcomes live in each shard's metrics; the router only counts
    what *it* decided (routed, shed, shard-unavailable, proxy failures) and
    what it relayed (``responses_by_status``), plus end-to-end latency over
    a bounded newest-wins reservoir.
    """

    def __init__(self, reservoir_size: int = 8192):
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be positive, got {reservoir_size}")
        self.received = 0
        self.routed = 0  # forwarded to a shard and answered by it
        self.bad_requests = 0  # 400s the router itself produced
        self.shed = 0  # 429s from the per-shard in-flight budget
        self.shard_unavailable = 0  # 503s while the owning shard is down
        self.proxy_failures = 0  # 502s: connection to the shard broke
        self.proxy_timeouts = 0  # 504s: shard_request_timeout_seconds expired
        self.client_timeouts = 0  # 408s: slow clients
        self.unavailable = 0  # 503s while the router drains
        self.routed_by_shard: Dict[str, int] = {}
        self.responses_by_status: Dict[str, int] = {}
        self._latencies: Deque[float] = deque(maxlen=reservoir_size)

    def observe_routed(self, shard: str, status: int, seconds: float) -> None:
        """Count one request answered end-to-end through ``shard``."""
        self.routed += 1
        self.routed_by_shard[shard] = self.routed_by_shard.get(shard, 0) + 1
        key = str(status)
        self.responses_by_status[key] = self.responses_by_status.get(key, 0) + 1
        self._latencies.append(seconds)

    def percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile of the latency reservoir (or ``None``)."""
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` payload's ``router`` section."""
        return {
            "received": self.received,
            "routed": self.routed,
            "bad_requests": self.bad_requests,
            "shed": self.shed,
            "shard_unavailable": self.shard_unavailable,
            "proxy_failures": self.proxy_failures,
            "proxy_timeouts": self.proxy_timeouts,
            "client_timeouts": self.client_timeouts,
            "unavailable": self.unavailable,
            "routed_by_shard": dict(self.routed_by_shard),
            "responses_by_status": dict(self.responses_by_status),
            "latency_samples": len(self._latencies),
            "latency_p50_seconds": self.percentile(0.50),
            "latency_p99_seconds": self.percentile(0.99),
        }


class _ShardHandle:
    """Mutable per-shard state: the worker process and its plumbing."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.state = SHARD_STARTING
        self.process: Optional[asyncio.subprocess.Process] = None
        self.host = ""
        self.port = 0
        self.pid: Optional[int] = None
        self.deaths = 0  # unexpected worker exits
        self.respawns = 0  # successful supervised respawns
        self.inflight = 0
        self.idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self.last_error: Optional[str] = None
        self.stderr_tail: Deque[str] = deque(maxlen=50)
        self.supervisor: Optional[asyncio.Task] = None
        self.drain_tasks: List[asyncio.Task] = []

    def snapshot(self) -> Dict[str, object]:
        """Process-level state for ``/readyz`` and ``/metrics``."""
        return {
            "state": self.state,
            "pid": self.pid,
            "port": self.port,
            "venues": list(self.spec.venues),
            "deaths": self.deaths,
            "respawns": self.respawns,
            "inflight": self.inflight,
            "idle_connections": len(self.idle),
            "last_error": self.last_error,
        }


class ShardRouter:
    """The sharded serving topology's front-end (see the module docstring)."""

    def __init__(self, shards: Sequence[ShardSpec], config: Optional[ShardRouterConfig] = None):
        shards = list(shards)
        if not shards:
            raise ValueError("the router needs at least one shard")
        names = [spec.name for spec in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {names}")
        self._config = config if config is not None else ShardRouterConfig()
        self._handles: Dict[str, _ShardHandle] = {spec.name: _ShardHandle(spec) for spec in shards}
        self._venue_to_shard: Dict[str, str] = {}
        for spec in shards:
            for venue in spec.venues:
                if venue in self._venue_to_shard:
                    raise ValueError(
                        f"venue {venue!r} assigned to both "
                        f"{self._venue_to_shard[venue]!r} and {spec.name!r}"
                    )
                self._venue_to_shard[venue] = spec.name
        self._metrics = RouterMetrics()
        self._server: Optional[asyncio.base_events.Server] = None
        self._started = False
        self._draining = False
        self._closed = False
        self._active_handlers = 0
        self.host: str = self._config.host
        self.port: int = self._config.port

    # -- introspection ---------------------------------------------------------

    @property
    def config(self) -> ShardRouterConfig:
        return self._config

    @property
    def metrics(self) -> RouterMetrics:
        return self._metrics

    @property
    def venues(self) -> Tuple[str, ...]:
        return tuple(self._venue_to_shard)

    @property
    def shard_names(self) -> Tuple[str, ...]:
        return tuple(self._handles)

    @property
    def draining(self) -> bool:
        return self._draining

    def shard_of(self, venue: str) -> str:
        """The shard name owning ``venue`` (KeyError for unknown venues)."""
        return self._venue_to_shard[venue]

    def shard_snapshot(self, name: str) -> Dict[str, object]:
        """One shard's process-level state (see ``_ShardHandle.snapshot``)."""
        return self._handles[name].snapshot()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every shard, wait for all of them to listen, bind the
        router socket and start the supervisors; idempotent."""
        if self._server is not None:
            return
        spawns = [self._spawn(handle) for handle in self._handles.values()]
        outcomes = await asyncio.gather(*spawns, return_exceptions=True)
        failures = [outcome for outcome in outcomes if isinstance(outcome, BaseException)]
        if failures:
            await self._kill_workers()
            raise RuntimeError(f"shard startup failed: {failures[0]}") from failures[0]
        for handle in self._handles.values():
            handle.supervisor = asyncio.get_running_loop().create_task(self._supervise(handle))
        self._server = await asyncio.start_server(
            self._handle_client, self._config.host, self._config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started = True

    async def serve_forever(self) -> None:
        """Serve until cancelled (``python -m repro.service --shards`` awaits this)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Drain, then close: stop admitting, wait for in-flight proxies,
        SIGINT every worker and wait for its graceful drain, close the
        socket and the pools.  Idempotent."""
        if self._closed:
            return
        self._draining = True
        deadline = time.monotonic() + self._config.drain_timeout_seconds
        while self._active_handlers > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for handle in self._handles.values():
            if handle.supervisor is not None:
                handle.supervisor.cancel()
        for handle in self._handles.values():
            if handle.supervisor is not None:
                try:
                    await handle.supervisor
                except (asyncio.CancelledError, Exception):
                    pass
        await self._stop_workers()
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            self._server = None
        for handle in self._handles.values():
            self._discard_idle(handle)
        self._closed = True

    async def _stop_workers(self) -> None:
        """SIGINT every live worker (its drain path), escalating to SIGKILL
        after the drain timeout."""

        async def stop(handle: _ShardHandle) -> None:
            process = handle.process
            if process is None or process.returncode is not None:
                handle.state = SHARD_STOPPED
                return
            try:
                process.send_signal(signal.SIGINT)
            except ProcessLookupError:
                handle.state = SHARD_STOPPED
                return
            try:
                await asyncio.wait_for(process.wait(), timeout=self._config.drain_timeout_seconds)
            except asyncio.TimeoutError:
                process.kill()
                await process.wait()
            handle.state = SHARD_STOPPED

        await asyncio.gather(*(stop(handle) for handle in self._handles.values()))

    async def _kill_workers(self) -> None:
        for handle in self._handles.values():
            if handle.process is not None and handle.process.returncode is None:
                try:
                    handle.process.kill()
                    await handle.process.wait()
                except ProcessLookupError:
                    pass

    # -- worker process management ---------------------------------------------

    def _worker_command(self, spec: ShardSpec) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro.service",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
        ]
        for venue_spec in spec.venue_specs:
            command.extend(("--venue", venue_spec))
        command.extend(self._config.worker_args)
        return command

    @staticmethod
    def _worker_env() -> Dict[str, str]:
        """The child environment: the parent's, with the running ``repro``
        package's source root prepended to ``PYTHONPATH`` so workers import
        the exact code the router runs (checkout or installed alike)."""
        import repro

        env = dict(os.environ)
        source_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH", "")
        parts = [source_root] + ([existing] if existing else [])
        env["PYTHONPATH"] = os.pathsep.join(parts)
        return env

    async def _spawn(self, handle: _ShardHandle) -> None:
        """Start one worker and wait for its ``listening on`` line."""
        handle.state = SHARD_STARTING
        process = await asyncio.create_subprocess_exec(
            *self._worker_command(handle.spec),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=self._worker_env(),
        )
        handle.process = process
        handle.pid = process.pid
        try:
            deadline = time.monotonic() + self._config.startup_timeout_seconds
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise asyncio.TimeoutError
                line = await asyncio.wait_for(process.stdout.readline(), timeout=remaining)
                if not line:
                    stderr = await process.stderr.read()
                    raise RuntimeError(
                        f"shard {handle.spec.name} exited before listening: "
                        f"{stderr.decode(errors='replace')[-2000:]}"
                    )
                text = line.decode(errors="replace").strip()
                if text.startswith("listening on "):
                    address = text.split(" ")[-1]
                    host, _, port = address.rpartition(":")
                    handle.host, handle.port = host, int(port)
                    break
        except asyncio.TimeoutError:
            process.kill()
            await process.wait()
            raise RuntimeError(
                f"shard {handle.spec.name} did not report listening within "
                f"{self._config.startup_timeout_seconds}s"
            ) from None
        except BaseException:
            if process.returncode is None:
                process.kill()
                await process.wait()
            raise
        handle.state = SHARD_UP
        handle.last_error = None
        loop = asyncio.get_running_loop()
        handle.drain_tasks = [
            loop.create_task(self._drain_stream(process.stdout, None)),
            loop.create_task(self._drain_stream(process.stderr, handle.stderr_tail)),
        ]

    @staticmethod
    async def _drain_stream(stream: asyncio.StreamReader, tail: Optional[Deque[str]]) -> None:
        """Keep a worker pipe from filling; remember the last lines."""
        try:
            while True:
                line = await stream.readline()
                if not line:
                    return
                if tail is not None:
                    tail.append(line.decode(errors="replace").rstrip())
        except (asyncio.CancelledError, Exception):
            return

    async def _supervise(self, handle: _ShardHandle) -> None:
        """Respawn ``handle`` with bounded backoff every time it dies."""
        while not self._draining:
            process = handle.process
            if process is None:
                return
            await process.wait()
            if self._draining:
                return
            handle.deaths += 1
            handle.state = SHARD_DOWN
            handle.last_error = (
                f"worker pid {handle.pid} exited with {process.returncode}"
            )
            self._discard_idle(handle)
            attempt = 0
            while not self._draining:
                delay = min(
                    self._config.respawn_backoff_cap,
                    self._config.respawn_backoff_base * (2**attempt),
                )
                await asyncio.sleep(delay)
                if self._draining:
                    return
                try:
                    await self._spawn(handle)
                except Exception as exc:
                    attempt += 1
                    handle.last_error = str(exc)
                    if (
                        self._config.max_respawns is not None
                        and attempt >= self._config.max_respawns
                    ):
                        handle.state = SHARD_FAILED
                        return
                else:
                    handle.respawns += 1
                    break

    # -- connection pooling ----------------------------------------------------

    def _discard_idle(self, handle: _ShardHandle) -> None:
        while handle.idle:
            _reader, writer = handle.idle.pop()
            try:
                writer.close()
            except Exception:
                pass

    async def _shard_request(
        self, handle: _ShardHandle, method: str, path: str, body: bytes, retry: bool = True
    ) -> Tuple[int, bytes]:
        """One request/response exchange with a shard over a pooled
        connection.  A send/receive failure on a *reused* connection retries
        once on a fresh one (the shard may have closed the idle socket);
        query proxying is safe to retry because a query is a pure read."""
        fresh = not handle.idle
        if handle.idle:
            reader, writer = handle.idle.pop()
        else:
            reader, writer = await asyncio.open_connection(handle.host, handle.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            status_head = await reader.readuntil(b"\r\n\r\n")
            status = int(status_head.split(b" ")[1])
            length = 0
            keep_alive = True
            for line in status_head.split(b"\r\n"):
                lowered = line.lower()
                if lowered.startswith(b"content-length"):
                    length = int(line.split(b":")[1])
                elif lowered.startswith(b"connection") and b"close" in lowered:
                    keep_alive = False
            payload = await reader.readexactly(length) if length else b""
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            try:
                writer.close()
            except Exception:
                pass
            if not fresh and retry:
                return await self._shard_request(handle, method, path, body, retry=False)
            raise ConnectionError(f"shard {handle.spec.name} connection failed: {exc}") from exc
        except BaseException:
            # Cancellation (the proxy timeout) or anything unexpected: the
            # connection may hold a half-read response — never pool it.
            try:
                writer.close()
            except Exception:
                pass
            raise
        if (
            keep_alive
            and handle.state == SHARD_UP
            and len(handle.idle) < self._config.pool_size
        ):
            handle.idle.append((reader, writer))
        else:
            try:
                writer.close()
            except Exception:
                pass
        return status, payload

    # -- HTTP plumbing (client side) -------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._active_handlers += 1
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self._config.client_timeout_seconds,
                    )
                except asyncio.TimeoutError:
                    self._metrics.received += 1
                    self._metrics.client_timeouts += 1
                    await self._respond_json(
                        writer,
                        408,
                        {"error": "request not received in time", "type": "ClientTimeout"},
                        keep_alive=False,
                    )
                    return
                except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
                    return
                if request is None:
                    return
                http_method, path, body = request
                keep_alive = await self._dispatch(writer, http_method, path, body)
                if not keep_alive:
                    return
        finally:
            self._active_handlers -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) < 3:
            raise ConnectionError("malformed request line")
        http_method, path = parts[0].upper(), parts[1]
        length = 0
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        length = int(value.strip())
                    except ValueError as exc:
                        raise ConnectionError("malformed content-length") from exc
        if length < 0 or length > self._config.max_body_bytes:
            raise ConnectionError("unacceptable content-length")
        body = await reader.readexactly(length) if length else b""
        return http_method, path, body

    async def _respond_raw(
        self, writer: asyncio.StreamWriter, status: int, body: bytes, keep_alive: bool = True
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool = True,
    ) -> None:
        await self._respond_raw(
            writer, status, json.dumps(payload).encode("utf-8"), keep_alive=keep_alive
        )

    # -- routing ---------------------------------------------------------------

    async def _dispatch(
        self, writer: asyncio.StreamWriter, http_method: str, path: str, body: bytes
    ) -> bool:
        path = path.split("?", 1)[0]
        if path == "/query":
            if http_method != "POST":
                await self._respond_json(
                    writer, 405, {"error": "POST only", "type": "MethodNotAllowed"}
                )
                return True
            self._metrics.received += 1
            status, payload = await self._route_query(body)
            await self._respond_raw(writer, status, payload)
            return True
        if http_method != "GET":
            await self._respond_json(writer, 405, {"error": "GET only", "type": "MethodNotAllowed"})
            return True
        if path == "/healthz":
            await self._respond_json(
                writer,
                200,
                {
                    "status": "alive",
                    "draining": self._draining,
                    "shards": {
                        name: handle.state for name, handle in self._handles.items()
                    },
                },
            )
            return True
        if path == "/readyz":
            all_up = all(handle.state == SHARD_UP for handle in self._handles.values())
            ready = self._started and not self._draining and all_up
            payload = {
                "status": "ready" if ready else "not-ready",
                "draining": self._draining,
                "venues": sorted(self._venue_to_shard),
                "shards": {name: handle.snapshot() for name, handle in self._handles.items()},
            }
            await self._respond_json(writer, 200 if ready else 503, payload)
            return True
        if path == "/metrics":
            await self._respond_json(writer, 200, await self._metrics_payload())
            return True
        await self._respond_json(writer, 404, {"error": f"no route {path}", "type": "NotFound"})
        return True

    async def _metrics_payload(self) -> Dict[str, Any]:
        """The aggregated ``/metrics`` document: the router's own counters,
        per-shard process state + each live shard's scraped metrics, and the
        summed cross-shard ``aggregate`` section."""

        async def scrape(handle: _ShardHandle) -> Optional[Dict[str, Any]]:
            if handle.state != SHARD_UP:
                return None
            try:
                status, payload = await asyncio.wait_for(
                    self._shard_request(handle, "GET", "/metrics", b""),
                    timeout=min(5.0, self._config.shard_request_timeout_seconds),
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                return None
            if status != 200:
                return None
            try:
                return json.loads(payload)
            except ValueError:
                return None

        handles = list(self._handles.values())
        scraped = await asyncio.gather(*(scrape(handle) for handle in handles))
        shards: Dict[str, Any] = {}
        request_sections = []
        for handle, metrics in zip(handles, scraped):
            entry = handle.snapshot()
            entry["metrics"] = metrics
            shards[handle.spec.name] = entry
            if metrics is not None and isinstance(metrics.get("requests"), dict):
                request_sections.append(metrics["requests"])
        return {
            "router": self._metrics.snapshot(),
            "shards": shards,
            "aggregate": aggregate_request_snapshots(request_sections),
        }

    def _resolve_venue(self, body: bytes) -> str:
        """The venue a ``/query`` body routes to (raises ``ValueError``)."""
        document = json.loads(body.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("the query body must be a JSON object")
        if "venue" in document:
            venue = str(document["venue"])
            if venue not in self._venue_to_shard:
                raise ValueError(
                    f"unknown venue {venue!r} (have {sorted(self._venue_to_shard)})"
                )
            return venue
        if len(self._venue_to_shard) == 1:
            return next(iter(self._venue_to_shard))
        raise ValueError(
            f"multi-venue deployment: pick a venue from {sorted(self._venue_to_shard)}"
        )

    async def _route_query(self, body: bytes) -> Tuple[int, bytes]:
        """Proxy one ``POST /query`` to the shard owning its venue."""

        def error(status: int, message: str, error_type: str, **extra: Any) -> Tuple[int, bytes]:
            payload = {"error": message, "type": error_type, **extra}
            return status, json.dumps(payload).encode("utf-8")

        if not self._started or self._draining:
            self._metrics.unavailable += 1
            return error(
                503,
                "draining" if self._draining else "not started",
                "ServiceUnavailableError",
            )
        try:
            venue = self._resolve_venue(body)
        except (ValueError, TypeError, KeyError) as exc:
            self._metrics.bad_requests += 1
            return error(400, str(exc) or exc.__class__.__name__, type(exc).__name__)
        shard_name = self._venue_to_shard[venue]
        handle = self._handles[shard_name]
        if handle.state != SHARD_UP:
            self._metrics.shard_unavailable += 1
            return error(
                503,
                f"shard {shard_name!r} (venue {venue!r}) is {handle.state}",
                "ServiceUnavailableError",
                shard=shard_name,
            )
        if handle.inflight >= self._config.max_inflight_per_shard:
            self._metrics.shed += 1
            return error(
                429,
                f"shard {shard_name!r} in-flight budget full "
                f"({handle.inflight}/{self._config.max_inflight_per_shard})",
                "ServiceOverloadedError",
                shard=shard_name,
            )
        handle.inflight += 1
        started = time.perf_counter()
        try:
            status, payload = await asyncio.wait_for(
                self._shard_request(handle, "POST", "/query", body),
                timeout=self._config.shard_request_timeout_seconds,
            )
        except asyncio.TimeoutError:
            self._metrics.proxy_timeouts += 1
            return error(
                504,
                f"shard {shard_name!r} did not answer within "
                f"{self._config.shard_request_timeout_seconds}s",
                "ShardTimeoutError",
                shard=shard_name,
            )
        except (ConnectionError, OSError) as exc:
            # The shard died mid-request (the supervisor will notice and
            # respawn); this request is answered 502 rather than retried —
            # the router never silently re-runs work on a dying process.
            self._metrics.proxy_failures += 1
            return error(502, str(exc), "ShardConnectionError", shard=shard_name)
        finally:
            handle.inflight -= 1
        self._metrics.observe_routed(shard_name, status, time.perf_counter() - started)
        return status, payload
