"""Synthetic data generators reproducing the paper's evaluation setting.

The paper's experiments (Section III) use:

* a multi-floor indoor space derived from a real shopping-mall floor plan,
  decomposed into regular partitions — 141 partitions and 224 doors per
  1368 m x 1368 m floor, 5 floors connected by four staircases with 20 m
  stairways (705 partitions / 1120 doors in the default setting);
* door Active Time Intervals derived from crawled opening hours of shops in
  five Hong Kong malls, reduced to checkpoint sets ``T`` of size 4–16 with up
  to three ATIs per door;
* query instances whose source-to-target indoor distance is controlled by a
  parameter δs2t ∈ {1100, ..., 1900} m, five origin/destination pairs per
  setting, issued at a fixed time of day.

Neither the digitised floor plan nor the crawled shop hours are published, so
this package generates statistically equivalent substitutes (see DESIGN.md
§3): a parametric mall-style floor generator, an opening-hours model with
realistic per-category profiles, and a δs2t-controlled workload generator.
All generators are deterministic given a seed.
"""

from repro.synthetic.floorplan import MallFloorConfig, generate_mall_floor
from repro.synthetic.multifloor import MultiFloorConfig, generate_mall_venue
from repro.synthetic.schedules import MallHoursModel, ScheduleConfig, generate_schedule
from repro.synthetic.queries import (
    QueryWorkloadConfig,
    door_distances_from_point,
    generate_query_instances,
)

__all__ = [
    "MallFloorConfig",
    "generate_mall_floor",
    "MultiFloorConfig",
    "generate_mall_venue",
    "MallHoursModel",
    "ScheduleConfig",
    "generate_schedule",
    "QueryWorkloadConfig",
    "generate_query_instances",
    "door_distances_from_point",
]
