"""Parametric generator of one mall-style floor.

The generated floor mirrors the structure of the paper's decomposed shopping
mall floor plan: three horizontal corridors (each decomposed into regular
hallway cells), a vertical spine corridor connecting them, rows of shops on
both sides of every corridor, four anchor stores, a food court, a private
back-of-house block, and exterior doors.  At the default configuration one
floor yields ≈140 partitions and ≈220 doors on a 1368 m x 1368 m footprint —
the same scale as the paper's 141 partitions / 224 doors.

All randomness (which shops get a second door, which are private storage
areas) is driven by an explicit ``random.Random`` instance, so floors are
reproducible given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.constants import DEFAULT_FLOOR_SIDE_M
from repro.geometry.point import IndoorPoint
from repro.indoor.builder import IndoorSpaceBuilder
from repro.indoor.entities import PartitionCategory, PartitionType
from repro.indoor.space import IndoorSpace


@dataclass
class MallFloorConfig:
    """Tunable parameters of the floor generator.

    The defaults approximate the paper's per-floor scale; benchmarks that
    need a smaller venue (unit tests, CI) shrink ``shops_per_row`` and
    ``corridor_cells``.
    """

    #: Side length of the (square) floor in metres.
    side: float = DEFAULT_FLOOR_SIDE_M
    #: Number of horizontal corridors.
    corridors: int = 3
    #: Number of hallway cells each corridor is decomposed into.
    corridor_cells: int = 8
    #: Corridor width in metres.
    corridor_width: float = 12.0
    #: Depth (in metres) of the shop rows flanking each corridor.
    shop_depth: float = 60.0
    #: Number of shop slots per row (one slot per row is consumed by the spine).
    shops_per_row: int = 20
    #: Fraction of shops that receive a second door onto their corridor.
    double_door_fraction: float = 0.8
    #: Fraction of shops converted to private storage areas.
    private_shop_fraction: float = 0.05
    #: Number of exterior doors to the outdoors.
    exterior_doors: int = 4
    #: Whether to add the outdoor pseudo-partition and exterior doors.
    include_outdoors: bool = False

    def corridor_centres(self) -> List[float]:
        """Evenly spaced y-coordinates of the corridor centre lines."""
        step = self.side / (self.corridors + 1)
        return [step * (index + 1) for index in range(self.corridors)]


@dataclass
class FloorLayout:
    """Description of a generated floor, returned alongside the space.

    Keeps the identifiers the multi-floor assembler and the workload
    generator need: which partitions are hallway cells (candidate staircase
    anchors), which are shops, and the doors added per category.
    """

    floor: int
    hallway_cells: List[str] = field(default_factory=list)
    shops: List[str] = field(default_factory=list)
    anchors: List[str] = field(default_factory=list)
    private_partitions: List[str] = field(default_factory=list)
    doors: List[str] = field(default_factory=list)
    corner_hallways: List[str] = field(default_factory=list)


class _FloorBuilder:
    """Internal helper that incrementally lays out one floor."""

    def __init__(self, builder: IndoorSpaceBuilder, config: MallFloorConfig, floor: int, rng: random.Random):
        self.builder = builder
        self.config = config
        self.floor = floor
        self.rng = rng
        self.layout = FloorLayout(floor=floor)
        self._door_counter = 0
        self._partition_counter = 0

    # -- identifier helpers --------------------------------------------------------

    def next_partition_id(self, kind: str) -> str:
        self._partition_counter += 1
        return f"f{self.floor}-{kind}-{self._partition_counter}"

    def next_door_id(self, kind: str) -> str:
        self._door_counter += 1
        door_id = f"f{self.floor}-{kind}-door-{self._door_counter}"
        self.layout.doors.append(door_id)
        return door_id

    # -- corridors --------------------------------------------------------------------

    def build_corridors(self) -> List[List[str]]:
        """Create the horizontal corridors, decomposed into hallway cells.

        Returns, per corridor, the ordered list of its cell identifiers.
        """
        config = self.config
        cells_by_corridor: List[List[str]] = []
        cell_width = config.side / config.corridor_cells
        for corridor_index, centre in enumerate(config.corridor_centres()):
            y_min = centre - config.corridor_width / 2
            y_max = centre + config.corridor_width / 2
            cells: List[str] = []
            for cell_index in range(config.corridor_cells):
                x_min = cell_index * cell_width
                x_max = x_min + cell_width
                cell_id = self.next_partition_id(f"hall{corridor_index}")
                self.builder.add_rectangle_partition(
                    cell_id,
                    x_min,
                    y_min,
                    x_max,
                    y_max,
                    floor=self.floor,
                    category=PartitionCategory.HALLWAY,
                    name=f"corridor {corridor_index} cell {cell_index}",
                )
                cells.append(cell_id)
                self.layout.hallway_cells.append(cell_id)
            # Virtual doors between adjacent hallway cells of the corridor.
            for cell_index in range(config.corridor_cells - 1):
                x_wall = (cell_index + 1) * cell_width
                self.builder.add_door(
                    self.next_door_id("hall"),
                    IndoorPoint(x_wall, centre, self.floor),
                    between=(cells[cell_index], cells[cell_index + 1]),
                )
            cells_by_corridor.append(cells)
            self.layout.corner_hallways.extend([cells[0], cells[-1]])
        return cells_by_corridor

    # -- spine ----------------------------------------------------------------------------

    def build_spine(self, cells_by_corridor: List[List[str]]) -> List[str]:
        """Create the vertical spine connecting consecutive corridors.

        Each inter-corridor gap becomes a single tall spine cell connected to
        the corridor cells above and below it.
        """
        config = self.config
        centres = config.corridor_centres()
        spine_x_centre = config.side / 2
        spine_half_width = config.corridor_width / 2
        spine_cells: List[str] = []
        for gap_index in range(len(centres) - 1):
            lower_centre = centres[gap_index]
            upper_centre = centres[gap_index + 1]
            y_min = lower_centre + config.corridor_width / 2
            y_max = upper_centre - config.corridor_width / 2
            cell_id = self.next_partition_id("spine")
            self.builder.add_rectangle_partition(
                cell_id,
                spine_x_centre - spine_half_width,
                y_min,
                spine_x_centre + spine_half_width,
                y_max,
                floor=self.floor,
                category=PartitionCategory.HALLWAY,
                name=f"spine segment {gap_index}",
            )
            spine_cells.append(cell_id)
            self.layout.hallway_cells.append(cell_id)

            lower_cell = self._corridor_cell_at(cells_by_corridor[gap_index], spine_x_centre)
            upper_cell = self._corridor_cell_at(cells_by_corridor[gap_index + 1], spine_x_centre)
            self.builder.add_door(
                self.next_door_id("spine"),
                IndoorPoint(spine_x_centre, y_min, self.floor),
                between=(lower_cell, cell_id),
            )
            self.builder.add_door(
                self.next_door_id("spine"),
                IndoorPoint(spine_x_centre, y_max, self.floor),
                between=(cell_id, upper_cell),
            )
        return spine_cells

    def _corridor_cell_at(self, cells: List[str], x: float) -> str:
        """The corridor cell whose x-span contains ``x``."""
        cell_width = self.config.side / self.config.corridor_cells
        index = min(int(x // cell_width), len(cells) - 1)
        return cells[index]

    # -- shops ------------------------------------------------------------------------------

    def build_shop_rows(self, cells_by_corridor: List[List[str]]) -> None:
        """Create shop rows above and below every corridor."""
        config = self.config
        centres = config.corridor_centres()
        spine_x_centre = config.side / 2
        for corridor_index, centre in enumerate(centres):
            for side in ("below", "above"):
                if side == "below":
                    y_max = centre - config.corridor_width / 2
                    y_min = y_max - config.shop_depth
                    door_y = y_max
                else:
                    y_min = centre + config.corridor_width / 2
                    y_max = y_min + config.shop_depth
                    door_y = y_min
                if y_min < 0 or y_max > config.side:
                    continue
                self._build_one_shop_row(
                    cells_by_corridor[corridor_index],
                    corridor_index,
                    side,
                    y_min,
                    y_max,
                    door_y,
                    spine_x_centre,
                )

    def _build_one_shop_row(
        self,
        corridor_cells: List[str],
        corridor_index: int,
        side: str,
        y_min: float,
        y_max: float,
        door_y: float,
        spine_x_centre: float,
    ) -> None:
        config = self.config
        slot_width = config.side / config.shops_per_row
        # The two outermost slots of the bottom-most and top-most rows become
        # anchor stores (double-width); the slot crossed by the spine is left
        # out so the spine can pass between the corridors.
        is_anchor_row = (corridor_index == 0 and side == "below") or (
            corridor_index == config.corridors - 1 and side == "above"
        )
        slot = 0
        while slot < config.shops_per_row:
            x_min = slot * slot_width
            if is_anchor_row and slot in (0, config.shops_per_row - 2):
                # Double-width anchor store.
                x_max = x_min + 2 * slot_width
                shop_id = self.next_partition_id("anchor")
                self.builder.add_rectangle_partition(
                    shop_id,
                    x_min,
                    y_min,
                    x_max,
                    y_max,
                    floor=self.floor,
                    category=PartitionCategory.ANCHOR_STORE,
                    name=f"anchor c{corridor_index}-{side}-{slot}",
                )
                self.layout.anchors.append(shop_id)
                self._attach_shop_doors(shop_id, corridor_cells, x_min, x_max, door_y, doors=2)
                slot += 2
                continue

            x_max = x_min + slot_width
            spine_half_width = config.corridor_width / 2
            overlaps_spine = (
                x_min < spine_x_centre + spine_half_width
                and x_max > spine_x_centre - spine_half_width
            )
            if not is_anchor_row and overlaps_spine:
                # Slot consumed by the spine crossing between corridors; the
                # spine cell occupies the inter-corridor gap so this row slot
                # simply stays empty.
                slot += 1
                continue

            is_private = self.rng.random() < config.private_shop_fraction
            category = PartitionCategory.STORAGE if is_private else PartitionCategory.SHOP
            shop_id = self.next_partition_id("store" if not is_private else "storage")
            self.builder.add_rectangle_partition(
                shop_id,
                x_min,
                y_min,
                x_max,
                y_max,
                floor=self.floor,
                partition_type=PartitionType.PRIVATE if is_private else PartitionType.PUBLIC,
                category=category,
                name=f"shop c{corridor_index}-{side}-{slot}",
            )
            self.layout.shops.append(shop_id)
            if is_private:
                self.layout.private_partitions.append(shop_id)
            doors = 2 if self.rng.random() < config.double_door_fraction else 1
            self._attach_shop_doors(shop_id, corridor_cells, x_min, x_max, door_y, doors=doors)
            slot += 1

    def _attach_shop_doors(
        self,
        shop_id: str,
        corridor_cells: List[str],
        x_min: float,
        x_max: float,
        door_y: float,
        doors: int,
    ) -> None:
        """Place 1 or 2 doors on the shop's corridor-facing wall."""
        if doors <= 1:
            positions = [(x_min + x_max) / 2]
        else:
            width = x_max - x_min
            positions = [x_min + width * 0.25, x_min + width * 0.75]
        for x in positions:
            corridor_cell = self._corridor_cell_at(corridor_cells, x)
            self.builder.add_door(
                self.next_door_id("shop"),
                IndoorPoint(x, door_y, self.floor),
                between=(corridor_cell, shop_id),
            )

    # -- special blocks -------------------------------------------------------------------------

    def build_service_blocks(self, spine_cells: List[str]) -> None:
        """Add the food court and a private back-of-house block beside the spine."""
        config = self.config
        if not spine_cells:
            return
        centres = config.corridor_centres()
        spine_x_centre = config.side / 2
        spine_half_width = config.corridor_width / 2
        # Use the first inter-corridor gap for the food court (west of the
        # spine) and the back-of-house block (east of the spine).
        y_min = centres[0] + config.corridor_width / 2 + config.shop_depth
        y_max = centres[1] - config.corridor_width / 2 - config.shop_depth
        if y_max - y_min < 20:
            return
        food_court_id = self.next_partition_id("foodcourt")
        self.builder.add_rectangle_partition(
            food_court_id,
            spine_x_centre - spine_half_width - 200,
            y_min,
            spine_x_centre - spine_half_width,
            y_max,
            floor=self.floor,
            category=PartitionCategory.FOOD_COURT,
            name="food court",
        )
        self.layout.shops.append(food_court_id)
        self.builder.add_door(
            self.next_door_id("foodcourt"),
            IndoorPoint(spine_x_centre - spine_half_width, (y_min + y_max) / 2, self.floor),
            between=(spine_cells[0], food_court_id),
        )

        back_office_id = self.next_partition_id("backoffice")
        self.builder.add_rectangle_partition(
            back_office_id,
            spine_x_centre + spine_half_width,
            y_min,
            spine_x_centre + spine_half_width + 200,
            y_max,
            floor=self.floor,
            partition_type=PartitionType.PRIVATE,
            category=PartitionCategory.OFFICE,
            name="back of house",
        )
        self.layout.private_partitions.append(back_office_id)
        self.builder.add_door(
            self.next_door_id("backoffice"),
            IndoorPoint(spine_x_centre + spine_half_width, (y_min + y_max) / 2, self.floor),
            between=(spine_cells[0], back_office_id),
        )

    def build_exterior_doors(self, cells_by_corridor: List[List[str]]) -> None:
        """Connect the corridor ends to the outdoors (ground floor only)."""
        config = self.config
        if not config.include_outdoors or self.floor != 0:
            return
        self.builder.add_outdoors()
        added = 0
        for corridor_index, centre in enumerate(config.corridor_centres()):
            for end_x, cell in ((0.0, cells_by_corridor[corridor_index][0]),
                                (config.side, cells_by_corridor[corridor_index][-1])):
                if added >= config.exterior_doors:
                    return
                self.builder.add_door_to_outdoors(
                    self.next_door_id("exit"),
                    IndoorPoint(end_x, centre, self.floor),
                    cell,
                )
                added += 1


def generate_mall_floor(
    config: Optional[MallFloorConfig] = None,
    floor: int = 0,
    seed: int = 7,
    builder: Optional[IndoorSpaceBuilder] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[IndoorSpace, FloorLayout]:
    """Generate one mall floor.

    Parameters
    ----------
    config:
        Layout parameters; defaults approximate the paper's per-floor scale.
    floor:
        Floor index stamped on every partition and door.
    seed:
        Seed used when ``rng`` is not supplied.
    builder:
        Existing builder to add the floor to (used by the multi-floor
        assembler); a fresh one is created otherwise.
    rng:
        Random generator driving the stochastic choices.

    Returns
    -------
    (space, layout):
        The indoor space (only built/validated when ``builder`` was not
        supplied) and the floor layout description.
    """
    config = config or MallFloorConfig()
    rng = rng or random.Random(seed)
    own_builder = builder is None
    builder = builder or IndoorSpaceBuilder(f"synthetic-mall-floor-{floor}")

    floor_builder = _FloorBuilder(builder, config, floor, rng)
    corridors = floor_builder.build_corridors()
    spine_cells = floor_builder.build_spine(corridors)
    floor_builder.build_shop_rows(corridors)
    floor_builder.build_service_blocks(spine_cells)
    floor_builder.build_exterior_doors(corridors)

    space = builder.build() if own_builder else builder.space
    return space, floor_builder.layout
