"""Assembly of the multi-floor synthetic venue.

The paper's default space stacks five copies of the decomposed mall floor and
connects every pair of adjacent floors with four staircases, each having a
20 m stairway.  ``generate_mall_venue`` reproduces that construction: floors
are generated with :func:`repro.synthetic.floorplan.generate_mall_floor` into
one shared builder, then staircase partitions are inserted between adjacent
floors at the corridor ends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.constants import DEFAULT_STAIRWAY_LENGTH_M
from repro.geometry.point import IndoorPoint
from repro.indoor.builder import IndoorSpaceBuilder
from repro.indoor.space import IndoorSpace
from repro.synthetic.floorplan import FloorLayout, MallFloorConfig, generate_mall_floor


@dataclass
class MultiFloorConfig:
    """Parameters of the multi-floor venue."""

    #: Number of floors (5 in the paper's default setting).
    floors: int = 5
    #: Number of staircases between each pair of adjacent floors (4 in the paper).
    staircases_per_floor_pair: int = 4
    #: Walking length of each stairway in metres (20 m in the paper).
    stairway_length: float = DEFAULT_STAIRWAY_LENGTH_M
    #: Per-floor layout parameters.
    floor_config: MallFloorConfig = field(default_factory=MallFloorConfig)

    @classmethod
    def paper_default(cls) -> "MultiFloorConfig":
        """The paper's default setting: 5 floors, 4 staircases, full-size floors."""
        return cls()

    @classmethod
    def small(cls, floors: int = 2) -> "MultiFloorConfig":
        """A reduced venue for unit tests and quick benchmark runs."""
        return cls(
            floors=floors,
            staircases_per_floor_pair=2,
            floor_config=MallFloorConfig(
                side=400.0,
                corridors=2,
                corridor_cells=4,
                shop_depth=30.0,
                shops_per_row=8,
                double_door_fraction=0.3,
                private_shop_fraction=0.05,
            ),
        )


@dataclass
class MallVenue:
    """The generated venue plus the per-floor layouts and staircase inventory."""

    space: IndoorSpace
    floor_layouts: Dict[int, FloorLayout]
    staircases: List[str] = field(default_factory=list)

    @property
    def floors(self) -> int:
        """Number of floors generated."""
        return len(self.floor_layouts)

    def all_shops(self) -> List[str]:
        """All shop/anchor partitions across floors (query-point candidates)."""
        shops: List[str] = []
        for layout in self.floor_layouts.values():
            shops.extend(layout.shops)
            shops.extend(layout.anchors)
        return shops

    def all_doors(self) -> List[str]:
        """All door identifiers across floors (schedule-assignment universe)."""
        doors: List[str] = []
        for layout in self.floor_layouts.values():
            doors.extend(layout.doors)
        return doors


def generate_mall_venue(
    config: Optional[MultiFloorConfig] = None,
    seed: int = 7,
) -> MallVenue:
    """Generate the multi-floor synthetic mall venue.

    The venue is deterministic given ``seed``.  Staircases are placed at the
    outer ends of the corridors (cycling through the available corridor-end
    hallway cells), with their two doors positioned at the cells' centres and
    the stairway length registered as an explicit intra-partition distance.
    """
    config = config or MultiFloorConfig()
    rng = random.Random(seed)
    builder = IndoorSpaceBuilder("synthetic-mall")

    layouts: Dict[int, FloorLayout] = {}
    for floor in range(config.floors):
        _, layout = generate_mall_floor(
            config.floor_config, floor=floor, builder=builder, rng=rng
        )
        layouts[floor] = layout

    staircases: List[str] = []
    for lower_floor in range(config.floors - 1):
        upper_floor = lower_floor + 1
        lower_candidates = layouts[lower_floor].corner_hallways
        upper_candidates = layouts[upper_floor].corner_hallways
        count = min(
            config.staircases_per_floor_pair, len(lower_candidates), len(upper_candidates)
        )
        for index in range(count):
            lower_cell = lower_candidates[index % len(lower_candidates)]
            upper_cell = upper_candidates[index % len(upper_candidates)]
            staircase_id = f"stair-{lower_floor}-{upper_floor}-{index}"
            lower_anchor = builder.space.partition(lower_cell).polygon.centroid
            upper_anchor = builder.space.partition(upper_cell).polygon.centroid
            builder.add_staircase(
                staircase_id,
                lower_floor,
                upper_floor,
                lower_door=(
                    f"{staircase_id}-low",
                    IndoorPoint(lower_anchor.x, lower_anchor.y, lower_floor),
                    lower_cell,
                ),
                upper_door=(
                    f"{staircase_id}-up",
                    IndoorPoint(upper_anchor.x, upper_anchor.y, upper_floor),
                    upper_cell,
                ),
                stairway_length=config.stairway_length,
            )
            staircases.append(staircase_id)
            layouts[lower_floor].doors.append(f"{staircase_id}-low")
            layouts[upper_floor].doors.append(f"{staircase_id}-up")

    space = builder.build()
    return MallVenue(space=space, floor_layouts=layouts, staircases=staircases)
