"""Query-instance generation with controlled source-to-target distance.

The paper controls the indoor distance between the query endpoints with a
parameter δs2t: a source point ``p_s`` is drawn at random, a door ``d`` whose
indoor (graph) distance from ``p_s`` approximates δs2t is located, and a
target point ``p_t`` near ``d`` is chosen so that the overall indoor distance
approaches δs2t.  Five origin/destination pairs are generated per setting and
each is issued at a fixed query time (12:00 by default).

``door_distances_from_point`` implements the one-to-all door distances that
construction needs: a temporal-variation-*unaware* door-level Dijkstra from a
point (the workload must not depend on the schedule under test, otherwise the
δs2t buckets would change with ``|T|``).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.itgraph import ITGraph
from repro.core.query import ITSPQuery
from repro.exceptions import UnknownEntityError
from repro.geometry.point import IndoorPoint, Point2D
from repro.geometry.polygon import Polygon
from repro.indoor.entities import Partition, PartitionCategory
from repro.temporal.timeofday import TimeLike, as_time_of_day


def door_distances_from_point(
    itgraph: ITGraph,
    source: IndoorPoint,
    allow_private: bool = False,
) -> Dict[str, float]:
    """Indoor distances from ``source`` to every reachable door.

    Runs a static (temporal-unaware) door-level Dijkstra: distances are the
    lengths of the shortest indoor routes that avoid private partitions
    (other than the source's own) unless ``allow_private`` is set.
    """
    topology = itgraph.topology
    source_partition = itgraph.covering_partition(source)
    source_pid = source_partition.partition_id

    dist: Dict[str, float] = {}
    heap: List[Tuple[float, int, str]] = []
    counter = itertools.count()

    def push(door_id: str, distance: float) -> None:
        if distance < dist.get(door_id, float("inf")):
            dist[door_id] = distance
            heapq.heappush(heap, (distance, next(counter), door_id))

    for door_id in topology.leaveable_doors(source_pid):
        try:
            push(door_id, itgraph.point_to_door(source, door_id, source_pid))
        except UnknownEntityError:
            continue

    settled: set = set()
    while heap:
        distance, _, door_id = heapq.heappop(heap)
        if door_id in settled or distance > dist.get(door_id, float("inf")):
            continue
        settled.add(door_id)
        for partition_id in topology.enterable_partitions(door_id):
            record = itgraph.partition_record(partition_id)
            if record.is_outdoor:
                continue
            if record.is_private and not allow_private and partition_id != source_pid:
                continue
            for next_door in topology.leaveable_doors(partition_id):
                if next_door == door_id or next_door in settled:
                    continue
                try:
                    leg = itgraph.intra_distance(partition_id, door_id, next_door)
                except UnknownEntityError:
                    continue
                push(next_door, distance + leg)
    return dist


@dataclass
class QueryWorkloadConfig:
    """Parameters of the δs2t-controlled query workload."""

    #: Target indoor distance between the endpoints, in metres.
    s2t_distance: float = 1500.0
    #: Number of origin/destination pairs to generate (the paper uses five).
    pairs: int = 5
    #: Query timestamp assigned to every instance (12:00 in the paper).
    query_time: TimeLike = "12:00"
    #: Acceptable relative deviation of the achieved distance from δs2t.
    tolerance: float = 0.25
    #: Seed of the workload generator.
    seed: int = 23
    #: Partition categories the endpoints may fall in.
    endpoint_categories: Tuple[PartitionCategory, ...] = (
        PartitionCategory.SHOP,
        PartitionCategory.ANCHOR_STORE,
        PartitionCategory.FOOD_COURT,
        PartitionCategory.HALLWAY,
    )
    #: How many random sources to try before accepting the best approximation.
    max_attempts: int = 40


@dataclass
class GeneratedQuery:
    """A generated query instance plus the distance it actually realises."""

    query: ITSPQuery
    achieved_distance: float
    target_door: str


def _random_point_in_partition(partition: Partition, rng: random.Random) -> Optional[IndoorPoint]:
    """Rejection-sample a point strictly inside ``partition``'s polygon."""
    polygon: Optional[Polygon] = partition.polygon
    if polygon is None:
        return None
    box = polygon.bounding_box
    for _ in range(64):
        x = rng.uniform(box.min_x, box.max_x)
        y = rng.uniform(box.min_y, box.max_y)
        if polygon.contains(Point2D(x, y)):
            return IndoorPoint(x, y, partition.floor)
    centroid = polygon.centroid
    return IndoorPoint(centroid.x, centroid.y, partition.floor)


def _candidate_partitions(
    itgraph: ITGraph, categories: Sequence[PartitionCategory]
) -> List[Partition]:
    """Partitions eligible to host query endpoints."""
    wanted = set(categories)
    result: List[Partition] = []
    for partition in itgraph.space.iter_partitions():
        if partition.is_outdoor or partition.is_staircase or partition.polygon is None:
            continue
        if partition.is_private:
            continue
        if partition.category in wanted:
            result.append(partition)
    return result


def _locate_consistent(itgraph: ITGraph, point: IndoorPoint, partition: Partition) -> bool:
    """``True`` when point location resolves the point back to ``partition``.

    Generated floors may contain touching footprints; endpoints whose
    covering partition is ambiguous are rejected so the workload stays
    well-defined.
    """
    located = itgraph.space.try_locate(point)
    return located is not None and located.partition_id == partition.partition_id


def generate_query_instances(
    itgraph: ITGraph,
    config: Optional[QueryWorkloadConfig] = None,
) -> List[GeneratedQuery]:
    """Generate δs2t-controlled query instances over ``itgraph``.

    For each requested pair: draw a random source point, compute static door
    distances from it, pick the door whose distance best approximates δs2t,
    and place the target point inside a partition entered through that door.
    Pairs whose achieved distance deviates from δs2t by more than the
    configured tolerance are retried with a new source (up to
    ``max_attempts``); the best approximation seen is kept as a fallback so
    the generator always returns the requested number of instances.
    """
    config = config or QueryWorkloadConfig()
    rng = random.Random(config.seed)
    query_time = as_time_of_day(config.query_time)
    candidates = _candidate_partitions(itgraph, config.endpoint_categories)
    if not candidates:
        raise UnknownEntityError("no eligible partitions for query endpoints")

    topology = itgraph.topology
    instances: List[GeneratedQuery] = []

    for pair_index in range(config.pairs):
        best: Optional[GeneratedQuery] = None
        for _ in range(config.max_attempts):
            source_partition = rng.choice(candidates)
            source = _random_point_in_partition(source_partition, rng)
            if source is None or not _locate_consistent(itgraph, source, source_partition):
                continue

            distances = door_distances_from_point(itgraph, source)
            if not distances:
                continue
            # The door whose static distance best approximates δs2t.
            door_id, door_distance = min(
                distances.items(), key=lambda item: abs(item[1] - config.s2t_distance)
            )

            target: Optional[IndoorPoint] = None
            target_pid: Optional[str] = None
            for partition_id in topology.enterable_partitions(door_id):
                record = itgraph.partition_record(partition_id)
                if record.is_private or record.is_outdoor:
                    continue
                partition = itgraph.space.partition(partition_id)
                if partition.is_staircase:
                    continue
                candidate_point = _random_point_in_partition(partition, rng)
                if candidate_point is None:
                    continue
                if candidate_point.floor != itgraph.door_position(door_id).floor:
                    continue
                if not _locate_consistent(itgraph, candidate_point, partition):
                    continue
                target = candidate_point
                target_pid = partition_id
                break
            if target is None or target_pid is None:
                continue

            achieved = door_distance + itgraph.point_to_door(target, door_id, target_pid)
            candidate = GeneratedQuery(
                query=ITSPQuery(
                    source,
                    target,
                    query_time,
                    label=f"s2t={config.s2t_distance:.0f}m#{pair_index}",
                ),
                achieved_distance=achieved,
                target_door=door_id,
            )
            if best is None or abs(candidate.achieved_distance - config.s2t_distance) < abs(
                best.achieved_distance - config.s2t_distance
            ):
                best = candidate
            if abs(achieved - config.s2t_distance) <= config.tolerance * config.s2t_distance:
                break
        if best is None:
            raise UnknownEntityError(
                "could not generate a query instance; the venue may be too small "
                f"for s2t_distance={config.s2t_distance}"
            )
        instances.append(best)
    return instances
