"""Synthetic door schedules: the opening-hours model and ATI assignment.

The paper derives door Active Time Intervals from crawled opening hours of
shops in five Hong Kong malls: random (open, close) pairs are selected to
form a checkpoint set ``T`` of size 4, 8, 12 or 16, and each door with
temporal variation receives up to three ATIs built from pairs in ``T``.

The crawled data is not published, so :class:`MallHoursModel` generates
statistically similar opening hours: per-category profiles (anchor stores
open early and close late, food courts close latest, retail shops cluster
around 10:00–22:00, back-of-house doors follow office hours), quantised to
half-hour boundaries.  The checkpoint-set construction and per-door ATI
assignment then follow the paper's procedure: ``T`` is made of |T|/2
(open, close) pairs, and every temporally varying door receives one to three
ATIs, each spanning one of those pairs.  As in the paper this makes noon a
time when nearly every door is open, while early morning and late evening
see progressively more doors closed as ``|T|`` grows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.indoor.entities import PartitionCategory
from repro.indoor.space import IndoorSpace
from repro.temporal.atis import ATISet
from repro.temporal.checkpoints import CheckpointSet
from repro.temporal.interval import TimeInterval
from repro.temporal.schedule import DoorSchedule
from repro.temporal.timeofday import TimeOfDay


#: Opening-hour profiles per partition category: (open_low, open_high,
#: close_low, close_high) in decimal hours.  Sampled uniformly and quantised
#: to half hours.
_CATEGORY_PROFILES: Dict[PartitionCategory, Tuple[float, float, float, float]] = {
    PartitionCategory.ANCHOR_STORE: (7.0, 9.0, 21.0, 23.0),
    PartitionCategory.SHOP: (8.0, 11.0, 17.0, 22.0),
    PartitionCategory.FOOD_COURT: (6.5, 8.0, 22.0, 23.5),
    PartitionCategory.OFFICE: (7.5, 9.5, 17.0, 19.0),
    PartitionCategory.STORAGE: (6.0, 8.0, 16.0, 18.0),
    PartitionCategory.WARD: (8.0, 10.0, 18.0, 20.0),
    PartitionCategory.HALLWAY: (5.0, 7.0, 22.0, 23.5),
    PartitionCategory.LOBBY: (5.0, 6.0, 23.0, 23.5),
}

_DEFAULT_PROFILE: Tuple[float, float, float, float] = (8.0, 10.0, 18.0, 22.0)

#: An (open, close) pair of instants, as crawled from a shop's opening hours.
OpeningHours = Tuple[TimeOfDay, TimeOfDay]


def _quantise_to_half_hour(hours: float) -> float:
    """Snap a decimal-hour value to the nearest half hour inside the day."""
    snapped = round(hours * 2.0) / 2.0
    return min(max(snapped, 0.0), 23.5)


@dataclass
class MallHoursModel:
    """Generator of realistic mall opening hours.

    ``sample_opening_hours`` draws one (open, close) pair for a partition
    category; ``sample_checkpoint_pairs`` builds the checkpoint set ``T`` of
    the requested size from such pairs, mirroring the paper's construction.
    """

    seed: int = 7
    categories: Sequence[PartitionCategory] = (
        PartitionCategory.SHOP,
        PartitionCategory.ANCHOR_STORE,
        PartitionCategory.FOOD_COURT,
        PartitionCategory.OFFICE,
        PartitionCategory.STORAGE,
    )

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def sample_opening_hours(
        self,
        category: PartitionCategory = PartitionCategory.SHOP,
        rng: Optional[random.Random] = None,
    ) -> OpeningHours:
        """Draw one (open, close) pair for ``category``, half-hour quantised."""
        rng = rng or self._rng
        open_low, open_high, close_low, close_high = _CATEGORY_PROFILES.get(
            category, _DEFAULT_PROFILE
        )
        open_hours = _quantise_to_half_hour(rng.uniform(open_low, open_high))
        close_hours = _quantise_to_half_hour(rng.uniform(close_low, close_high))
        if close_hours <= open_hours:
            close_hours = min(23.5, open_hours + 8.0)
        return TimeOfDay.from_hours(open_hours), TimeOfDay.from_hours(close_hours)

    def sample_checkpoint_pairs(
        self, size: int, rng: Optional[random.Random] = None
    ) -> Tuple[CheckpointSet, List[OpeningHours]]:
        """Build ``T`` of ``size`` instants, as ``size / 2`` (open, close) pairs.

        Returns both the checkpoint set and the pairs; the pairs are what the
        per-door ATI assignment samples from, so that every ATI spans an
        (open, close) combination as in the paper.
        """
        if size <= 0:
            raise ValueError(f"checkpoint set size must be positive, got {size}")
        rng = rng or self._rng
        target_pairs = max(1, size // 2)
        pairs: List[OpeningHours] = []
        seen: set = set()
        attempts = 0
        # Reject duplicate instants so the checkpoint set reaches the target size.
        while len(pairs) < target_pairs and attempts < 500:
            attempts += 1
            category = rng.choice(list(self.categories))
            open_time, close_time = self.sample_opening_hours(category, rng)
            if open_time.seconds in seen or close_time.seconds in seen:
                continue
            seen.add(open_time.seconds)
            seen.add(close_time.seconds)
            pairs.append((open_time, close_time))
        instants = [t for pair in pairs for t in pair]
        return CheckpointSet(instants), pairs

    def sample_checkpoints(self, size: int, rng: Optional[random.Random] = None) -> CheckpointSet:
        """Convenience wrapper returning only the checkpoint set."""
        checkpoints, _ = self.sample_checkpoint_pairs(size, rng)
        return checkpoints


@dataclass
class ScheduleConfig:
    """Parameters of the per-door ATI assignment."""

    #: Target checkpoint-set size ``|T|`` (4, 8, 12 or 16 in the paper).
    checkpoint_count: int = 8
    #: Fraction of eligible doors that carry temporal variation.
    temporal_door_fraction: float = 0.9
    #: Maximum number of ATIs per door (the paper uses up to three).
    max_atis_per_door: int = 3
    #: Seed of the assignment (independent from the venue seed).
    seed: int = 11
    #: Door-id substrings that exempt a door from temporal variation
    #: (staircases and exterior exits stay open around the clock).
    always_open_markers: Tuple[str, ...] = ("stair", "exit")


def _atis_from_pairs(
    pairs: Sequence[OpeningHours], count: int, rng: random.Random
) -> ATISet:
    """Build an ATI set from up to ``count`` sampled (open, close) pairs."""
    if not pairs:
        return ATISet.always_open()
    chosen = rng.sample(list(pairs), min(count, len(pairs)))
    return ATISet(TimeInterval(open_time, close_time) for open_time, close_time in chosen)


def generate_schedule(
    space: IndoorSpace,
    config: Optional[ScheduleConfig] = None,
    doors: Optional[Iterable[str]] = None,
    hours_model: Optional[MallHoursModel] = None,
) -> Tuple[DoorSchedule, CheckpointSet]:
    """Assign ATIs to the doors of ``space`` following the paper's procedure.

    Parameters
    ----------
    space:
        The venue whose doors receive schedules.
    config:
        Assignment parameters (``|T|``, temporal-door fraction, ATIs per door).
    doors:
        Door universe to consider; defaults to every door of the space.
    hours_model:
        Opening-hours model used to sample the checkpoint pairs.

    Returns
    -------
    (schedule, checkpoints):
        The door schedule and the checkpoint set ``T`` it was built from.
        The schedule's own ``checkpoints()`` may be a subset of ``T`` when
        not every instant ends up used by some door.
    """
    config = config or ScheduleConfig()
    rng = random.Random(config.seed)
    hours_model = hours_model or MallHoursModel(seed=config.seed)

    checkpoints, pairs = hours_model.sample_checkpoint_pairs(config.checkpoint_count, rng)

    atis_by_door: Dict[str, ATISet] = {}
    door_ids = list(doors) if doors is not None else space.door_ids()
    for door_id in door_ids:
        if any(marker in door_id for marker in config.always_open_markers):
            continue
        if rng.random() > config.temporal_door_fraction:
            continue
        count = rng.randint(1, max(1, config.max_atis_per_door))
        atis_by_door[door_id] = _atis_from_pairs(pairs, count, rng)

    return DoorSchedule(atis_by_door), checkpoints
