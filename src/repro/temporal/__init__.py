"""Temporal-variation substrate: times of day, Active Time Intervals (ATIs),
door schedules and checkpoint sets.

The paper models each door's availability as an array of *Active Time
Intervals* ``[open-time, close-time)`` within a single day (Table I shows the
running example).  The distinct open/close instants across all doors form the
*checkpoint set* ``T``; between two consecutive checkpoints the indoor
topology is constant, which is exactly the property the asynchronous ITG/A
method exploits.

Public classes
--------------
:class:`~repro.temporal.timeofday.TimeOfDay`
    A time of day in seconds since midnight, parseable from ``"8:30"`` style
    strings.
:class:`~repro.temporal.interval.TimeInterval`
    A half-open interval ``[start, end)``.
:class:`~repro.temporal.atis.ATISet`
    A normalised (sorted, disjoint) collection of ATIs with O(log n)
    membership tests.
:class:`~repro.temporal.schedule.DoorSchedule`
    Mapping from door identifiers to their ``ATISet``; knows which doors are
    open at a given time and derives the checkpoint set.
:class:`~repro.temporal.checkpoints.CheckpointSet`
    The ordered set of open/close instants with the paper's
    ``Find_Previous_Checkpoint`` / ``Find_Next_Checkpoint`` primitives.
"""

from repro.temporal.timeofday import TimeOfDay
from repro.temporal.interval import TimeInterval
from repro.temporal.atis import ATISet
from repro.temporal.checkpoints import CheckpointSet
from repro.temporal.schedule import DoorSchedule

__all__ = [
    "TimeOfDay",
    "TimeInterval",
    "ATISet",
    "CheckpointSet",
    "DoorSchedule",
]
