"""Active Time Interval sets (ATIs).

A door with temporal variation carries an array of ATIs, e.g. door ``d9`` of
the running example is open during ``[0:00, 6:00)`` and ``[6:30, 23:00)``.
``ATISet`` normalises the intervals (sorted by start, merged when they touch)
and answers membership queries in ``O(log n)`` via binary search — the hot
operation of the synchronous ITG/S check.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.temporal.interval import TimeInterval
from repro.temporal.timeofday import TimeLike, TimeOfDay, as_time_of_day


class ATISet:
    """A normalised, immutable collection of Active Time Intervals.

    The constructor accepts intervals in any order, possibly overlapping or
    abutting; they are merged into the canonical minimal representation.  An
    empty ``ATISet`` models a door that is never open.
    """

    __slots__ = ("_intervals", "_starts", "_ends")

    def __init__(self, intervals: Iterable[TimeInterval] = ()):  # noqa: D401
        merged = _normalise(list(intervals))
        self._intervals: Tuple[TimeInterval, ...] = tuple(merged)
        self._starts: List[float] = [iv.start.seconds for iv in self._intervals]
        self._ends: List[float] = [iv.end.seconds for iv in self._intervals]

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[TimeLike, TimeLike]]) -> "ATISet":
        """Build an ATI set from ``(open, close)`` pairs such as ``("8:00", "16:00")``."""
        return cls(TimeInterval(start, end) for start, end in pairs)

    @classmethod
    def always_open(cls) -> "ATISet":
        """The ``[0:00, 24:00)`` ATI set of a door without temporal variation."""
        return cls([TimeInterval("0:00", "24:00")])

    @classmethod
    def never_open(cls) -> "ATISet":
        """An empty ATI set: the door is permanently closed."""
        return cls()

    # -- collection protocol -----------------------------------------------

    @property
    def intervals(self) -> Tuple[TimeInterval, ...]:
        """The normalised intervals, ordered by start time."""
        return self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[TimeInterval]:
        return iter(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ATISet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    # -- queries -----------------------------------------------------------

    def contains(self, instant: TimeLike) -> bool:
        """Return ``True`` when the door is open at ``instant``.

        This is the primitive used by the paper's ``Syn_Check``: the arrival
        time is tested for membership in the door's ATIs.
        """
        if not self._intervals:
            return False
        t = as_time_of_day(instant).seconds
        index = bisect.bisect_right(self._starts, t) - 1
        if index < 0:
            return False
        return self._intervals[index].contains(t)

    __contains__ = contains

    def contains_seconds(self, seconds: float) -> bool:
        """Fast membership probe on a raw number of seconds since midnight.

        Semantically identical to :meth:`contains` but skips the
        ``TimeOfDay`` coercion, making it suitable for the engine's hot loop
        where arrival times are plain floats.  Instants outside ``[0, 24:00)``
        (negative values, or arrivals past the end of the day) are simply not
        contained in any interval.
        """
        starts = self._starts
        if not starts:
            return False
        index = bisect.bisect_right(starts, seconds) - 1
        if index < 0:
            return False
        return seconds < self._ends[index]

    def boundary_seconds(self) -> List[float]:
        """The open/close instants as a flat, strictly increasing float array.

        Because the intervals are normalised (disjoint, non-abutting), an
        instant ``t`` is open iff ``bisect_right(boundaries, t)`` is odd —
        the representation the compiled search index lowers every door to.
        """
        flat: List[float] = []
        for start, end in zip(self._starts, self._ends):
            flat.append(start)
            flat.append(end)
        return flat

    def interval_containing(self, instant: TimeLike) -> Optional[TimeInterval]:
        """Return the ATI containing ``instant``, or ``None`` when closed."""
        if not self._intervals:
            return None
        t = as_time_of_day(instant).seconds
        index = bisect.bisect_right(self._starts, t) - 1
        if index < 0:
            return None
        candidate = self._intervals[index]
        return candidate if candidate.contains(t) else None

    def next_opening(self, instant: TimeLike) -> Optional[TimeOfDay]:
        """Return the first opening time at or after ``instant``.

        Returns ``instant`` itself when the door is already open, and ``None``
        when the door never opens again during the day.  Used by the optional
        waiting-tolerant extension of the engine.
        """
        t = as_time_of_day(instant)
        containing = self.interval_containing(t)
        if containing is not None:
            return t
        for interval in self._intervals:
            if interval.start >= t:
                return interval.start
        return None

    def is_open_throughout(self, interval: TimeInterval) -> bool:
        """Return ``True`` when the door stays open for the whole of ``interval``."""
        containing = self.interval_containing(interval.start)
        if containing is None:
            return False
        return containing.end >= interval.end

    def total_open_seconds(self) -> float:
        """Total number of seconds per day during which the door is open."""
        return sum(interval.duration for interval in self._intervals)

    def boundary_times(self) -> List[TimeOfDay]:
        """All open/close instants — the door's contribution to the checkpoint set."""
        times: List[TimeOfDay] = []
        for interval in self._intervals:
            times.append(interval.start)
            times.append(interval.end)
        return times

    # -- set algebra ---------------------------------------------------------

    def union(self, other: "ATISet") -> "ATISet":
        """Return the ATI set open whenever either operand is open."""
        return ATISet(list(self._intervals) + list(other._intervals))

    def intersection(self, other: "ATISet") -> "ATISet":
        """Return the ATI set open only when both operands are open."""
        result: List[TimeInterval] = []
        for a in self._intervals:
            for b in other._intervals:
                overlap = a.intersection(b)
                if overlap is not None:
                    result.append(overlap)
        return ATISet(result)

    def complement(self) -> "ATISet":
        """Return the closed periods of the day as an ATI set."""
        if not self._intervals:
            return ATISet.always_open()
        closed: List[TimeInterval] = []
        cursor = TimeOfDay.midnight()
        for interval in self._intervals:
            if interval.start > cursor:
                closed.append(TimeInterval(cursor, interval.start))
            cursor = max(cursor, interval.end)
        end_of_day = TimeOfDay.end_of_day()
        if cursor < end_of_day:
            closed.append(TimeInterval(cursor, end_of_day))
        return ATISet(closed)

    # -- formatting ----------------------------------------------------------

    def __str__(self) -> str:
        return "<" + ", ".join(str(interval) for interval in self._intervals) + ">"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ATISet({self})"


def _normalise(intervals: Sequence[TimeInterval]) -> List[TimeInterval]:
    """Sort intervals and merge any that overlap or abut."""
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda interval: (interval.start.seconds, interval.end.seconds))
    merged: List[TimeInterval] = [ordered[0]]
    for interval in ordered[1:]:
        last = merged[-1]
        combined = last.union_if_touching(interval)
        if combined is None:
            merged.append(interval)
        else:
            merged[-1] = combined
    return merged
