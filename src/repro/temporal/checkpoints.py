"""Checkpoint sets: the distinct open/close instants of all doors.

The asynchronous method ITG/A relies on the observation that the indoor
topology only changes at *checkpoints* — the finitely many instants at which
some door opens or closes.  ``CheckpointSet`` stores those instants in sorted
order and provides the two primitives used by Algorithms 3 and 4:
``Find_Previous_Checkpoint`` and ``Find_Next_Checkpoint``.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.temporal.interval import TimeInterval
from repro.temporal.timeofday import TimeLike, TimeOfDay, as_time_of_day


class CheckpointSet:
    """An ordered set of distinct checkpoint instants within a day."""

    __slots__ = ("_times", "_seconds")

    def __init__(self, times: Iterable[TimeLike] = ()):  # noqa: D401
        unique = sorted({as_time_of_day(t).seconds for t in times})
        self._times: Tuple[TimeOfDay, ...] = tuple(TimeOfDay(s) for s in unique)
        self._seconds: List[float] = list(unique)

    # -- collection protocol -------------------------------------------------

    @property
    def times(self) -> Tuple[TimeOfDay, ...]:
        """The checkpoints in increasing order."""
        return self._times

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[TimeOfDay]:
        return iter(self._times)

    def __contains__(self, instant: TimeLike) -> bool:
        t = as_time_of_day(instant).seconds
        index = bisect.bisect_left(self._seconds, t)
        return index < len(self._seconds) and self._seconds[index] == t

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CheckpointSet):
            return NotImplemented
        return self._seconds == other._seconds

    def __hash__(self) -> int:
        return hash(tuple(self._seconds))

    # -- the paper's primitives ----------------------------------------------

    def find_previous(self, instant: TimeLike) -> Optional[TimeOfDay]:
        """``Find_Previous_Checkpoint``: latest checkpoint at or before ``instant``.

        Returns ``None`` when ``instant`` precedes every checkpoint — in that
        case the topology in force is the one of the start of the day
        (conceptually checkpoint 0:00).
        """
        t = as_time_of_day(instant).seconds
        index = bisect.bisect_right(self._seconds, t) - 1
        if index < 0:
            return None
        return self._times[index]

    def find_next(self, instant: TimeLike) -> Optional[TimeOfDay]:
        """``Find_Next_Checkpoint``: earliest checkpoint strictly after ``instant``.

        Returns ``None`` when no checkpoint follows ``instant`` — the topology
        then stays constant until the end of the day.
        """
        t = as_time_of_day(instant).seconds
        index = bisect.bisect_right(self._seconds, t)
        if index >= len(self._times):
            return None
        return self._times[index]

    def interval_containing(self, instant: TimeLike) -> TimeInterval:
        """Return the maximal interval around ``instant`` with constant topology.

        The interval runs from the previous checkpoint (or midnight when
        ``instant`` precedes every checkpoint) to the next checkpoint.  After
        the last checkpoint the topology never changes again, so the interval
        is extended one full day past ``instant`` — arrival times may exceed
        24:00 because walking times never wrap around midnight, and they must
        still fall inside a well-defined constant-topology interval.
        """
        from repro.constants import SECONDS_PER_DAY

        t = as_time_of_day(instant)
        previous = self.find_previous(t)
        nxt = self.find_next(t)
        start = previous if previous is not None else TimeOfDay.midnight()
        if nxt is not None:
            end = nxt
        else:
            end = TimeOfDay(max(float(SECONDS_PER_DAY), t.seconds) + SECONDS_PER_DAY)
        return TimeInterval(start, end)

    # -- manipulation ----------------------------------------------------------

    def merged_with(self, other: "CheckpointSet") -> "CheckpointSet":
        """Return the union of two checkpoint sets."""
        return CheckpointSet(list(self._times) + list(other._times))

    def restricted_to(self, size: int) -> "CheckpointSet":
        """Return an evenly thinned checkpoint set of at most ``size`` instants.

        Used by the synthetic-schedule generator when the experiment calls for
        a specific ``|T|`` (4, 8, 12 or 16 in the paper).
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size >= len(self._times) or size == 0:
            return CheckpointSet(self._times if size else ())
        step = len(self._times) / size
        picked = [self._times[int(i * step)] for i in range(size)]
        return CheckpointSet(picked)

    def __str__(self) -> str:
        return "{" + ", ".join(str(t) for t in self._times) + "}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointSet({self})"
