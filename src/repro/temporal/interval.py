"""Half-open time intervals ``[start, end)``.

An Active Time Interval (ATI) in the paper is exactly such an interval: the
door opens at ``start`` and closes at ``end``, so an arrival exactly at the
close time finds the door closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import InvalidTimeError
from repro.temporal.timeofday import TimeLike, TimeOfDay, as_time_of_day


@dataclass(frozen=True)
class TimeInterval:
    """A half-open interval of times of day, ``[start, end)``."""

    start: TimeOfDay
    end: TimeOfDay

    def __init__(self, start: TimeLike, end: TimeLike):
        start_t = as_time_of_day(start)
        end_t = as_time_of_day(end)
        if end_t <= start_t:
            raise InvalidTimeError(
                f"interval end must be strictly after start, got [{start_t}, {end_t})"
            )
        object.__setattr__(self, "start", start_t)
        object.__setattr__(self, "end", end_t)

    # -- basic queries -----------------------------------------------------

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end.seconds - self.start.seconds

    def contains(self, instant: TimeLike) -> bool:
        """Return ``True`` when ``instant`` lies in ``[start, end)``."""
        t = as_time_of_day(instant)
        return self.start <= t < self.end

    __contains__ = contains

    def overlaps(self, other: "TimeInterval") -> bool:
        """Return ``True`` when the two intervals share a positive-length span."""
        return self.start < other.end and other.start < self.end

    def touches_or_overlaps(self, other: "TimeInterval") -> bool:
        """Like :meth:`overlaps` but also ``True`` for intervals that merely abut."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """Return the overlapping sub-interval, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= start:
            return None
        return TimeInterval(start, end)

    def union_if_touching(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """Merge two intervals that overlap or abut; ``None`` when they are apart."""
        if not self.touches_or_overlaps(other):
            return None
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def shifted(self, delta_seconds: float) -> "TimeInterval":
        """Return the interval translated by ``delta_seconds``."""
        return TimeInterval(self.start + delta_seconds, self.end + delta_seconds)

    def __str__(self) -> str:
        return f"[{self.start}, {self.end})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeInterval({self})"
