"""Door schedules: the association of every door with its ATIs.

``DoorSchedule`` is the temporal half of the IT-Graph's door table.  It is a
mapping from door identifiers to :class:`~repro.temporal.atis.ATISet` values
and provides the aggregate views the algorithms need:

* the checkpoint set ``T`` (all distinct open/close instants),
* the set of doors open (or closed) at a given time, which is what
  ``Graph_Update`` (Algorithm 3) uses to build a reduced topology snapshot.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.exceptions import UnknownEntityError
from repro.temporal.atis import ATISet
from repro.temporal.checkpoints import CheckpointSet
from repro.temporal.timeofday import TimeLike, as_time_of_day


class DoorSchedule:
    """Per-door Active Time Intervals for a whole venue.

    Doors that are not present in the schedule are treated as *always open*
    (no temporal variation), matching the paper's setting where only a subset
    of doors carries ATIs.
    """

    __slots__ = ("_atis", "_default")

    def __init__(
        self,
        atis_by_door: Optional[Mapping[str, ATISet]] = None,
        default: Optional[ATISet] = None,
    ):
        self._atis: Dict[str, ATISet] = dict(atis_by_door or {})
        self._default: ATISet = default if default is not None else ATISet.always_open()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Mapping[str, Iterable[Tuple[TimeLike, TimeLike]]]) -> "DoorSchedule":
        """Build a schedule from ``{door_id: [(open, close), ...]}`` literals.

        This mirrors the shape of Table I in the paper.
        """
        return cls({door_id: ATISet.from_pairs(intervals) for door_id, intervals in pairs.items()})

    def with_door(self, door_id: str, atis: ATISet) -> "DoorSchedule":
        """Return a copy of the schedule with ``door_id``'s ATIs (re)assigned."""
        updated = dict(self._atis)
        updated[door_id] = atis
        return DoorSchedule(updated, self._default)

    def set_atis(self, door_id: str, atis: ATISet) -> None:
        """Assign ``atis`` to ``door_id`` in place."""
        self._atis[door_id] = atis

    # -- mapping protocol ------------------------------------------------------

    @property
    def default_atis(self) -> ATISet:
        """The ATI set used for doors without an explicit entry."""
        return self._default

    def atis_for(self, door_id: str) -> ATISet:
        """Return the ATIs of ``door_id`` (the default for unscheduled doors)."""
        return self._atis.get(door_id, self._default)

    def __getitem__(self, door_id: str) -> ATISet:
        return self.atis_for(door_id)

    def __contains__(self, door_id: str) -> bool:
        return door_id in self._atis

    def __iter__(self) -> Iterator[str]:
        return iter(self._atis)

    def __len__(self) -> int:
        return len(self._atis)

    def scheduled_doors(self) -> Set[str]:
        """Identifiers of the doors that carry explicit temporal variation."""
        return set(self._atis)

    def items(self) -> Iterator[Tuple[str, ATISet]]:
        """Iterate over ``(door_id, ATISet)`` pairs with explicit entries."""
        return iter(self._atis.items())

    # -- temporal queries -------------------------------------------------------

    def is_open(self, door_id: str, instant: TimeLike) -> bool:
        """Return ``True`` when ``door_id`` is open at ``instant``."""
        return self.atis_for(door_id).contains(instant)

    def doors_open_at(self, instant: TimeLike, universe: Optional[Iterable[str]] = None) -> Set[str]:
        """Return the doors from ``universe`` open at ``instant``.

        When ``universe`` is omitted only explicitly scheduled doors are
        considered (unscheduled doors are implicitly always open).
        """
        doors = self._atis.keys() if universe is None else universe
        t = as_time_of_day(instant)
        return {door_id for door_id in doors if self.is_open(door_id, t)}

    def doors_closed_at(self, instant: TimeLike, universe: Optional[Iterable[str]] = None) -> Set[str]:
        """``Get_Closed_Door``: doors from ``universe`` closed at ``instant``.

        This is the primitive Algorithm 3 uses to derive the reduced topology
        in force after a checkpoint.
        """
        doors = self._atis.keys() if universe is None else universe
        t = as_time_of_day(instant)
        return {door_id for door_id in doors if not self.is_open(door_id, t)}

    def checkpoints(self) -> CheckpointSet:
        """Return the checkpoint set ``T``: every distinct open/close instant."""
        times = []
        for atis in self._atis.values():
            times.extend(atis.boundary_times())
        return CheckpointSet(times)

    def validate_doors(self, known_doors: Iterable[str]) -> None:
        """Raise :class:`UnknownEntityError` when the schedule references a door
        that does not exist in ``known_doors``."""
        known = set(known_doors)
        unknown = [door_id for door_id in self._atis if door_id not in known]
        if unknown:
            raise UnknownEntityError(
                f"schedule references unknown doors: {sorted(unknown)!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DoorSchedule({len(self._atis)} doors with temporal variation)"
