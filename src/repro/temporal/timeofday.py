"""Times of day expressed as seconds since midnight.

The paper expresses door schedules and query times as wall-clock times within
one day (``8:00``, ``23:30``, ...).  ``TimeOfDay`` wraps a float number of
seconds since midnight, provides parsing/formatting of ``H:MM[:SS]`` strings,
and supports the arithmetic the query engine needs (adding a travel time to a
query time).  The value ``24:00`` (= 86400 s) is allowed as an *exclusive*
interval end so that Table I's ``[0:00, 24:00)`` all-day interval is
representable.
"""

from __future__ import annotations

import functools
import math
from typing import Union

from repro.constants import SECONDS_PER_DAY
from repro.exceptions import InvalidTimeError

TimeLike = Union["TimeOfDay", float, int, str]


@functools.total_ordering
class TimeOfDay:
    """An instant within a day, stored as seconds since midnight.

    Instances are immutable, hashable and totally ordered.  Arithmetic with
    plain numbers (seconds) is supported: ``TimeOfDay("8:00") + 90`` is
    ``8:01:30``.  Additions are *not* wrapped around midnight by default
    because the paper's routing semantics never cross midnight (a path whose
    arrival time exceeds 24:00 simply fails every ATI check); callers that
    need wrap-around can use :meth:`wrapped`.
    """

    __slots__ = ("_seconds",)

    def __init__(self, value: TimeLike):
        if isinstance(value, TimeOfDay):
            seconds = value._seconds
        elif isinstance(value, str):
            seconds = _parse_clock_string(value)
        elif isinstance(value, (int, float)):
            seconds = float(value)
        else:
            raise InvalidTimeError(f"cannot interpret {value!r} as a time of day")
        if not math.isfinite(seconds):
            raise InvalidTimeError(f"time of day must be finite, got {seconds}")
        if seconds < 0:
            raise InvalidTimeError(f"time of day must be non-negative, got {seconds}")
        self._seconds = seconds

    # -- accessors ---------------------------------------------------------

    @property
    def seconds(self) -> float:
        """Seconds since midnight (may exceed 86400 for late arrival times)."""
        return self._seconds

    @property
    def hour(self) -> int:
        """Whole hours component."""
        return int(self._seconds // 3600)

    @property
    def minute(self) -> int:
        """Whole minutes component within the hour."""
        return int((self._seconds % 3600) // 60)

    @property
    def second(self) -> float:
        """Seconds component within the minute."""
        return self._seconds % 60

    @property
    def within_day(self) -> bool:
        """``True`` when the instant lies in ``[0, 24:00]``."""
        return 0 <= self._seconds <= SECONDS_PER_DAY

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_hours(cls, hours: float) -> "TimeOfDay":
        """Build a time of day from a decimal number of hours (e.g. ``8.5``)."""
        return cls(hours * 3600.0)

    @classmethod
    def _from_seconds_unchecked(cls, seconds: float) -> "TimeOfDay":
        """Internal fast constructor for values already known to be valid.

        Used by the compiled query engine when stamping arrival times onto
        path hops; ``seconds`` must be a finite non-negative float.
        """
        instance = cls.__new__(cls)
        instance._seconds = seconds
        return instance

    @classmethod
    def midnight(cls) -> "TimeOfDay":
        """00:00."""
        return cls(0.0)

    @classmethod
    def end_of_day(cls) -> "TimeOfDay":
        """24:00 — usable only as an exclusive interval end."""
        return cls(float(SECONDS_PER_DAY))

    # -- arithmetic --------------------------------------------------------

    def add_seconds(self, delta: float) -> "TimeOfDay":
        """Return this instant shifted ``delta`` seconds into the future."""
        return TimeOfDay(self._seconds + delta)

    def wrapped(self) -> "TimeOfDay":
        """Return this instant folded back into ``[0, 24:00)``."""
        return TimeOfDay(self._seconds % SECONDS_PER_DAY)

    def __add__(self, delta: float) -> "TimeOfDay":
        if not isinstance(delta, (int, float)):
            return NotImplemented
        return self.add_seconds(float(delta))

    __radd__ = __add__

    def __sub__(self, other: Union["TimeOfDay", float, int]) -> Union["TimeOfDay", float]:
        if isinstance(other, TimeOfDay):
            return self._seconds - other._seconds
        if isinstance(other, (int, float)):
            return TimeOfDay(self._seconds - float(other))
        return NotImplemented

    # -- comparisons -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TimeOfDay):
            return self._seconds == other._seconds
        if isinstance(other, (int, float)):
            return self._seconds == float(other)
        return NotImplemented

    def __lt__(self, other: object) -> bool:
        if isinstance(other, TimeOfDay):
            return self._seconds < other._seconds
        if isinstance(other, (int, float)):
            return self._seconds < float(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._seconds)

    # -- formatting --------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeOfDay('{self}')"

    def __str__(self) -> str:
        total = int(round(self._seconds))
        hours, remainder = divmod(total, 3600)
        minutes, seconds = divmod(remainder, 60)
        if seconds:
            return f"{hours}:{minutes:02d}:{seconds:02d}"
        return f"{hours}:{minutes:02d}"

    def __float__(self) -> float:
        return self._seconds


def _parse_clock_string(text: str) -> float:
    """Parse ``"H:MM"``, ``"H:MM:SS"`` or a bare number of hours into seconds."""
    cleaned = text.strip()
    if not cleaned:
        raise InvalidTimeError("empty time-of-day string")
    parts = cleaned.split(":")
    if len(parts) > 3:
        raise InvalidTimeError(f"malformed time of day: {text!r}")
    try:
        numbers = [float(part) for part in parts]
    except ValueError as exc:
        raise InvalidTimeError(f"malformed time of day: {text!r}") from exc
    if len(parts) == 1:
        # Bare number means hours ("8" -> 8:00).
        return numbers[0] * 3600.0
    hours = numbers[0]
    minutes = numbers[1]
    seconds = numbers[2] if len(numbers) == 3 else 0.0
    if minutes < 0 or minutes >= 60 or seconds < 0 or seconds >= 60:
        raise InvalidTimeError(f"malformed time of day: {text!r}")
    return hours * 3600.0 + minutes * 60.0 + seconds


def as_time_of_day(value: TimeLike) -> TimeOfDay:
    """Coerce strings, numbers or :class:`TimeOfDay` instances to ``TimeOfDay``."""
    if isinstance(value, TimeOfDay):
        return value
    return TimeOfDay(value)
