"""Deterministic chaos tooling for the execution tiers.

:mod:`repro.testing.faults` is the fault-injection harness behind the chaos
parity suite: a seeded :class:`~repro.testing.faults.FaultPlan` describes
exactly which worker-pool events to sabotage (worker death mid-chunk, an
injected exception, a chunk delayed past its timeout, a payload corrupted at
rehydration, an initializer failure), and the supervised
:class:`~repro.core.parallel.ParallelBatchExecutor` threads the plan through
its worker initializer so every run of a chaos test replays the identical
failure schedule.

Nothing in here runs in production: the executor only imports this package
when a plan is explicitly supplied.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    FlakyRung,
    InjectedWorkerError,
    drip_feed_request,
    flood_requests,
    sigkill_mid_request_plan,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FlakyRung",
    "InjectedWorkerError",
    "drip_feed_request",
    "flood_requests",
    "sigkill_mid_request_plan",
]
