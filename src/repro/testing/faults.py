"""Seeded fault injection for the supervised parallel executor.

The chaos parity suite (``tests/test_fault_injection.py``) must prove a hard
guarantee: whatever the worker pool does — workers SIGKILLed mid-chunk,
exceptions thrown from chunk code, chunks delayed past their timeout,
payloads corrupted at rehydration, initializers that refuse to come up —
``run_batch`` still returns results bit-identical to the sequential oracle.
Random chaos cannot anchor such an assertion (an unreproducible failure is
an undebuggable failure), so injection here is **deterministic by
construction**:

* chunk faults key on ``(chunk_id, attempt)`` — both assigned
  deterministically by the executor — and fire while ``attempt`` is below
  the spec's budget, so a fault "happens" on the first dispatch and
  "resolves" on the retry without any cross-process state;
* initializer faults key on the pool *generation* (0 for the first pool,
  incremented per respawn), which the executor passes into every worker's
  initargs, so "the first pool is broken, the respawned pool is healthy" is
  expressible without coordination;
* payload corruption flips one seeded bit inside a seeded payload section,
  so the codec's CRC taxonomy is exercised on a reproducible byte.

The hooks at the bottom (:func:`prepare_worker_payload`,
:func:`fire_chunk_fault`) are called by ``repro.core.parallel`` inside the
worker process — only when a plan was explicitly supplied, so production
pools never import this module.
"""

from __future__ import annotations

import os
import random
import signal
import threading as _threading
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Fault kinds a :class:`FaultSpec` can name.
CRASH = "crash"  #: SIGKILL the worker process mid-chunk (no cleanup, no goodbye).
EXCEPTION = "exception"  #: raise :class:`InjectedWorkerError` from chunk code.
DELAY = "delay"  #: sleep ``delay_seconds`` before answering (timeout bait).
CORRUPT_PAYLOAD = "corrupt-payload"  #: flip one payload bit before rehydration.
INIT_FAIL = "init-fail"  #: raise from the worker initializer itself.

_CHUNK_KINDS = (CRASH, EXCEPTION, DELAY)
_INIT_KINDS = (CORRUPT_PAYLOAD, INIT_FAIL)


class InjectedWorkerError(RuntimeError):
    """The deliberate failure raised by exception/init-fail faults.

    A distinct type so chaos tests (and log readers) can tell injected
    failures from real bugs; pickles cleanly across the process boundary.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injection point of a :class:`FaultPlan`.

    Parameters
    ----------
    kind:
        One of :data:`CRASH`, :data:`EXCEPTION`, :data:`DELAY`,
        :data:`CORRUPT_PAYLOAD`, :data:`INIT_FAIL`.
    chunk_id:
        For chunk faults: the dispatched chunk to hit (``None`` hits every
        chunk).  Ignored by initializer faults.
    attempts_below:
        Chunk faults fire while the chunk's attempt number is below this —
        ``1`` (default) sabotages only the first dispatch, a large value
        defeats every pool retry and forces the in-process fallback rung.
    generations_below:
        Initializer faults fire while the pool generation is below this —
        ``1`` (default) breaks only the first pool, so the supervised
        respawn recovers.
    delay_seconds:
        Sleep length for :data:`DELAY` faults.
    """

    kind: str
    chunk_id: Optional[int] = None
    attempts_below: int = 1
    generations_below: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _CHUNK_KINDS + _INIT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches_chunk(self, chunk_id: int, attempt: int) -> bool:
        """Whether this (chunk) fault fires for ``chunk_id`` on ``attempt``."""
        if self.kind not in _CHUNK_KINDS:
            return False
        if self.chunk_id is not None and self.chunk_id != chunk_id:
            return False
        return attempt < self.attempts_below

    def matches_generation(self, generation: int) -> bool:
        """Whether this (initializer) fault fires for pool ``generation``."""
        return self.kind in _INIT_KINDS and generation < self.generations_below


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of failures for one supervised executor.

    The plan is immutable and fully determined by its fields, so a chaos
    test that constructs the same plan replays the same failures; ``seed``
    only parameterises the *choice* of corrupted byte (and the
    :meth:`scatter` convenience), never whether a fault fires.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def scatter(
        cls,
        seed: int,
        chunk_count: int,
        crash_every: int = 0,
        exception_every: int = 0,
        delay_every: int = 0,
        delay_seconds: float = 0.0,
    ) -> "FaultPlan":
        """A seeded mixed-fault plan over ``chunk_count`` chunks.

        Each ``*_every = n`` (n > 0) picks roughly ``chunk_count / n``
        distinct chunks for that fault kind via ``random.Random(seed)``, so
        the same arguments always sabotage the same chunks — randomised
        coverage, reproducible schedule.
        """
        rng = random.Random(seed)
        chunk_ids = list(range(chunk_count))
        faults = []
        for kind, every in (
            (CRASH, crash_every),
            (EXCEPTION, exception_every),
            (DELAY, delay_every),
        ):
            if every <= 0 or not chunk_ids:
                continue
            count = max(1, chunk_count // every)
            for chunk_id in sorted(rng.sample(chunk_ids, min(count, len(chunk_ids)))):
                faults.append(
                    FaultSpec(kind, chunk_id=chunk_id, delay_seconds=delay_seconds)
                )
        return cls(seed=seed, faults=tuple(faults))

    def chunk_fault(self, chunk_id: int, attempt: int) -> Optional[FaultSpec]:
        """The first chunk fault firing for ``(chunk_id, attempt)``, if any."""
        for spec in self.faults:
            if spec.matches_chunk(chunk_id, attempt):
                return spec
        return None

    def init_faults(self, generation: int) -> Tuple[FaultSpec, ...]:
        """Every initializer fault firing for pool ``generation``."""
        return tuple(spec for spec in self.faults if spec.matches_generation(generation))


def corrupt_payload(plan: FaultPlan, payload: bytes, generation: int) -> bytes:
    """Flip one seeded bit inside a seeded *section* of ``payload``.

    The flipped byte always lands inside section data (never the framing
    words), so rehydration fails with the codec's
    :class:`~repro.exceptions.CorruptPayloadError` — the exact error class a
    bit-flipped blob produces in the wild — rather than a framing error.
    """
    from repro.io.compiled_codec import payload_section_spans

    # Integer-only seed derivation: string hashing is salted per process, so
    # mixing in a str would pick different bytes in parent and worker.
    rng = random.Random((plan.seed + 1) * 1_000_003 + generation)
    spans = [span for span in payload_section_spans(payload) if span[2] > span[1]]
    _name, start, end = spans[rng.randrange(len(spans))]
    offset = rng.randrange(start, end)
    damaged = bytearray(payload)
    damaged[offset] ^= 1 << rng.randrange(8)
    return bytes(damaged)


def prepare_worker_payload(plan: FaultPlan, payload: bytes, generation: int) -> bytes:
    """Apply the plan's initializer faults inside a starting worker.

    Called by the pool initializer before the payload is rehydrated: an
    :data:`INIT_FAIL` fault raises immediately (the pool never comes up), a
    :data:`CORRUPT_PAYLOAD` fault hands back a damaged payload whose decode
    will raise :class:`~repro.exceptions.CorruptPayloadError`.
    """
    for spec in plan.init_faults(generation):
        if spec.kind == INIT_FAIL:
            raise InjectedWorkerError(
                f"injected initializer failure (pool generation {generation})"
            )
        payload = corrupt_payload(plan, payload, generation)
    return payload


def fire_chunk_fault(spec: FaultSpec, chunk_id: int, attempt: int) -> None:
    """Execute one chunk fault inside the worker that pulled the chunk."""
    if spec.kind == CRASH:
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == EXCEPTION:
        raise InjectedWorkerError(
            f"injected worker exception (chunk {chunk_id}, attempt {attempt})"
        )
    elif spec.kind == DELAY:
        time.sleep(spec.delay_seconds)


# -- service-level fault specs --------------------------------------------------
#
# The serving layer (:mod:`repro.service`) has failure surfaces the worker
# pool alone cannot express: clients that stall mid-request, offered load
# past the admission budget, and rungs of the degradation ladder failing in
# sequence.  The helpers below give the service chaos suite the same
# property the pool plan gives the executor suite — deterministic,
# replayable sabotage.


def sigkill_mid_request_plan(attempts_below: int = 1) -> FaultPlan:
    """A plan that SIGKILLs the worker holding **every** chunk of the first
    ``attempts_below`` dispatch attempts — the service-level "worker dies
    mid-request" fault.  With the default, the supervised retry recovers on
    the respawned pool; a large value defeats every retry and forces the
    executor's in-process rung (both of which the service must hide from
    the client behind a bit-identical answer)."""
    return FaultPlan(faults=(FaultSpec(CRASH, attempts_below=attempts_below),))


class FlakyRung:
    """A ``rung_fault_hook`` that fails one named ladder rung a set number
    of times, then heals — the deterministic driver for circuit-breaker
    open/half-open/re-close tests.

    Thread-safe (the hook runs on the service's worker threads); counts
    every *offered* batch per rung so tests can assert both the failures
    and the recovery probe schedule.
    """

    def __init__(self, rung: str, failures: int, error: type = RuntimeError):
        self.rung = rung
        self.failures = int(failures)
        self.error = error
        self.offered: dict = {}
        self._lock = _threading.Lock()

    def __call__(self, rung: str, venue: str) -> None:
        with self._lock:
            self.offered[rung] = self.offered.get(rung, 0) + 1
            if rung == self.rung and self.failures > 0:
                self.failures -= 1
                raise self.error(
                    f"injected rung failure ({rung} on {venue}, {self.failures} left)"
                )


async def drip_feed_request(
    host: str,
    port: int,
    body: bytes = b"{}",
    first_bytes: int = 4,
    hold_seconds: float = 30.0,
):
    """The slow-client fault: open a connection, send only the first few
    bytes of a request, then stall.  Returns ``(status, payload_bytes)``
    once the server gives up on us (the 408 path) or ``(None, b"")`` if the
    server just closes the socket.  ``hold_seconds`` bounds the stall so a
    misbehaving server cannot hang the test."""
    import asyncio

    request = (
        b"POST /query HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % len(body)
    ) + body
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(request[:first_bytes])
        await writer.drain()
        try:
            head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=hold_seconds)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ConnectionError):
            return None, b""
        status = int(head.split(b" ")[1])
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length"):
                length = int(line.split(b":")[1])
        payload = await reader.readexactly(length) if length else b""
        return status, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


def shard_owning(shards_snapshot: dict, venue: str) -> Tuple[str, dict]:
    """The ``(shard_name, shard_entry)`` owning ``venue`` inside a router's
    ``/readyz`` or ``/metrics`` ``shards`` section.  Raises ``KeyError``
    when no shard owns the venue — a chaos test aiming at a venue that is
    not actually deployed should fail loudly, not kill a random shard."""
    for name, entry in shards_snapshot.items():
        if venue in entry.get("venues", ()):
            return name, entry
    raise KeyError(f"no shard owns venue {venue!r} (shards: {sorted(shards_snapshot)})")


def sigkill_shard(shard_entry: dict) -> int:
    """SIGKILL the worker process behind one router shard entry (as found
    by :func:`shard_owning`) and return its pid — the sharded analogue of
    the pool's :data:`CRASH` fault: no cleanup, no goodbye, the supervisor
    must notice the death and respawn."""
    pid = shard_entry.get("pid")
    if not isinstance(pid, int):
        raise ValueError(f"shard entry carries no pid: {shard_entry!r}")
    os.kill(pid, signal.SIGKILL)
    return pid


async def await_router_ready(
    host: str, port: int, timeout: float = 30.0, interval: float = 0.1
) -> dict:
    """Poll a router's ``/readyz`` until it answers 200 (every shard up) and
    return the final readiness payload — the recovery barrier after
    :func:`sigkill_shard`.  Raises ``TimeoutError`` if readiness never
    returns within ``timeout`` (a respawn that never lands is a supervisor
    bug, not a reason to wait forever)."""
    import asyncio
    import json

    deadline = time.monotonic() + timeout
    last: dict = {}
    while time.monotonic() < deadline:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            await asyncio.sleep(interval)
            continue
        try:
            writer.write(b"GET /readyz HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(b" ")[1])
            length = 0
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length"):
                    length = int(line.split(b":")[1])
            payload = await reader.readexactly(length) if length else b"{}"
            last = json.loads(payload)
            if status == 200:
                return last
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
        await asyncio.sleep(interval)
    raise TimeoutError(f"router at {host}:{port} not ready within {timeout}s; last: {last}")


async def flood_requests(host: str, port: int, bodies, concurrency: Optional[int] = None):
    """The queue-overflow fault: fire every request in ``bodies`` at once
    (or ``concurrency`` at a time) and return the list of ``(status,
    payload_dict)`` outcomes in input order.  The chaos suite asserts the
    outcome *set* — every request either answered 200 (bit-identically) or
    was shed with a typed 429 — rather than any particular split."""
    import asyncio
    import json

    semaphore = asyncio.Semaphore(concurrency) if concurrency else None

    async def one(body: dict):
        if semaphore is not None:
            await semaphore.acquire()
        try:
            payload = json.dumps(body).encode()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(
                    (b"POST /query HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % len(payload))
                    + payload
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                status = int(head.split(b" ")[1])
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length"):
                        length = int(line.split(b":")[1])
                raw = await reader.readexactly(length) if length else b"{}"
                return status, json.loads(raw)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except Exception:
                    pass
        finally:
            if semaphore is not None:
                semaphore.release()

    return await asyncio.gather(*(one(body) for body in bodies))
