"""Tiny asyncio HTTP client helpers shared by the service test suites.

No third-party HTTP stack exists in the test environment (by design — the
server itself is raw asyncio streams), so the tests speak the same minimal
HTTP/1.1 dialect back at it.  Every helper opens a fresh connection unless
handed an existing reader/writer pair, so keep-alive behaviour is exercised
explicitly where a test cares about it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple


async def raw_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    reader: Optional[asyncio.StreamReader] = None,
    writer: Optional[asyncio.StreamWriter] = None,
) -> Tuple[int, Dict[str, Any]]:
    """One request/response exchange; returns ``(status, json_payload)``.

    With ``reader``/``writer`` supplied the exchange reuses that connection
    (keep-alive) and leaves it open; otherwise a fresh connection is opened
    and closed around the exchange.
    """
    own_connection = writer is None
    if own_connection:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        head = f"{method} {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_head = await reader.readuntil(b"\r\n\r\n")
        status = int(status_head.split(b" ")[1])
        length = 0
        for line in status_head.split(b"\r\n"):
            if line.lower().startswith(b"content-length"):
                length = int(line.split(b":")[1])
        payload = json.loads(await reader.readexactly(length)) if length else {}
        return status, payload
    finally:
        if own_connection:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass


async def post_query(host: str, port: int, document: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
    """POST ``document`` to ``/query`` on a fresh connection."""
    return await raw_request(host, port, "POST", "/query", json.dumps(document).encode())


async def get(host: str, port: int, path: str) -> Tuple[int, Dict[str, Any]]:
    """GET ``path`` on a fresh connection."""
    return await raw_request(host, port, "GET", path)


def query_body(
    source,
    target,
    time: str = "9:00",
    method: Optional[str] = None,
    deadline_ms: Optional[float] = None,
    venue: Optional[str] = None,
) -> Dict[str, Any]:
    """The ``/query`` body for a pair of :class:`IndoorPoint` endpoints."""
    body: Dict[str, Any] = {
        "source": [source.x, source.y, source.floor],
        "target": [target.x, target.y, target.floor],
        "time": time,
    }
    if method is not None:
        body["method"] = method
    if deadline_ms is not None:
        body["deadline_ms"] = deadline_ms
    if venue is not None:
        body["venue"] = venue
    return body


#: ``/metrics`` keys whose *children* are data (venue names, rung names,
#: shard names, status codes), not schema: recursion continues into the
#: values but the child keys themselves are not schema fields.
DYNAMIC_KEY_CONTAINERS = frozenset(
    {
        "venues",
        "answered_by_rung",
        "breakers",
        "selections",
        "shards",
        "routed_by_shard",
        "responses_by_status",
    }
)


def collect_metric_fields(payload: Any, _under_dynamic: bool = False) -> set:
    """Every schema field name a ``/metrics`` (or ``/readyz``) payload
    emits, walking nested dicts but skipping dynamic-key levels (see
    :data:`DYNAMIC_KEY_CONTAINERS`) — the set the operator handbook must
    document, computed from a live scrape so doc and code cannot drift."""
    fields = set()
    if isinstance(payload, dict):
        for key, value in payload.items():
            if not _under_dynamic:
                fields.add(key)
            fields |= collect_metric_fields(value, _under_dynamic=key in DYNAMIC_KEY_CONTAINERS)
    elif isinstance(payload, (list, tuple)):
        for item in payload:
            fields |= collect_metric_fields(item, _under_dynamic=False)
    return fields


def assert_fields_documented(payload: Any, doc_text: str, context: str) -> None:
    """Every schema field of ``payload`` must appear backticked in the
    operator handbook — the live-scrape-vs-docs diff of the acceptance
    criteria."""
    missing = sorted(
        field for field in collect_metric_fields(payload) if f"`{field}`" not in doc_text
    )
    assert not missing, (
        f"{context}: fields emitted by the live service but undocumented in "
        f"docs/OPERATIONS.md: {missing}"
    )


def assert_matches_oracle(payload: Dict[str, Any], oracle) -> None:
    """The service answer must be bit-identical to an in-process engine run:
    same reachability, same length, same door sequence, same deterministic
    counters (the ones the payload carries)."""
    assert payload["found"] == oracle.found
    if oracle.found:
        assert payload["length"] == oracle.length
    else:
        assert payload["length"] is None
    expected_doors = list(oracle.path.door_sequence) if oracle.path is not None else []
    assert payload["doors"] == expected_doors
    stats = payload["statistics"]
    assert stats["doors_settled"] == oracle.statistics.doors_settled
    assert stats["relaxations"] == oracle.statistics.relaxations
    assert stats["heap_pushes"] == oracle.statistics.heap_pushes
    assert stats["heap_pops"] == oracle.statistics.heap_pops
