"""Shared fixtures: the running-example IT-Graph, small hand-made venues and a
miniature synthetic mall.

Fixtures are module-scoped where construction is cheap and session-scoped for
the synthetic venue, which is the only expensive one.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ITSPQEngine
from repro.core.itgraph import build_itgraph
from repro.datasets.example_floorplan import (
    build_example_itgraph,
    build_example_schedule,
    build_example_space,
    example_query_points,
)
from repro.datasets.simple_venues import build_corridor_venue, build_two_room_venue
from repro.synthetic.floorplan import MallFloorConfig
from repro.synthetic.multifloor import MultiFloorConfig, generate_mall_venue
from repro.synthetic.schedules import ScheduleConfig, generate_schedule


@pytest.fixture(scope="session")
def example_space():
    """The reconstructed Figure 1 venue."""
    return build_example_space()


@pytest.fixture(scope="session")
def example_schedule():
    """The Table I door schedule."""
    return build_example_schedule()


@pytest.fixture(scope="session")
def example_itgraph():
    """The IT-Graph of the running example."""
    return build_example_itgraph()


@pytest.fixture(scope="session")
def example_points():
    """The query points p1–p4 of the running example."""
    return example_query_points()


@pytest.fixture()
def example_engine(example_itgraph):
    """A fresh engine over the running example (per-test, so counters reset)."""
    return ITSPQEngine(example_itgraph)


@pytest.fixture()
def two_room():
    """The minimal two-room venue with an always-open door."""
    return build_two_room_venue()


@pytest.fixture()
def corridor():
    """The corridor venue with four rooms and a shortcut door."""
    return build_corridor_venue()


@pytest.fixture(scope="session")
def tiny_mall_venue():
    """A miniature synthetic mall (single floor) used by integration tests."""
    config = MultiFloorConfig(
        floors=2,
        staircases_per_floor_pair=2,
        floor_config=MallFloorConfig(
            side=300.0,
            corridors=2,
            corridor_cells=3,
            shop_depth=25.0,
            shops_per_row=6,
            double_door_fraction=0.4,
            private_shop_fraction=0.1,
        ),
    )
    return generate_mall_venue(config, seed=5)


@pytest.fixture(scope="session")
def tiny_mall_itgraph(tiny_mall_venue):
    """IT-Graph of the miniature mall with an 8-checkpoint schedule."""
    schedule, _ = generate_schedule(
        tiny_mall_venue.space, ScheduleConfig(checkpoint_count=8, seed=3)
    )
    return build_itgraph(tiny_mall_venue.space, schedule, validate=False)
