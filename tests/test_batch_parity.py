"""Batch-vs-sequential parity: the batch execution contract.

Every result a :class:`~repro.core.batch.BatchExecutor` returns — found
flag, path (door sequence, per-hop distances and arrival times), length and
*all* search-statistics counters — must be bit-identical to what a
sequential ``ITSPQEngine.run`` produces for the same query, across all four
TV-check methods, multiple venues and adversarial query mixes (duplicate
queries, shared sources, shared query times, unreachable targets, private
target partitions, same-partition direct paths).  The sequential engine is
the oracle; ``tests/test_compiled_parity.py`` anchors it to the reference
search in turn.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_compiled_parity import METHODS, assert_parity

from repro.core.batch import BatchExecutor, SearchArena
from repro.core.engine import ITSPQEngine
from repro.core.query import ITSPQuery
from repro.datasets.simple_venues import build_corridor_venue, build_two_room_venue
from repro.exceptions import QueryError
from repro.geometry.point import IndoorPoint
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances
from repro.temporal.timeofday import TimeOfDay


def assert_batch_parity(itgraph, queries, methods=METHODS):
    """Batch results must be indistinguishable from sequential ``run`` calls.

    The oracle engine processes the queries in the same order the batch
    receives them (fresh engines on both sides, so snapshot-store state
    starts identically).
    """
    for method in methods:
        oracle = ITSPQEngine(itgraph)
        batch_engine = ITSPQEngine(itgraph)
        expected = [oracle.run(query, method=method) for query in queries]
        actual = batch_engine.run_batch(queries, method=method)
        assert len(actual) == len(expected)
        for reference_result, batch_result in zip(expected, actual):
            assert_parity(reference_result, batch_result)


class TestExampleVenueBatchParity:
    """Full sweep over the paper's running example."""

    def test_all_pairs_all_methods(self, example_itgraph, example_points):
        names = sorted(example_points)
        times = ["6:30", "9:00", "12:00", "15:55", "21:00", "23:30"]
        queries = [
            ITSPQuery(example_points[a], example_points[b], t)
            for a in names
            for b in names
            if a != b
            for t in times
        ]
        # Adversarial extras: duplicates, same-partition pairs, repeated tail.
        queries += queries[:7]
        queries += [ITSPQuery(example_points[a], example_points[a], "12:00") for a in names]
        assert_batch_parity(example_itgraph, queries)

    def test_single_query_batches(self, example_itgraph, example_points):
        queries = [ITSPQuery(example_points["p1"], example_points["p4"], "9:00")]
        assert_batch_parity(example_itgraph, queries)

    def test_empty_batch(self, example_itgraph):
        assert ITSPQEngine(example_itgraph).run_batch([], method="synchronous") == []

    def test_results_keep_input_order(self, example_itgraph, example_points):
        names = sorted(example_points)
        queries = [
            ITSPQuery(example_points[a], example_points[b], t)
            for t in ("12:00", "9:00")
            for a in names
            for b in names
            if a != b
        ]
        results = ITSPQEngine(example_itgraph).run_batch(queries, method="synchronous")
        for query, result in zip(queries, results):
            assert result.query is query


class TestSimpleVenueBatchParity:
    def test_window_schedule_with_unreachable_times(self):
        itgraph, points = build_two_room_venue({"d1": [("8:00", "16:00")]})
        queries = [
            ITSPQuery(points[a], points[b], t)
            for a in ("a", "b")
            for b in ("a", "b")
            for t in ("7:00", "8:00", "12:00", "15:59:55", "16:00", "23:00")
        ]
        assert_batch_parity(itgraph, queries)

    def test_never_open_door_not_found(self):
        itgraph, points = build_two_room_venue({"d1": []})
        queries = [
            ITSPQuery(points["a"], points["b"], "12:00"),
            ITSPQuery(points["a"], points["b"], "3:00"),
            ITSPQuery(points["b"], points["a"], "12:00"),
        ]
        assert_batch_parity(itgraph, queries)
        results = ITSPQEngine(itgraph).run_batch(queries, method="synchronous")
        assert all(not r.found for r in results)

    def test_private_target_partitions_split_groups(self):
        itgraph, points = build_corridor_venue(private_rooms=("room2", "room3"))
        names = sorted(points)
        queries = [
            ITSPQuery(points[a], points[b], t)
            for a in names
            for b in names
            for t in ("8:00", "12:00", "22:30")
        ]
        assert_batch_parity(itgraph, queries)

    def test_shortcut_schedule_mix(self):
        itgraph, points = build_corridor_venue(
            {"s12": [("9:00", "11:00"), ("20:00", "22:00")]}
        )
        names = sorted(points)
        queries = [
            ITSPQuery(points[a], points[b], t)
            for a in names
            for b in names
            if a != b
            for t in ("8:59", "9:00", "10:30", "21:59", "22:00")
        ]
        assert_batch_parity(itgraph, queries)

    def test_outside_endpoint_raises_query_error(self):
        itgraph, points = build_two_room_venue()
        bad = [
            ITSPQuery(points["a"], points["b"], "12:00"),
            ITSPQuery(points["a"], IndoorPoint(1e6, 1e6, 0), "12:00"),
        ]
        with pytest.raises(QueryError):
            ITSPQEngine(itgraph).run_batch(bad, method="synchronous")


class TestSyntheticVenueBatchParity:
    """The miniature mall: staircases, private shops, generated schedule."""

    def test_fanout_workload_all_methods(self, tiny_mall_itgraph):
        workload = generate_query_instances(
            tiny_mall_itgraph,
            QueryWorkloadConfig(s2t_distance=180.0, pairs=5, query_time="12:00", seed=17),
        )
        sources = [g.query.source for g in workload]
        targets = [g.query.target for g in workload]
        queries = [
            ITSPQuery(s, t, tm)
            for s in sources
            for t in targets
            for tm in ("6:30", "12:00", "21:45")
        ]
        queries += queries[::9]  # duplicates sprinkled over every group shape
        assert_batch_parity(tiny_mall_itgraph, queries)


class TestPlanShapes:
    """The planner's grouping invariants (what makes batching worth it)."""

    @staticmethod
    def _executor(itgraph):
        return ITSPQEngine(itgraph).batch_executor()

    def test_common_source_same_time_shares_group(self, example_itgraph, example_points):
        executor = self._executor(example_itgraph)
        p1, p3, p4 = example_points["p1"], example_points["p3"], example_points["p4"]
        queries = [
            ITSPQuery(p1, p3, "12:00"),
            ITSPQuery(p1, p4, "12:00"),
            ITSPQuery(p1, p3, "12:00"),  # exact duplicate
        ]
        plan = executor.planner.plan(queries, "synchronous")
        sizes = sorted(group.size for group in plan)
        # p3/p4 may differ in private-partition context, but the duplicate
        # must always share its group and every query must be planned.
        assert sum(sizes) == 3
        assert max(sizes) >= 2

    def test_different_times_split_for_its(self, example_itgraph, example_points):
        executor = self._executor(example_itgraph)
        p1, p3 = example_points["p1"], example_points["p3"]
        queries = [ITSPQuery(p1, p3, "12:00"), ITSPQuery(p1, p3, "12:00:01")]
        assert len(executor.planner.plan(queries, "synchronous")) == 2
        assert len(executor.planner.plan(queries, "asynchronous")) == 2

    def test_static_merges_all_times(self, example_itgraph, example_points):
        executor = self._executor(example_itgraph)
        p1, p3 = example_points["p1"], example_points["p3"]
        queries = [ITSPQuery(p1, p3, t) for t in ("0:15", "7:45", "12:00", "23:59")]
        assert len(executor.planner.plan(queries, "static")) == 1

    def test_query_time_merges_within_ati_interval(self, example_itgraph, example_points):
        executor = self._executor(example_itgraph)
        p1, p3 = example_points["p1"], example_points["p3"]
        # Two instants a second apart almost never straddle an ATI boundary;
        # two on opposite sides of 8:00 (a Table I boundary) must split.
        same = [ITSPQuery(p1, p3, "12:00"), ITSPQuery(p1, p3, "12:00:01")]
        split = [ITSPQuery(p1, p3, "7:59:59"), ITSPQuery(p1, p3, "8:00:01")]
        assert len(executor.planner.plan(same, "query-time")) == 1
        assert len(executor.planner.plan(split, "query-time")) == 2

    def test_plan_rejects_unknown_method(self, example_itgraph, example_points):
        executor = self._executor(example_itgraph)
        with pytest.raises(ValueError):
            executor.planner.plan(
                [ITSPQuery(example_points["p1"], example_points["p3"], "12:00")], "teleport"
            )


class TestSequentialFallbacks:
    """``run_batch(batch=False)`` and non-compiled engines stay oracles."""

    def test_sequential_flag_matches_run(self, example_itgraph, example_points):
        names = sorted(example_points)
        queries = [
            ITSPQuery(example_points[a], example_points[b], "9:00")
            for a in names
            for b in names
            if a != b
        ]
        for method in METHODS:
            engine = ITSPQEngine(example_itgraph)
            expected = [ITSPQEngine(example_itgraph).run(q, method=method) for q in queries]
            actual = engine.run_batch(queries, method=method, batch=False)
            for reference_result, batch_result in zip(expected, actual):
                assert_parity(reference_result, batch_result)

    def test_reference_engine_hoisted_strategy_matches_run(
        self, example_itgraph, example_points
    ):
        names = sorted(example_points)
        queries = [
            ITSPQuery(example_points[a], example_points[b], "9:00")
            for a in names
            for b in names
            if a != b
        ]
        for method in METHODS:
            engine = ITSPQEngine(example_itgraph, compiled=False)
            expected = [
                ITSPQEngine(example_itgraph, compiled=False).run(q, method=method)
                for q in queries
            ]
            actual = engine.run_batch(queries, method=method)
            for reference_result, batch_result in zip(expected, actual):
                assert_parity(reference_result, batch_result)

    def test_batch_executor_requires_compiled_engine(self, example_itgraph):
        with pytest.raises(QueryError):
            ITSPQEngine(example_itgraph, compiled=False).batch_executor()

    def test_executor_is_cached_on_engine(self, example_itgraph):
        engine = ITSPQEngine(example_itgraph)
        assert engine.batch_executor() is engine.batch_executor()


class TestSearchArena:
    def test_generation_reset_and_growth(self):
        arena = SearchArena(4)
        generation = arena.begin_run(4)
        arena.dist[2] = 7.5
        arena.label_stamp[2] = generation
        assert arena.begin_run(4) == generation + 1
        assert arena.label_stamp[2] != arena.generation  # stale without clearing
        capacity = arena.capacity
        arena.begin_run(capacity + 1)
        assert arena.capacity >= capacity + 1
        assert len(arena.dist) == arena.capacity

    def test_heap_cleared_between_runs(self):
        arena = SearchArena(2)
        arena.begin_run(2)
        arena.heap.append((1.0, 0, 0))
        arena.begin_run(2)
        assert arena.heap == []


class TestExecutorDirectUse:
    def test_standalone_executor_matches_engine(self, example_itgraph, example_points):
        compiled = example_itgraph.compiled()
        executor = BatchExecutor(compiled)
        names = sorted(example_points)
        queries = [
            ITSPQuery(example_points[a], example_points[b], "12:00")
            for a in names
            for b in names
            if a != b
        ]
        oracle = ITSPQEngine(example_itgraph)
        expected = [oracle.run(q, method="synchronous") for q in queries]
        for reference_result, batch_result in zip(
            expected, executor.run_batch(queries, "synchronous")
        ):
            assert_parity(reference_result, batch_result)

    def test_rejects_nonpositive_walking_speed(self, example_itgraph):
        with pytest.raises(ValueError):
            BatchExecutor(example_itgraph.compiled(), walking_speed=0.0)


class TestHypothesisBatchParity:
    """Property sweep: random schedules and adversarial query mixes."""

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=22),
        st.integers(min_value=1, max_value=12),
        st.lists(
            st.tuples(
                st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
                st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
                st.floats(min_value=0.0, max_value=86399.0, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from(METHODS),
        st.booleans(),
    )
    def test_random_mix_parity(self, open_hour, duration, mix, method, duplicate_tail):
        close_hour = min(24, open_hour + duration)
        itgraph, points = build_corridor_venue(
            {"s12": [(f"{open_hour}:00", f"{close_hour}:00")], "c2": [("6:00", "22:00")]}
        )
        # Bucket times coarsely so shared query times (and therefore real
        # multi-member groups) actually occur in the generated mix.
        queries = [
            ITSPQuery(points[s], points[t], TimeOfDay(float(int(seconds // 3600) * 3600)))
            for s, t, seconds in mix
        ]
        if duplicate_tail:
            queries += queries[: len(queries) // 2 + 1]
        oracle = ITSPQEngine(itgraph)
        batch_engine = ITSPQEngine(itgraph)
        expected = [oracle.run(q, method=method) for q in queries]
        actual = batch_engine.run_batch(queries, method=method)
        for reference_result, batch_result in zip(expected, actual):
            assert_parity(reference_result, batch_result)
