"""Tests for the figure-regeneration experiments (run at tiny scale)."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentScale,
    build_environment,
    default_grid,
    experiment_ablation_checks,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
)


@pytest.fixture(scope="module")
def tiny_grid():
    return default_grid(ExperimentScale.TINY)


class TestParameterGrid:
    def test_paper_grid_matches_table_ii(self):
        grid = default_grid(ExperimentScale.PAPER)
        assert tuple(grid.checkpoint_counts) == (4, 8, 12, 16)
        assert tuple(grid.s2t_distances) == (1100, 1300, 1500, 1700, 1900)
        assert grid.default_checkpoints == 8
        assert grid.default_s2t == 1500
        assert grid.default_time == "12:00"
        assert len(grid.query_times) == 12  # 0:00, 2:00, ..., 22:00
        assert grid.query_pairs == 5
        assert grid.repetitions == 10
        assert grid.venue_config.floors == 5

    def test_smaller_scales_shrink_the_setting(self):
        small = default_grid(ExperimentScale.SMALL)
        tiny = default_grid(ExperimentScale.TINY)
        assert small.venue_config.floors < 5
        assert tiny.venue_config.floors == 1
        assert max(tiny.s2t_distances) < max(small.s2t_distances)


class TestEnvironment:
    def test_build_environment_produces_answerable_queries(self, tiny_grid):
        environment = build_environment(ExperimentScale.TINY, grid=tiny_grid)
        assert environment.queries
        assert environment.itgraph.door_count() > 0
        results = [environment.engine.run(query) for query in environment.queries]
        assert len(results) == len(environment.queries)

    def test_venue_is_cached_across_settings(self, tiny_grid):
        first = build_environment(ExperimentScale.TINY, checkpoint_count=4, grid=tiny_grid)
        second = build_environment(ExperimentScale.TINY, checkpoint_count=8, grid=tiny_grid)
        assert first.venue is second.venue
        assert first.itgraph is not second.itgraph


class TestExperiments:
    def test_fig4_rows_cover_the_grid(self, tiny_grid):
        result = experiment_fig4(ExperimentScale.TINY, grid=tiny_grid)
        checkpoints = {row["checkpoints"] for row in result.rows}
        assert checkpoints == set(tiny_grid.checkpoint_counts)
        # Two methods x two query times per checkpoint count.
        assert len(result.rows) == len(tiny_grid.checkpoint_counts) * 4
        assert all(row["mean_time_us"] > 0 for row in result.rows)

    def test_fig5_rows_cover_distances(self, tiny_grid):
        result = experiment_fig5(ExperimentScale.TINY, grid=tiny_grid)
        assert {row["s2t"] for row in result.rows} == set(tiny_grid.s2t_distances)
        assert {row["method"] for row in result.rows} == {"ITG/S", "ITG/A"}

    def test_fig6_rows_cover_times(self, tiny_grid):
        result = experiment_fig6(ExperimentScale.TINY, grid=tiny_grid)
        assert {row["query_time"] for row in result.rows} == set(tiny_grid.query_times)

    def test_fig7_reports_memory(self, tiny_grid):
        result = experiment_fig7(ExperimentScale.TINY, grid=tiny_grid)
        assert all(row["mean_memory_kb"] > 0 for row in result.rows)

    def test_ablation_reports_check_cost_split(self, tiny_grid):
        result = experiment_ablation_checks(ExperimentScale.TINY, grid=tiny_grid)
        by_method = {row["method"]: row for row in result.rows}
        assert by_method["ITG/S"]["ati_probes"] > 0
        assert by_method["ITG/S"]["snapshot_refreshes"] == 0
        assert by_method["ITG/A"]["snapshot_refreshes"] >= 1
        assert by_method["static"]["ati_probes"] == 0

    def test_registry_contains_every_figure(self):
        assert {"fig4", "fig5", "fig6", "fig7"} <= set(EXPERIMENTS)


class TestCli:
    def test_main_runs_one_experiment(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        output = tmp_path / "out.txt"
        exit_code = main(["ablation-checks", "--scale", "tiny", "--output", str(output)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "ITG/S" in captured and "ITG/A" in captured
        assert output.exists()
        assert "ITG/A" in output.read_text()
