"""Tests for the measurement harness and result containers."""

import pytest

from repro.bench.harness import ExperimentResult, run_query_set
from repro.bench.reporting import format_experiment, format_table, summarise_speedup
from repro.core.engine import CheckMethod
from repro.core.query import ITSPQuery


@pytest.fixture()
def example_queries(example_points):
    return [
        ITSPQuery(example_points["p1"], example_points["p2"], "12:00"),
        ITSPQuery(example_points["p3"], example_points["p4"], "9:00"),
    ]


class TestRunQuerySet:
    def test_aggregates_basic_measurements(self, example_engine, example_queries):
        measurement = run_query_set(example_engine, example_queries, CheckMethod.SYNCHRONOUS, repetitions=3)
        assert measurement.method == "ITG/S"
        assert measurement.queries == 2
        assert measurement.repetitions == 3
        assert measurement.mean_time_us > 0
        assert measurement.p50_time_us <= measurement.max_time_us
        assert measurement.found_fraction == 1.0
        assert measurement.mean_ati_probes > 0
        assert measurement.mean_memory_kb == 0.0  # memory not requested

    def test_memory_measurement(self, example_engine, example_queries):
        measurement = run_query_set(
            example_engine,
            example_queries,
            CheckMethod.ASYNCHRONOUS,
            repetitions=1,
            measure_memory=True,
        )
        assert measurement.method == "ITG/A"
        assert measurement.mean_memory_kb > 0
        assert measurement.mean_snapshot_refreshes >= 1

    def test_empty_query_set_rejected(self, example_engine):
        with pytest.raises(ValueError):
            run_query_set(example_engine, [], CheckMethod.SYNCHRONOUS)

    def test_as_row_allows_relabelling(self, example_engine, example_queries):
        measurement = run_query_set(example_engine, example_queries, "synchronous", repetitions=1)
        row = measurement.as_row(checkpoints=8, method="ITG/S(t=12)")
        assert row["method"] == "ITG/S(t=12)"
        assert row["checkpoints"] == 8
        assert row["mean_time_us"] > 0


class TestExperimentResult:
    def test_series_extraction(self):
        result = ExperimentResult(name="demo", description="demo experiment")
        result.add_row({"method": "ITG/S", "x": 1, "mean_time_us": 10.0})
        result.add_row({"method": "ITG/A", "x": 1, "mean_time_us": 8.0})
        result.add_row({"method": "ITG/S", "x": 2, "mean_time_us": 12.0})
        series = result.series("ITG/S", "x", "mean_time_us")
        assert series == [{"x": 1, "mean_time_us": 10.0}, {"x": 2, "mean_time_us": 12.0}]
        assert result.methods() == ["ITG/S", "ITG/A"]


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"

    def test_format_experiment_includes_parameters(self):
        result = ExperimentResult(name="demo", description="demo", parameters={"s2t": 400})
        result.add_row({"method": "ITG/S", "mean_time_us": 1.0})
        text = format_experiment(result)
        assert "demo" in text and "s2t=400" in text and "ITG/S" in text

    def test_summarise_speedup(self):
        result = ExperimentResult(name="demo", description="demo")
        result.add_row({"method": "ITG/S", "mean_time_us": 100.0})
        result.add_row({"method": "ITG/A", "mean_time_us": 50.0})
        summary = summarise_speedup(result, "ITG/S", "ITG/A")
        assert "2.00x" in summary

    def test_summarise_speedup_missing_method(self):
        result = ExperimentResult(name="demo", description="demo")
        assert "no comparable rows" in summarise_speedup(result, "ITG/S", "ITG/A")
