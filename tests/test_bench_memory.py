"""Tests for the memory measurement utilities."""

from repro.bench.memory import bytes_to_kb, deep_sizeof, measure_peak_memory


def test_measure_peak_memory_returns_result_and_positive_peak():
    def allocate():
        return [list(range(1000)) for _ in range(50)]

    result, peak = measure_peak_memory(allocate)
    assert len(result) == 50
    assert peak > 10_000  # at least tens of kilobytes were allocated


def test_measure_peak_memory_scales_with_allocation():
    def small():
        return [0] * 1_000

    def large():
        return [0] * 200_000

    _, small_peak = measure_peak_memory(small)
    _, large_peak = measure_peak_memory(large)
    assert large_peak > small_peak


def test_measure_peak_memory_supports_nesting():
    def outer():
        _, inner_peak = measure_peak_memory(lambda: [0] * 10_000)
        assert inner_peak > 0
        return inner_peak

    result, outer_peak = measure_peak_memory(outer)
    assert result > 0
    assert outer_peak >= 0


def test_deep_sizeof_counts_nested_structures():
    flat = [0] * 100
    nested = {"a": [list(range(100)) for _ in range(10)], "b": "x" * 1000}
    assert deep_sizeof(nested) > deep_sizeof(flat)


def test_deep_sizeof_handles_shared_references():
    shared = list(range(1000))
    container = [shared, shared, shared]
    # The shared list is only counted once, so the container costs little more
    # than the list alone.
    assert deep_sizeof(container) < 2 * deep_sizeof(shared)


def test_deep_sizeof_handles_objects_with_slots_and_dict(example_itgraph):
    size = deep_sizeof(example_itgraph)
    assert size > 10_000  # the IT-Graph is a non-trivial structure


def test_bytes_to_kb():
    assert bytes_to_kb(2048) == 2.0
