"""Interval-keyed tree-cache parity: cached answers must be bit-identical.

The :class:`~repro.core.cache.SPTreeCache` answers repeat queries from a
recorded shortest-path tree instead of a fresh Dijkstra.  The contract under
test: a cached answer — found flag, path, length and **every**
:class:`~repro.core.query.SearchStatistics` counter — equals the uncached
compiled answer (itself parity-locked to the reference engine by
``test_compiled_parity.py``), across all four TV-check methods, on both
standard venues, cold and warm, through the single-query engine seam, the
batch executor and the parallel workers.  Alongside parity: admission
(promote vs eager), LRU eviction under a small capacity, generation-stamped
invalidation, the interval-index time bucketing of the planner (satellite:
``query-time`` groups by ``IntervalBitsets.index_at``) and the opt-in
overlay pruning.
"""

import pytest

from test_compiled_parity import METHODS, assert_parity

from repro.core.batch import BatchExecutor
from repro.core.cache import CachedTree, CacheConfig, SPTreeCache, TimeKeyResolver
from repro.core.engine import ITSPQEngine
from repro.core.query import ITSPQuery
from repro.datasets.simple_venues import build_corridor_venue, build_two_room_venue
from repro.exceptions import QueryError
from repro.geometry.point import IndoorPoint
from repro.temporal.timeofday import TimeOfDay


def all_pairs_queries(points, times):
    names = sorted(points)
    return [
        ITSPQuery(points[a], points[b], t)
        for a in names
        for b in names
        if a != b
        for t in times
    ]


def assert_cached_parity(itgraph, queries, cache_config, methods=METHODS, rounds=2):
    """Cached engine + batch answers equal uncached compiled answers,
    repeated ``rounds`` times so both the build path and the hit path run."""
    oracle = ITSPQEngine(itgraph)
    cached_engine = ITSPQEngine(itgraph, cache=cache_config)
    for method in methods:
        expected = [oracle.run(query, method=method) for query in queries]
        batch = BatchExecutor(itgraph.compiled(), cache=cache_config)
        for _ in range(rounds):
            for reference, query in zip(expected, queries):
                assert_parity(reference, cached_engine.run(query, method=method))
            for reference, result in zip(expected, batch.run_batch(queries, method)):
                assert_parity(reference, result)
    return cached_engine


@pytest.fixture(scope="module")
def example_queries(example_points):
    times = ["6:30", "9:00", "12:00", "15:55", "21:00", "23:30"]
    queries = all_pairs_queries(example_points, times)
    queries += [
        ITSPQuery(example_points[name], example_points[name], "12:00")
        for name in sorted(example_points)
    ]
    return queries


@pytest.fixture(scope="module")
def tiny_mall_queries(tiny_mall_itgraph):
    space = tiny_mall_itgraph.space
    points = []
    for partition in space.iter_partitions():
        record = tiny_mall_itgraph.partition_record(partition.partition_id)
        if record.is_private or record.is_outdoor or partition.polygon is None:
            continue
        center = partition.polygon.bounding_box.center
        candidate = IndoorPoint(center.x, center.y, partition.floor)
        if partition.contains_point(candidate):
            points.append(candidate)
        if len(points) >= 6:
            break
    return [
        ITSPQuery(source, target, query_time)
        for source in points[:3]
        for target in points
        if source is not target
        for query_time in ("6:30", "12:00", "21:45")
    ]


class TestCachedAnswerParity:
    """Bit-identical answers on both venues, all methods, cold and warm."""

    def test_example_venue_eager(self, example_itgraph, example_queries):
        engine = assert_cached_parity(
            example_itgraph, example_queries, CacheConfig(mode="eager")
        )
        stats = engine.cache_stats
        assert stats["trees_built"] > 0
        assert stats["hits"] > 0  # warm rounds answered from the cache

    def test_example_venue_promote(self, example_itgraph, example_queries):
        engine = assert_cached_parity(
            example_itgraph,
            example_queries,
            CacheConfig(mode="promote", promote_after=2),
            rounds=3,
        )
        stats = engine.cache_stats
        assert stats["trees_built"] > 0 and stats["hits"] > 0

    def test_tiny_mall_eager(self, tiny_mall_itgraph, tiny_mall_queries):
        engine = assert_cached_parity(
            tiny_mall_itgraph, tiny_mall_queries, CacheConfig(mode="eager")
        )
        assert engine.cache_stats["hits"] > 0

    def test_private_target_contexts(self):
        itgraph, points = build_corridor_venue(
            {"s12": [("9:00", "11:00"), ("20:00", "22:00")]},
            private_rooms=("room2",),
        )
        queries = all_pairs_queries(points, ["8:59", "9:00", "10:30", "21:59", "22:00"])
        assert_cached_parity(itgraph, queries, CacheConfig(mode="eager"))

    def test_not_found_answers_are_cached_exactly(self):
        # d1 never opens for the sync/async/query-time methods at 23:00: the
        # cached not-found answer must carry the full exhausted-search stats.
        itgraph, points = build_two_room_venue({"d1": [("8:00", "9:00")]})
        queries = all_pairs_queries(points, ["7:00", "8:30", "23:00"])
        assert_cached_parity(itgraph, queries, CacheConfig(mode="eager"))

    def test_parallel_workers_with_caches(self, example_itgraph, example_queries):
        oracle = ITSPQEngine(example_itgraph)
        expected = [oracle.run(query, method="synchronous") for query in example_queries]
        with ITSPQEngine(example_itgraph, cache=CacheConfig(mode="eager")) as engine:
            results = engine.run_batch(example_queries * 6, method="synchronous", workers=2)
        for reference, result in zip(expected * 6, results):
            assert_parity(reference, result)


class TestIntervalTimeBuckets:
    """Satellite: ``query-time`` groups by checkpoint-interval index."""

    def test_interval_key_matches_index_at(self, example_itgraph):
        compiled = example_itgraph.compiled()
        resolver = TimeKeyResolver(compiled)
        assert resolver.interval_indexing_sound()
        bitsets = compiled.interval_bitsets
        for clock in ("0:00", "6:29", "9:00", "12:00:01", "15:55", "23:59:59"):
            seconds = TimeOfDay(clock).seconds
            assert resolver.key(3, seconds) == float(bitsets.index_at(seconds))
        # Static never reads the clock; arrival-time methods keep the second.
        assert resolver.key(2, 1234.5) == 0.0
        assert resolver.key(0, 1234.5) == 1234.5
        assert resolver.key(1, 1234.5) == 1234.5

    def test_unsound_indexing_falls_back_to_boundary_bisection(self):
        # A venue whose checkpoint set is thinner than the door boundaries
        # must refuse interval bucketing and keep the lossless bisection.
        itgraph, _points = build_two_room_venue({"d1": [("8:00", "9:00")]})
        compiled = itgraph.compiled()
        resolver = TimeKeyResolver(compiled)
        starts = set(compiled.interval_bitsets.starts)
        boundaries = {bound for bounds in compiled.ati_bounds for bound in bounds}
        if boundaries <= starts:
            assert resolver.interval_indexing_sound()
        else:
            assert not resolver.interval_indexing_sound()
        # Either way, equal keys must imply probe-equivalent instants: two
        # instants with different door states never share a key.
        before = TimeOfDay("7:59").seconds
        after = TimeOfDay("8:01").seconds
        assert resolver.key(3, before) != resolver.key(3, after)

    def test_bucketed_plans_answer_identically(self, example_itgraph, example_points):
        # Two instants inside one checkpoint interval must merge into one
        # group — and still answer exactly like the sequential oracle.
        compiled = example_itgraph.compiled()
        executor = BatchExecutor(compiled)
        source = example_points[sorted(example_points)[0]]
        target = example_points[sorted(example_points)[1]]
        queries = [
            ITSPQuery(source, target, "12:00"),
            ITSPQuery(source, target, "12:00:01"),
        ]
        plan = executor.planner.plan(queries, "query-time")
        assert len(plan) == 1 and plan[0].size == 2
        oracle = ITSPQEngine(example_itgraph)
        for reference, result in zip(
            [oracle.run(query, method="query-time") for query in queries],
            executor.run_batch(queries, "query-time"),
        ):
            assert_parity(reference, result)


class TestEvictionAndInvalidation:
    def test_lru_eviction_under_small_capacity(self, example_itgraph, example_queries):
        config = CacheConfig(max_entries=2, mode="eager")
        engine = assert_cached_parity(example_itgraph, example_queries, config)
        stats = engine.cache_stats
        assert stats["entries"] <= 2
        assert stats["evictions"] > 0  # the workload has many more keys

    def test_lru_keeps_the_most_recently_used_keys(self, example_itgraph):
        compiled = example_itgraph.compiled()
        cache = SPTreeCache(compiled, config=CacheConfig(max_entries=2, mode="eager"))
        cache.store_tree(("a",), CachedTree())
        cache.store_tree(("b",), CachedTree())
        assert cache.lookup(("a",)) is not None  # refresh "a": "b" becomes LRU
        cache.store_tree(("c",), CachedTree())  # capacity 2: evicts "b"
        assert cache.evictions == 1
        assert cache.peek(("b",)) is None
        assert cache.peek(("a",)) is not None and cache.peek(("c",)) is not None

    def test_generation_bump_invalidates_every_entry(self, example_itgraph, example_queries):
        engine = ITSPQEngine(example_itgraph, cache=CacheConfig(mode="eager"))
        oracle = ITSPQEngine(example_itgraph)
        expected = [oracle.run(query, method="synchronous") for query in example_queries]
        for reference, query in zip(expected, example_queries):
            assert_parity(reference, engine.run(query, method="synchronous"))
        cache = engine.cache
        built_before = cache.trees_built
        generation_before = cache.generation
        cache.invalidate()
        assert cache.generation == generation_before + 1
        assert cache.stats()["entries"] == 0
        # Post-invalidation answers rebuild trees and stay bit-identical.
        for reference, query in zip(expected, example_queries):
            assert_parity(reference, engine.run(query, method="synchronous"))
        assert cache.trees_built > built_before


class TestAdmission:
    def test_promote_mode_counts_misses_before_building(self, example_itgraph, example_points):
        engine = ITSPQEngine(
            example_itgraph, cache=CacheConfig(mode="promote", promote_after=2)
        )
        names = sorted(example_points)
        query = ITSPQuery(example_points[names[0]], example_points[names[1]], "9:00")
        engine.run(query, method="synchronous")  # miss 1: tallied, not built
        stats = engine.cache_stats
        assert stats == dict(stats, misses=1, trees_built=0, hits=0)
        engine.run(query, method="synchronous")  # miss 2: promoted, built
        stats = engine.cache_stats
        assert stats["misses"] == 2 and stats["trees_built"] == 1 and stats["hits"] == 0
        engine.run(query, method="synchronous")  # hit
        assert engine.cache_stats["hits"] == 1

    def test_off_mode_never_builds(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph, cache=CacheConfig(mode="off"))
        names = sorted(example_points)
        query = ITSPQuery(example_points[names[0]], example_points[names[1]], "9:00")
        for _ in range(4):
            engine.run(query, method="synchronous")
        stats = engine.cache_stats
        assert stats["trees_built"] == 0 and stats["hits"] == 0 and stats["misses"] == 4

    def test_warm_cache_builds_ahead_of_time(self, example_itgraph, example_queries):
        engine = ITSPQEngine(example_itgraph, cache=True)  # promote defaults
        built = engine.warm_cache(example_queries, method="synchronous")
        assert built > 0
        oracle = ITSPQEngine(example_itgraph)
        for query in example_queries:
            assert_parity(
                oracle.run(query, method="synchronous"),
                engine.run(query, method="synchronous"),
            )
        stats = engine.cache_stats
        assert stats["misses"] == 0 and stats["hits"] == len(example_queries)

    def test_warming_requires_a_cache(self, example_itgraph, example_queries):
        engine = ITSPQEngine(example_itgraph)
        with pytest.raises(QueryError, match="cache"):
            engine.warm_cache(example_queries)


class TestEngineOptions:
    def test_cache_off_by_default(self, example_itgraph):
        engine = ITSPQEngine(example_itgraph)
        engine.ensure_compiled()
        assert engine.cache is None and engine.cache_stats is None

    def test_cache_true_uses_defaults(self, example_itgraph):
        engine = ITSPQEngine(example_itgraph, cache=True)
        engine.ensure_compiled()
        assert engine.cache is not None
        assert engine.cache.config.mode == "promote"

    def test_invalid_cache_option_is_rejected(self, example_itgraph):
        with pytest.raises(TypeError, match="cache"):
            ITSPQEngine(example_itgraph, cache="yes please")

    def test_invalid_config_values_are_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            CacheConfig(max_entries=0)
        with pytest.raises(ValueError, match="mode"):
            CacheConfig(mode="sometimes")
        with pytest.raises(ValueError, match="promote_after"):
            CacheConfig(promote_after=0)


class TestOverlayPruning:
    @pytest.fixture()
    def clean_overlays(self, example_itgraph):
        """Drop precompute overlays from the session-scoped example graph
        afterwards, so no-overlay codec fixtures keep their nine sections."""
        yield
        example_itgraph.compiled().overlays = None

    def test_precompute_builds_overlays(self, example_itgraph, clean_overlays):
        engine = ITSPQEngine(example_itgraph, cache=CacheConfig(precompute=True))
        graph = engine.ensure_compiled()
        assert graph.overlays is not None
        assert len(graph.overlays.component_rows) == graph.interval_bitsets.interval_count + 2

    def test_pruning_answers_match_on_found_and_length(self):
        # Door d1 is the only link between the rooms; before it ever opens a
        # pruned answer must agree with the oracle on found/length (the
        # counters of a pruned answer are approximate by design).
        itgraph, points = build_two_room_venue({"d1": [("8:00", "9:00")]})
        oracle = ITSPQEngine(itgraph)
        engine = ITSPQEngine(
            itgraph,
            cache=CacheConfig(mode="eager", precompute=True, prune_unreachable=True),
        )
        queries = all_pairs_queries(points, ["7:00", "8:30", "23:00"])
        pruned_any = False
        for method in ("static", "query-time"):
            for query in queries:
                expected = oracle.run(query, method=method)
                actual = engine.run(query, method=method)
                assert actual.found == expected.found
                assert actual.length == expected.length
        if engine.cache.pruned:
            pruned_any = True
        # query-time before 8:00 crosses no open door: the component row
        # proves it and at least one query short-circuits.
        assert pruned_any

    def test_default_config_never_prunes(self, example_itgraph, example_queries, clean_overlays):
        engine = assert_cached_parity(
            example_itgraph, example_queries, CacheConfig(mode="eager", precompute=True)
        )
        assert engine.cache_stats["pruned"] == 0
