"""Codec integrity: a damaged payload must fail loudly, never decode wrong.

The v2 compiled-graph payload carries a CRC32 per section plus a trailing
whole-payload CRC32.  The contract under test: *any* content damage raises
:class:`~repro.exceptions.CorruptPayloadError` (framing violations — foreign
magic, old versions, truncation, trailing bytes — keep raising plain
:class:`~repro.exceptions.SerializationError`), and a payload that decodes
at all decodes exactly.  This is what lets the parallel executor treat a
corrupt rehydration payload as a recoverable worker fault rather than a
silent wrong-answer hazard.
"""

import random
import struct
from zlib import crc32

import pytest

from repro.exceptions import CorruptPayloadError, SerializationError
from repro.io.compiled_codec import (
    OPTIONAL_SECTION_NAME,
    SECTION_NAMES,
    compiled_graph_from_bytes,
    compiled_graph_to_bytes,
    payload_section_spans,
    verify_payload,
)
from repro.io.serialize import load_compiled_graph, save_compiled_graph

_U32 = struct.Struct("<I")
_HEADER = struct.Struct("<6sH")


@pytest.fixture(scope="module")
def payload(example_itgraph):
    return compiled_graph_to_bytes(example_itgraph.compiled())


def patch_trailing_crc(data: bytes) -> bytes:
    """Recompute the whole-payload CRC so deeper checks get exercised."""
    body = data[: -_U32.size]
    return body + _U32.pack(crc32(body))


class TestIntactPayload:
    def test_verify_payload_accepts_a_good_payload(self, payload):
        verify_payload(payload)  # must not raise

    def test_section_spans_cover_disjoint_content(self, payload):
        spans = payload_section_spans(payload)
        assert [name for name, _, _ in spans] == list(SECTION_NAMES)
        previous_end = 0
        for _name, start, end in spans:
            assert previous_end <= start <= end <= len(payload)
            previous_end = end


class TestContentDamage:
    @pytest.mark.parametrize("section_name", SECTION_NAMES)
    def test_single_byte_flip_in_each_section_is_detected(self, payload, section_name):
        spans = {name: (start, end) for name, start, end in payload_section_spans(payload)}
        start, end = spans[section_name]
        if start == end:
            pytest.skip(f"section {section_name!r} is empty for this venue")
        rng = random.Random(hash(section_name) & 0xFFFF)
        damaged = bytearray(payload)
        damaged[rng.randrange(start, end)] ^= 1 << rng.randrange(8)
        # Patch the trailing CRC so the *section* checksum is what trips,
        # proving the error names the damaged section.
        blob = patch_trailing_crc(bytes(damaged))
        with pytest.raises(CorruptPayloadError, match=section_name):
            compiled_graph_from_bytes(blob)
        with pytest.raises(CorruptPayloadError):
            verify_payload(blob)

    def test_unpatched_flip_fails_the_whole_payload_crc(self, payload):
        rng = random.Random(2024)
        body_start = _HEADER.size + _U32.size
        for _ in range(16):
            damaged = bytearray(payload)
            offset = rng.randrange(body_start, len(payload) - _U32.size)
            damaged[offset] ^= 1 << rng.randrange(8)
            with pytest.raises(CorruptPayloadError):
                compiled_graph_from_bytes(bytes(damaged))

    def test_corrupt_payload_error_is_a_serialization_error(self):
        assert issubclass(CorruptPayloadError, SerializationError)
        damaged = patch_trailing_crc(b"\x00" * 64)
        with pytest.raises(SerializationError):
            compiled_graph_from_bytes(damaged)


class TestFramingViolations:
    def test_foreign_magic_is_a_framing_error(self, payload):
        blob = b"NOTRPG" + payload[6:]
        with pytest.raises(SerializationError, match="magic"):
            compiled_graph_from_bytes(blob)

    def test_old_format_version_is_rejected_cleanly(self, payload):
        # A v1 payload (same magic, version word 1) must be refused by
        # version, not misparsed into CRC noise.
        blob = _HEADER.pack(b"RPROCG", 1) + payload[_HEADER.size :]
        with pytest.raises(SerializationError, match="version"):
            compiled_graph_from_bytes(blob)
        with pytest.raises(SerializationError, match="version"):
            verify_payload(blob)

    def test_truncation_is_a_framing_error(self, payload):
        for keep in (4, len(payload) // 2, len(payload) - 1):
            with pytest.raises(SerializationError):
                compiled_graph_from_bytes(payload[:keep])

    def test_trailing_garbage_is_a_framing_error(self, payload):
        with pytest.raises(SerializationError, match="trailing"):
            compiled_graph_from_bytes(payload + b"\x00\x01")

    def test_tampered_section_count_is_a_framing_error(self, payload):
        offset = _HEADER.size + _U32.size
        damaged = bytearray(payload)
        damaged[offset : offset + _U32.size] = _U32.pack(len(SECTION_NAMES) + 1)
        with pytest.raises(SerializationError, match="sections"):
            compiled_graph_from_bytes(patch_trailing_crc(bytes(damaged)))


class TestFileLevel:
    def test_roundtrip_through_file(self, example_itgraph, tmp_path):
        target = tmp_path / "index.bin"
        save_compiled_graph(example_itgraph.compiled(), target)
        graph = load_compiled_graph(target)
        assert graph.door_count == example_itgraph.compiled().door_count

    def test_corrupted_file_raises_corrupt_payload_error(self, payload, tmp_path):
        target = tmp_path / "damaged.bin"
        damaged = bytearray(payload)
        damaged[len(damaged) // 2] ^= 0x10
        target.write_bytes(bytes(damaged))
        with pytest.raises(CorruptPayloadError):
            load_compiled_graph(target)

    def test_unreadable_file_raises_serialization_error(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read"):
            load_compiled_graph(tmp_path / "does-not-exist.bin")


class TestOptionalPrecomputeSection:
    """Version 3: the optional ``precompute`` section (interval overlays)."""

    @pytest.fixture(scope="class")
    def overlay_payload(self, example_itgraph):
        compiled = example_itgraph.compiled()
        compiled.build_overlays()
        try:
            yield compiled_graph_to_bytes(compiled)
        finally:
            compiled.overlays = None  # session-scoped graph: leave it clean

    def test_overlay_payload_grows_one_named_section(self, payload, overlay_payload):
        names = [name for name, _, _ in payload_section_spans(overlay_payload)]
        assert names == list(SECTION_NAMES) + [OPTIONAL_SECTION_NAME]
        assert [name for name, _, _ in payload_section_spans(payload)] == list(SECTION_NAMES)

    def test_overlays_roundtrip_byte_stably(self, overlay_payload):
        rehydrated = compiled_graph_from_bytes(overlay_payload)
        assert rehydrated.overlays is not None
        assert compiled_graph_to_bytes(rehydrated) == overlay_payload

    def test_rehydrated_overlays_match(self, example_itgraph, overlay_payload):
        compiled = example_itgraph.compiled()
        fresh = compiled.overlays if compiled.overlays is not None else compiled.build_overlays()
        rehydrated = compiled_graph_from_bytes(overlay_payload).overlays
        try:
            assert rehydrated.door_count == fresh.door_count
            assert rehydrated.interval_count == fresh.interval_count
            assert rehydrated.landmark_indices == fresh.landmark_indices
            assert [list(row) for row in rehydrated.component_rows] == [
                list(row) for row in fresh.component_rows
            ]
            for fresh_interval, rehydrated_interval in zip(
                fresh.landmark_rows, rehydrated.landmark_rows
            ):
                for fresh_row, rehydrated_row in zip(fresh_interval, rehydrated_interval):
                    assert fresh_row.tobytes() == rehydrated_row.tobytes()
            assert rehydrated.entering_doors == fresh.entering_doors
        finally:
            compiled.overlays = None

    def test_corrupted_precompute_section_is_named(self, overlay_payload):
        spans = {name: (start, end) for name, start, end in payload_section_spans(overlay_payload)}
        start, end = spans[OPTIONAL_SECTION_NAME]
        damaged = bytearray(overlay_payload)
        damaged[(start + end) // 2] ^= 0x20
        blob = patch_trailing_crc(bytes(damaged))
        with pytest.raises(CorruptPayloadError, match=OPTIONAL_SECTION_NAME):
            compiled_graph_from_bytes(blob)

    def test_payload_without_overlays_still_loads(self, payload):
        graph = compiled_graph_from_bytes(payload)
        assert graph.overlays is None

    def test_version_2_payloads_still_load(self, payload, example_itgraph):
        # A v2 payload is a v3 payload without the optional section and with
        # the version word set to 2 — the exact bytes old checkouts wrote.
        downgraded = bytearray(payload)
        downgraded[:_HEADER.size] = _HEADER.pack(b"RPROCG", 2)
        blob = patch_trailing_crc(bytes(downgraded))
        graph = compiled_graph_from_bytes(blob)
        assert graph.door_count == example_itgraph.compiled().door_count
        assert graph.overlays is None

    def test_version_2_rejects_ten_sections(self, overlay_payload):
        # The optional section is a v3 feature: a payload claiming v2 with
        # ten sections is framing-invalid, not quietly accepted.
        downgraded = bytearray(overlay_payload)
        downgraded[:_HEADER.size] = _HEADER.pack(b"RPROCG", 2)
        with pytest.raises(SerializationError, match="sections"):
            compiled_graph_from_bytes(patch_trailing_crc(bytes(downgraded)))

    def test_declared_but_missing_precompute_is_a_framing_error(self, payload):
        # Section count says ten, body carries nine: truncation, by name.
        offset = _HEADER.size + _U32.size
        damaged = bytearray(payload)
        damaged[offset : offset + _U32.size] = _U32.pack(len(SECTION_NAMES) + 1)
        with pytest.raises(SerializationError, match="sections"):
            compiled_graph_from_bytes(patch_trailing_crc(bytes(damaged)))
