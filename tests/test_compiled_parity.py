"""Compiled-vs-reference engine parity: the dual-engine contract.

The compiled integer-indexed fast path (``ITSPQEngine(compiled=True)``, the
default) must be *bit-identical* to the object-level reference search
(``compiled=False``) — same found flag, same door sequence, same total length
(exactly, not just to tolerance), same per-hop arrival times and the same
search statistics, for all four TV-check methods.  The reference engine is
the oracle; these tests are what allows every other test in the suite to run
against the compiled path.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compiled import (
    CompiledAsyncCheck,
    CompiledITGraph,
    CompiledQueryTimeCheck,
    CompiledStaticCheck,
    CompiledSyncCheck,
    make_compiled_check,
)
from repro.core.engine import ITSPQEngine
from repro.core.tvcheck import make_strategy
from repro.datasets.simple_venues import build_corridor_venue, build_two_room_venue
from repro.exceptions import QueryError, UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.synthetic.queries import QueryWorkloadConfig, generate_query_instances
from repro.temporal.timeofday import TimeOfDay

METHODS = ("synchronous", "asynchronous", "static", "query-time")

#: Statistics fields that must match exactly between the two engines
#: (runtime obviously differs — that is the whole point).
_STAT_KEYS = (
    "doors_settled",
    "relaxations",
    "heap_pushes",
    "heap_pops",
    "partitions_expanded",
    "private_partitions_pruned",
    "temporally_pruned_doors",
    "ati_probes",
    "snapshot_refreshes",
    "membership_checks",
    "peak_heap_size",
)


def assert_parity(reference_result, compiled_result):
    """Assert two results are indistinguishable (modulo runtime)."""
    assert compiled_result.found == reference_result.found
    assert compiled_result.method_label == reference_result.method_label
    if reference_result.found:
        assert compiled_result.length == reference_result.length  # bit-identical
        ref_path, cmp_path = reference_result.path, compiled_result.path
        assert cmp_path.door_sequence == ref_path.door_sequence
        assert cmp_path.partition_sequence == ref_path.partition_sequence
        assert cmp_path.total_length == ref_path.total_length
        for ref_hop, cmp_hop in zip(ref_path.hops, cmp_path.hops):
            assert cmp_hop.distance_from_source == ref_hop.distance_from_source
            assert cmp_hop.arrival_time.seconds == ref_hop.arrival_time.seconds
    else:
        assert compiled_result.path is None and reference_result.path is None
        assert math.isinf(compiled_result.length)
    ref_stats = reference_result.statistics
    cmp_stats = compiled_result.statistics
    for key in _STAT_KEYS:
        assert getattr(cmp_stats, key) == getattr(ref_stats, key), key


def sweep_parity(itgraph, point_pairs, query_times, methods=METHODS):
    """Run identical query sequences through both engines and compare."""
    reference = ITSPQEngine(itgraph, compiled=False)
    fast = ITSPQEngine(itgraph, compiled=True)
    assert fast.compiled and not reference.compiled
    for method in methods:
        for source, target in point_pairs:
            for query_time in query_times:
                ref = reference.query(source, target, query_time, method)
                cmp = fast.query(source, target, query_time, method)
                assert_parity(ref, cmp)


class TestExampleVenueParity:
    """Full sweep over the paper's running example."""

    def test_all_methods_all_hours(self, example_itgraph, example_points):
        points = sorted(example_points)
        pairs = [
            (example_points[a], example_points[b]) for a in points for b in points if a != b
        ]
        times = [f"{hour}:00" for hour in range(0, 24, 3)] + ["23:30", "5:59"]
        sweep_parity(example_itgraph, pairs, times)


class TestSimpleVenueParity:
    def test_two_room_with_window_schedule(self):
        itgraph, points = build_two_room_venue({"d1": [("8:00", "16:00")]})
        sweep_parity(
            itgraph,
            [(points["a"], points["b"]), (points["b"], points["a"])],
            ["7:00", "8:00", "12:00", "15:59:55", "16:00", "23:00"],
        )

    def test_corridor_with_shortcut_schedule(self):
        itgraph, points = build_corridor_venue({"s12": [("9:00", "11:00"), ("20:00", "22:00")]})
        names = sorted(points)
        pairs = [(points[a], points[b]) for a in names for b in names]
        sweep_parity(itgraph, pairs, ["8:59", "9:00", "10:30", "12:00", "21:59", "22:00"])

    def test_private_rooms(self):
        itgraph, points = build_corridor_venue(private_rooms=("room2", "room3"))
        names = sorted(points)
        pairs = [(points[a], points[b]) for a in names for b in names if a != b]
        sweep_parity(itgraph, pairs, ["12:00"])

    def test_never_open_door(self):
        itgraph, points = build_two_room_venue({"d1": []})
        sweep_parity(itgraph, [(points["a"], points["b"])], ["12:00"])


class TestSyntheticVenueParity:
    """The tiny synthetic mall: staircases, private shops, generated schedule."""

    def test_generated_workload_all_methods(self, tiny_mall_itgraph):
        workload = generate_query_instances(
            tiny_mall_itgraph,
            QueryWorkloadConfig(s2t_distance=180.0, pairs=4, query_time="12:00", seed=17),
        )
        reference = ITSPQEngine(tiny_mall_itgraph, compiled=False)
        fast = ITSPQEngine(tiny_mall_itgraph, compiled=True)
        for method in METHODS:
            for generated in workload:
                for query_time in ("6:30", "12:00", "21:45"):
                    query = generated.query.at_time(query_time)
                    assert_parity(
                        reference.run(query, method=method), fast.run(query, method=method)
                    )

    def test_compiled_engine_rejects_outside_points(self, tiny_mall_itgraph):
        fast = ITSPQEngine(tiny_mall_itgraph, compiled=True)
        inside = generate_query_instances(
            tiny_mall_itgraph,
            QueryWorkloadConfig(s2t_distance=100.0, pairs=1, query_time="12:00", seed=2),
        )[0].query
        with pytest.raises(QueryError):
            fast.query(inside.source, IndoorPoint(1e6, 1e6, 0), "12:00")


class TestHypothesisParity:
    """Property-style sweep: random schedules, endpoints and fractional times."""

    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=22),
        st.integers(min_value=1, max_value=12),
        st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
        st.sampled_from(["room1", "room2", "room3", "room4", "corridor"]),
        st.floats(min_value=0.0, max_value=86399.0, allow_nan=False),
        st.sampled_from(METHODS),
    )
    def test_random_schedule_parity(self, open_hour, duration, source, target, query_seconds, method):
        close_hour = min(24, open_hour + duration)
        itgraph, points = build_corridor_venue(
            {"s12": [(f"{open_hour}:00", f"{close_hour}:00")], "c2": [("6:00", "22:00")]}
        )
        reference = ITSPQEngine(itgraph, compiled=False)
        fast = ITSPQEngine(itgraph, compiled=True)
        query_time = TimeOfDay(query_seconds)
        ref = reference.query(points[source], points[target], query_time, method)
        cmp = fast.query(points[source], points[target], query_time, method)
        assert_parity(ref, cmp)


class TestCompiledStructures:
    """The compiled index faithfully mirrors the object-level IT-Graph."""

    def test_interning_round_trip(self, example_itgraph):
        compiled = example_itgraph.compiled()
        assert isinstance(compiled, CompiledITGraph)
        assert example_itgraph.compiled() is compiled  # cached on the graph
        assert compiled.door_count == example_itgraph.door_count()
        assert compiled.partition_count == example_itgraph.partition_count()
        for door_id, index in compiled.door_index.items():
            assert compiled.door_ids[index] == door_id

    def test_dense_dm_matches_reference(self, example_itgraph):
        compiled = example_itgraph.compiled()
        for pid in example_itgraph.partition_ids():
            pidx = compiled.partition_index[pid]
            matrix = example_itgraph.partition_record(pid).distance_matrix
            for door_a in matrix.doors:
                for door_b in matrix.doors:
                    expected = matrix.distance(door_a, door_b)
                    got = compiled.intra_distance_idx(
                        pidx, compiled.door_index[door_a], compiled.door_index[door_b]
                    )
                    assert got == expected

    def test_dense_dm_unknown_door_raises(self, example_itgraph):
        compiled = example_itgraph.compiled()
        pidx = compiled.partition_index["v1"]
        foreign = next(
            index
            for door_id, index in compiled.door_index.items()
            if index not in compiled.dm_locals[pidx]
        )
        with pytest.raises(UnknownEntityError):
            compiled.intra_distance_idx(pidx, foreign, foreign)

    def test_ati_probe_matches_door_records(self, example_itgraph):
        compiled = example_itgraph.compiled()
        for door_id, index in compiled.door_index.items():
            atis = example_itgraph.door_record(door_id).atis
            for step in range(0, 25 * 3600, 1800):
                assert compiled.door_open_at_seconds(index, float(step)) == atis.contains_seconds(
                    float(step)
                ), (door_id, step)

    def test_interval_bitsets_match_snapshots(self, example_itgraph):
        compiled = example_itgraph.compiled()
        bitsets = compiled.interval_bitsets
        for start in bitsets.starts:
            bits = bitsets.bitset_at(start)
            open_doors = {
                door_id
                for door_id, index in compiled.door_index.items()
                if bits[index]
            }
            if start < 86400.0:
                assert open_doors == set(example_itgraph.doors_open_at(start))

    def test_locate_index_matches_space_locate(self, example_itgraph, example_points):
        compiled = example_itgraph.compiled()
        for point in example_points.values():
            expected = example_itgraph.covering_partition(point).partition_id
            assert compiled.partition_ids[compiled.locate_index(point)] == expected
        with pytest.raises(UnknownEntityError):
            compiled.locate_index(IndoorPoint(9999.0, 9999.0, 0))


class TestCompiledCheckClasses:
    """The standalone seconds-based check classes mirror the strategies."""

    @pytest.mark.parametrize("method", METHODS)
    def test_checks_agree_with_strategies(self, example_itgraph, method):
        compiled = example_itgraph.compiled()
        engine = ITSPQEngine(example_itgraph)
        engine.ensure_compiled()
        checker = make_compiled_check(
            method, compiled, compiled.interval_bitsets.store(), engine._walking_speed
        )
        strategy = make_strategy(method, example_itgraph)
        for query_time in ("5:00", "12:00", "15:55", "22:30"):
            t = TimeOfDay(query_time)
            checker.begin(t.seconds)
            strategy.begin_query(t)
            for door_id, index in compiled.door_index.items():
                for distance in (0.0, 40.0, 400.0, 4000.0):
                    assert bool(checker.passable(index, distance)) == strategy.is_passable(
                        door_id, distance, t
                    ), (method, query_time, door_id, distance)
            assert checker.counters() == strategy.counters()

    def test_factory_labels_and_rejection(self, example_itgraph):
        compiled = example_itgraph.compiled()
        store = compiled.interval_bitsets.store()
        labels = {
            CompiledSyncCheck: "ITG/S",
            CompiledAsyncCheck: "ITG/A",
            CompiledStaticCheck: "static",
            CompiledQueryTimeCheck: "query-time-snapshot",
        }
        for method, cls in zip(METHODS, labels):
            checker = make_compiled_check(method, compiled, store, 1.0)
            assert isinstance(checker, cls)
            assert checker.method_label == labels[cls]
        with pytest.raises(ValueError):
            make_compiled_check("teleport", compiled, store, 1.0)


class TestDispatchModes:
    def test_partition_once_keeps_compiled_enabled(self, example_itgraph):
        engine = ITSPQEngine(example_itgraph, partition_once=True)
        assert engine.compiled
        assert engine.partition_once

    def test_explicit_strategy_uses_reference_search(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph, compiled=True)
        strategy = make_strategy("synchronous", example_itgraph)
        result = engine.query(
            example_points["p3"], example_points["p4"], "9:00", strategy=strategy
        )
        assert result.found
        assert result.path.door_sequence == ["d18"]

    def test_unknown_method_rejected_by_both(self, example_itgraph, example_points):
        for compiled in (True, False):
            engine = ITSPQEngine(example_itgraph, compiled=compiled)
            with pytest.raises(ValueError):
                engine.query(example_points["p1"], example_points["p2"], "12:00", "teleport")
