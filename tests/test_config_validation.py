"""Construction-time validation: every numeric knob rejects bad values with a
``ValueError`` that names the offending field.

Covers :class:`CacheConfig`, :class:`ParallelBatchExecutor`,
:class:`ServiceConfig`, :class:`AdmissionController` and
:class:`CircuitBreaker` — misconfiguration must fail at construction, not as
a confusing runtime error deep inside a search.
"""

from __future__ import annotations

import pytest

from repro.core.cache import CacheConfig
from repro.core.parallel import ParallelBatchExecutor
from repro.service.admission import AdmissionController
from repro.service.degradation import CircuitBreaker
from repro.service.server import ServiceConfig


class TestCacheConfig:
    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"max_entries": 0}, "max_entries"),
            ({"max_entries": -3}, "max_entries"),
            ({"max_entries": 2.5}, "max_entries"),
            ({"max_entries": True}, "max_entries"),
            ({"promote_after": 0}, "promote_after"),
            ({"promote_after": -1}, "promote_after"),
            ({"promote_after": 1.5}, "promote_after"),
        ],
    )
    def test_rejects_bad_numbers_naming_the_field(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            CacheConfig(**kwargs)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            CacheConfig(mode="speculative")

    def test_accepts_defaults(self):
        config = CacheConfig()
        assert config.max_entries >= 1 and config.promote_after >= 1


@pytest.fixture(scope="module")
def compiled_graph(example_itgraph):
    return example_itgraph.compiled()


class TestParallelExecutorOptions:
    """The pool is created lazily, so bad options fail before any process
    spawns — both through the direct constructor and through the engine's
    ``parallel_executor`` seam."""

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"workers": 0}, "workers"),
            ({"workers": -2}, "workers"),
            ({"chunks_per_worker": 0}, "chunks_per_worker"),
            ({"max_chunk_retries": -1}, "max_chunk_retries"),
            ({"chunk_timeout": 0.0}, "chunk_timeout"),
            ({"chunk_timeout": -5.0}, "chunk_timeout"),
            ({"backoff_base": -0.1}, "backoff_base"),
            ({"backoff_cap": -1.0}, "backoff_cap"),
            ({"walking_speed": 0.0}, "walking_speed"),
            ({"walking_speed": -1.0}, "walking_speed"),
        ],
    )
    def test_rejects_bad_numbers_naming_the_field(self, compiled_graph, kwargs, field):
        options = {"workers": 1, **kwargs}
        workers = options.pop("workers")
        with pytest.raises(ValueError, match=field):
            ParallelBatchExecutor(compiled_graph, workers, **options)

    def test_engine_seam_names_the_field_too(self, example_itgraph):
        from repro.core.engine import ITSPQEngine

        engine = ITSPQEngine(example_itgraph)
        try:
            with pytest.raises(ValueError, match="workers"):
                engine.parallel_executor(workers=0)
            with pytest.raises(ValueError, match="chunk_timeout"):
                engine.parallel_executor(workers=1, chunk_timeout=-1.0)
        finally:
            engine.close()

    def test_chunk_timeout_none_is_allowed(self, compiled_graph):
        executor = ParallelBatchExecutor(compiled_graph, 1, chunk_timeout=None)
        executor.close()


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"batch_window_ms": -1.0}, "batch_window_ms"),
            ({"max_batch": 0}, "max_batch"),
            ({"max_pending": 0}, "max_pending"),
            ({"max_inflight_batches": 0}, "max_inflight_batches"),
            ({"default_deadline_ms": 0.0}, "default_deadline_ms"),
            ({"default_deadline_ms": -10.0}, "default_deadline_ms"),
            ({"client_timeout_seconds": 0.0}, "client_timeout_seconds"),
            ({"drain_timeout_seconds": -1.0}, "drain_timeout_seconds"),
            ({"workers": 0}, "workers"),
            ({"breaker_failure_threshold": 0}, "breaker_failure_threshold"),
            ({"breaker_backoff_base": -0.5}, "breaker_backoff_base"),
            ({"breaker_backoff_cap": -1.0}, "breaker_backoff_cap"),
            ({"max_body_bytes": 0}, "max_body_bytes"),
        ],
    )
    def test_rejects_bad_numbers_naming_the_field(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            ServiceConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.port == 0 and config.host == "127.0.0.1"


class TestAdmissionController:
    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"max_pending": 0}, "max_pending"),
            ({"max_pending": -1}, "max_pending"),
            ({"max_inflight_batches": 0}, "max_inflight_batches"),
        ],
    )
    def test_rejects_bad_numbers_naming_the_field(self, kwargs, field):
        defaults = {"max_pending": 8, "max_inflight_batches": 2}
        with pytest.raises(ValueError, match=field):
            AdmissionController(**{**defaults, **kwargs})


class TestCircuitBreaker:
    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"failure_threshold": 0}, "failure_threshold"),
            ({"backoff_base": -1.0}, "backoff_base"),
            ({"backoff_cap": -1.0}, "backoff_cap"),
        ],
    )
    def test_rejects_bad_numbers_naming_the_field(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            CircuitBreaker(**kwargs)
