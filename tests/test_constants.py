"""Tests for the shared constants and the travel-time helper."""

import math

import pytest

from repro.constants import (
    SECONDS_PER_DAY,
    WALKING_SPEED_KMH,
    WALKING_SPEED_MPS,
    travel_time_seconds,
)


def test_walking_speed_matches_paper():
    # The paper fixes the walking speed to 5 km/h.
    assert WALKING_SPEED_KMH == 5.0
    assert math.isclose(WALKING_SPEED_MPS, 5000.0 / 3600.0)


def test_seconds_per_day():
    assert SECONDS_PER_DAY == 86400


def test_travel_time_basic():
    # 1 km at 5 km/h takes 12 minutes.
    assert math.isclose(travel_time_seconds(1000.0), 720.0)


def test_travel_time_zero_distance():
    assert travel_time_seconds(0.0) == 0.0


def test_travel_time_custom_speed():
    assert math.isclose(travel_time_seconds(10.0, speed_mps=2.0), 5.0)


def test_travel_time_rejects_negative_distance():
    with pytest.raises(ValueError):
        travel_time_seconds(-1.0)


def test_travel_time_rejects_non_positive_speed():
    with pytest.raises(ValueError):
        travel_time_seconds(1.0, speed_mps=0.0)
