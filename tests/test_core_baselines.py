"""Tests for the temporal-unaware baselines and what they get wrong."""

import pytest

from repro.core.baselines import query_time_snapshot_path, static_shortest_path
from repro.core.engine import ITSPQEngine
from repro.datasets.simple_venues import build_two_room_venue, build_corridor_venue


class TestStaticBaseline:
    def test_static_path_ignores_schedules(self, example_itgraph, example_points):
        # At 23:30 the ITSPQ answer is "no such routes", but the static
        # baseline happily returns the d18 route ...
        result = static_shortest_path(
            example_itgraph, example_points["p3"], example_points["p4"], "23:30"
        )
        assert result.found
        assert result.path.door_sequence == ["d18"]
        # ... which violates rule 1 when re-validated.
        violations = result.path.validate(example_itgraph)
        assert any(v.rule == "rule-1" for v in violations)

    def test_static_path_still_respects_private_partitions(self, example_itgraph, example_points):
        result = static_shortest_path(
            example_itgraph, example_points["p3"], example_points["p4"], "12:00"
        )
        assert "v15" not in result.path.partition_sequence

    def test_static_equals_temporal_when_everything_is_open(self):
        itgraph, points = build_two_room_venue()
        engine = ITSPQEngine(itgraph)
        static = static_shortest_path(itgraph, points["a"], points["b"], "12:00", engine)
        temporal = engine.query(points["a"], points["b"], "12:00")
        assert static.length == pytest.approx(temporal.length)


class TestQueryTimeSnapshotBaseline:
    def test_accepts_door_that_closes_before_arrival(self):
        # The shortcut closes at 12:01; leaving at 12:00 the user cannot make
        # the 10 m in time... but the query-time snapshot does not know that.
        itgraph, points = build_corridor_venue({"s12": [("8:00", "12:00:03")]})
        engine = ITSPQEngine(itgraph)
        snapshot_result = query_time_snapshot_path(
            itgraph, points["room1"], points["room2"], "12:00", engine
        )
        correct_result = engine.query(points["room1"], points["room2"], "12:00")
        assert snapshot_result.path.door_sequence == ["s12"]
        assert correct_result.path.door_sequence == ["c1", "c2"]
        # Re-validation exposes the baseline's mistake.
        assert not snapshot_result.path.is_valid(itgraph)
        assert correct_result.path.is_valid(itgraph)

    def test_misses_door_that_opens_before_arrival(self):
        # The shortcut opens at 12:01:32; a user leaving at 12:01:30 needs
        # ~3.6 s to reach it, so it is open on arrival — but the query-time
        # snapshot (which only looks at 12:01:30) rejects it.
        itgraph, points = build_corridor_venue({"s12": [("12:01:32", "20:00")]})
        engine = ITSPQEngine(itgraph)
        snapshot_result = query_time_snapshot_path(
            itgraph, points["room1"], points["room2"], "12:01:30", engine
        )
        correct_result = engine.query(points["room1"], points["room2"], "12:01:30")
        assert snapshot_result.path.door_sequence == ["c1", "c2"]
        assert correct_result.path.door_sequence == ["s12"]
        assert correct_result.length < snapshot_result.length

    def test_baselines_create_engine_when_not_supplied(self, example_itgraph, example_points):
        result = query_time_snapshot_path(
            example_itgraph, example_points["p1"], example_points["p2"], "12:00"
        )
        assert result.found
