"""Engine tests on the tiny hand-made venues where answers are hand-checkable."""

import math

import pytest

from repro.constants import WALKING_SPEED_MPS
from repro.core.engine import CheckMethod, ITSPQEngine
from repro.core.query import ITSPQuery
from repro.datasets.simple_venues import build_corridor_venue, build_two_room_venue
from repro.exceptions import NoPathExistsError, QueryError
from repro.geometry.point import IndoorPoint


class TestTwoRooms:
    def test_shortest_path_through_single_door(self, two_room):
        itgraph, points = two_room
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["a"], points["b"], "12:00")
        assert result.found
        assert result.path.door_sequence == ["d1"]
        assert result.length == pytest.approx(16.0)

    def test_same_partition_direct_path(self, two_room):
        itgraph, points = two_room
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["a"], IndoorPoint(8, 5, 0), "12:00")
        assert result.found
        assert result.path.door_count == 0
        assert result.length == pytest.approx(6.0)

    def test_same_point_query(self, two_room):
        itgraph, points = two_room
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["a"], points["a"], "12:00")
        assert result.found
        assert result.length == pytest.approx(0.0)

    def test_arrival_time_on_path(self, two_room):
        itgraph, points = two_room
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["a"], points["b"], "8:00")
        hop = result.path.hops[0]
        assert hop.distance_from_source == pytest.approx(8.0)
        expected_arrival = 8 * 3600 + 8.0 / WALKING_SPEED_MPS
        assert hop.arrival_time.seconds == pytest.approx(expected_arrival)

    def test_door_closed_all_day_means_no_route(self):
        itgraph, points = build_two_room_venue({"d1": []})
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["a"], points["b"], "12:00")
        assert not result.found
        assert result.path is None
        assert result.length == math.inf
        with pytest.raises(NoPathExistsError):
            result.require_path()

    def test_door_open_window_controls_reachability(self):
        itgraph, points = build_two_room_venue({"d1": [("8:00", "16:00")]})
        engine = ITSPQEngine(itgraph)
        assert engine.query(points["a"], points["b"], "12:00").found
        assert not engine.query(points["a"], points["b"], "7:00").found
        assert not engine.query(points["a"], points["b"], "16:30").found

    def test_endpoint_outside_space_raises(self, two_room):
        itgraph, points = two_room
        engine = ITSPQEngine(itgraph)
        with pytest.raises(QueryError):
            engine.query(points["a"], IndoorPoint(500, 500, 0), "12:00")

    def test_all_methods_agree(self, two_room):
        itgraph, points = two_room
        engine = ITSPQEngine(itgraph)
        results = [
            engine.query(points["a"], points["b"], "12:00", method=method)
            for method in (CheckMethod.SYNCHRONOUS, CheckMethod.ASYNCHRONOUS, CheckMethod.STATIC)
        ]
        lengths = {round(result.length, 9) for result in results}
        assert len(lengths) == 1


class TestCorridorVenue:
    def test_route_across_the_venue(self, corridor):
        itgraph, points = corridor
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["room1"], points["room4"], "12:00")
        assert result.found
        # The cheapest route cuts through the room1/room2 shortcut before
        # joining the corridor: 5 m to s12, sqrt(41) m across room2 to c2,
        # 20 m along the corridor, 4 m up into room4.
        assert result.path.door_sequence == ["s12", "c2", "c4"]
        assert result.length == pytest.approx(5 + math.sqrt(41) + 20 + 4)
        assert result.path.is_valid(itgraph)
        # The pure corridor alternative (c1, c4) would have been 38 m.
        assert result.length < 38.0

    def test_shortcut_door_is_preferred_when_open(self, corridor):
        itgraph, points = corridor
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["room1"], points["room2"], "12:00")
        assert result.path.door_sequence == ["s12"]
        assert result.length == pytest.approx(10.0)

    def test_closed_shortcut_forces_corridor_detour(self):
        itgraph, points = build_corridor_venue({"s12": [("20:00", "22:00")]})
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["room1"], points["room2"], "12:00")
        assert result.path.door_sequence == ["c1", "c2"]
        assert result.length == pytest.approx(4 + 10 + 4)
        # In the evening the shortcut reopens and wins again.
        evening = engine.query(points["room1"], points["room2"], "20:30")
        assert evening.path.door_sequence == ["s12"]

    def test_private_room_is_never_crossed(self):
        itgraph, points = build_corridor_venue(private_rooms=("room2",))
        engine = ITSPQEngine(itgraph)
        # room1 -> room3 could cut through room2 (s12 + c2/c3 corridor), but
        # room2 is private, so the corridor route is the only valid one.
        result = engine.query(points["room1"], points["room3"], "12:00")
        assert "s12" not in result.path.door_sequence
        assert result.path.door_sequence == ["c1", "c3"]

    def test_private_room_allowed_as_endpoint(self):
        itgraph, points = build_corridor_venue(private_rooms=("room2",))
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["room1"], points["room2"], "12:00")
        assert result.found
        assert result.path.door_sequence == ["s12"]
        reverse = engine.query(points["room2"], points["room1"], "12:00")
        assert reverse.found

    def test_statistics_are_populated(self, corridor):
        itgraph, points = corridor
        engine = ITSPQEngine(itgraph)
        result = engine.query(points["room1"], points["room4"], "12:00")
        stats = result.statistics
        assert stats.heap_pops > 0
        assert stats.relaxations > 0
        assert stats.runtime_seconds > 0
        assert stats.peak_heap_size > 0

    def test_run_batch(self, corridor):
        itgraph, points = corridor
        engine = ITSPQEngine(itgraph)
        queries = [
            ITSPQuery(points["room1"], points["room3"], "12:00"),
            ITSPQuery(points["room2"], points["room4"], "12:00"),
        ]
        results = engine.run_batch(queries, method="asynchronous")
        assert len(results) == 2
        assert all(result.found for result in results)


class TestPartitionOnceMode:
    """The literal Algorithm 1 (partition-visited pruning) vs. the exact expansion."""

    def test_literal_algorithm_matches_exact_when_no_reentry_helps(self, corridor):
        itgraph, points = corridor
        exact = ITSPQEngine(itgraph, partition_once=False)
        literal = ITSPQEngine(itgraph, partition_once=True)
        for source, target in [("room2", "room3"), ("room3", "room4"), ("room4", "corridor")]:
            exact_result = exact.query(points[source], points[target], "12:00")
            literal_result = literal.query(points[source], points[target], "12:00")
            assert exact_result.found == literal_result.found
            assert exact_result.length == pytest.approx(literal_result.length)

    def test_literal_algorithm_never_beats_exact_and_stays_valid(self, corridor):
        # The partition-visited pruning can miss a cheaper re-entry into an
        # already-expanded partition (documented in DESIGN.md); the returned
        # path is then longer but still valid.
        itgraph, points = corridor
        exact = ITSPQEngine(itgraph, partition_once=False)
        literal = ITSPQEngine(itgraph, partition_once=True)
        exact_result = exact.query(points["room1"], points["room4"], "12:00")
        literal_result = literal.query(points["room1"], points["room4"], "12:00")
        assert literal_result.found
        assert literal_result.length >= exact_result.length - 1e-9
        assert literal_result.path.is_valid(itgraph)

    def test_literal_algorithm_does_not_do_more_work(self, corridor):
        itgraph, points = corridor
        exact = ITSPQEngine(itgraph, partition_once=False)
        literal = ITSPQEngine(itgraph, partition_once=True)
        exact_result = exact.query(points["room1"], points["room4"], "12:00")
        literal_result = literal.query(points["room1"], points["room4"], "12:00")
        assert literal_result.statistics.relaxations <= exact_result.statistics.relaxations
