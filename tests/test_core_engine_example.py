"""Engine tests on the paper's running example — Example 1 and related facts."""

import pytest

from repro.core.engine import CheckMethod


class TestExample1:
    """Example 1 of the paper, reproduced on the reconstructed venue."""

    def test_morning_query_avoids_private_partition(self, example_engine, example_points):
        result = example_engine.query(example_points["p3"], example_points["p4"], "9:00")
        assert result.found
        # The geometrically shorter route (p3, d15, d16, p4) crosses the
        # private partition v15 and must be rejected; the answer is the
        # route through d18.
        assert result.path.door_sequence == ["d18"]
        assert "v15" not in result.path.partition_sequence
        assert result.path.is_valid(example_engine.itgraph)

    def test_rejected_route_is_indeed_shorter(self, example_itgraph, example_points):
        # Confirm the premise of Example 1: the private route is shorter.
        p3, p4 = example_points["p3"], example_points["p4"]
        via_private = (
            example_itgraph.point_to_door(p3, "d15", "v14")
            + example_itgraph.intra_distance("v15", "d15", "d16")
            + example_itgraph.point_to_door(p4, "d16", "v13")
        )
        via_d18 = example_itgraph.point_to_door(p3, "d18", "v14") + example_itgraph.point_to_door(
            p4, "d18", "v13"
        )
        assert via_private < via_d18

    def test_late_night_query_has_no_route(self, example_engine, example_points):
        result = example_engine.query(example_points["p3"], example_points["p4"], "23:30")
        assert not result.found
        assert result.path is None

    def test_both_methods_agree_on_example_1(self, example_engine, example_points):
        for query_time in ("9:00", "23:30"):
            syn = example_engine.query(
                example_points["p3"], example_points["p4"], query_time, CheckMethod.SYNCHRONOUS
            )
            asyn = example_engine.query(
                example_points["p3"], example_points["p4"], query_time, CheckMethod.ASYNCHRONOUS
            )
            assert syn.found == asyn.found
            if syn.found:
                assert syn.path.door_sequence == asyn.path.door_sequence
                assert syn.length == pytest.approx(asyn.length)


class TestPrivateEndpoints:
    def test_query_from_private_office(self, example_engine, example_points):
        # p1 lies inside the private partition v1; leaving through d1 is allowed.
        result = example_engine.query(example_points["p1"], example_points["p2"], "12:00")
        assert result.found
        assert result.path.door_sequence[0] == "d1"
        assert result.path.is_valid(example_engine.itgraph)

    def test_query_into_private_storage(self, example_engine, example_itgraph, example_points):
        # A target inside the private partition v15 is reachable (rule 2
        # exempts the partitions containing the endpoints).
        from repro.geometry.point import IndoorPoint

        target_in_v15 = IndoorPoint(38.0, 3.0, 0)
        assert example_itgraph.covering_partition(target_in_v15).partition_id == "v15"
        result = example_engine.query(example_points["p3"], target_in_v15, "12:00")
        assert result.found
        assert result.path.door_sequence[-1] in {"d15", "d16"}

    def test_private_office_unreachable_before_its_door_opens(
        self, example_engine, example_points
    ):
        # d1 (the only door of v1) opens at 5:00.
        result = example_engine.query(example_points["p2"], example_points["p1"], "3:00")
        assert not result.found
        later = example_engine.query(example_points["p2"], example_points["p1"], "10:00")
        assert later.found


class TestTemporalVariationAcrossTheDay:
    def test_reachability_varies_with_query_time(self, example_engine, example_points):
        reachable = {
            query_time: example_engine.query(
                example_points["p1"], example_points["p2"], f"{query_time}:00"
            ).found
            for query_time in range(0, 24, 2)
        }
        # Nothing reachable in the small hours, everything fine mid-day.
        assert not reachable[0] and not reachable[2]
        assert reachable[12] and reachable[14]

    def test_one_way_door_d3_is_never_used_backwards(self, example_engine, example_points):
        # Any path entering v3 must do so through d1, d2, d5 or d6 — never d3.
        result = example_engine.query(example_points["p2"], example_points["p1"], "12:00")
        assert result.found
        doors = result.path.door_sequence
        partitions = result.path.partition_sequence
        if "d3" in doors:
            index = doors.index("d3")
            assert partitions[index] == "v3"  # crossed while leaving v3, not entering

    def test_paths_returned_by_all_methods_are_valid(self, example_engine, example_points):
        for method in (CheckMethod.SYNCHRONOUS, CheckMethod.ASYNCHRONOUS):
            for source, target in [("p1", "p2"), ("p3", "p4"), ("p2", "p4"), ("p1", "p3")]:
                result = example_engine.query(
                    example_points[source], example_points[target], "13:00", method
                )
                if result.found:
                    assert result.path.validate(example_engine.itgraph) == []


class TestResultMetadata:
    def test_method_labels(self, example_engine, example_points):
        syn = example_engine.query(example_points["p3"], example_points["p4"], "9:00")
        asyn = example_engine.query(
            example_points["p3"], example_points["p4"], "9:00", CheckMethod.ASYNCHRONOUS
        )
        assert syn.method_label == "ITG/S"
        assert asyn.method_label == "ITG/A"

    def test_summary_strings(self, example_engine, example_points):
        found = example_engine.query(example_points["p3"], example_points["p4"], "9:00")
        missing = example_engine.query(example_points["p3"], example_points["p4"], "23:30")
        assert "d18" in found.summary()
        assert "no such routes" in missing.summary()

    def test_itg_a_counters_present(self, example_engine, example_points):
        result = example_engine.query(
            example_points["p1"], example_points["p2"], "12:00", CheckMethod.ASYNCHRONOUS
        )
        assert result.statistics.snapshot_refreshes >= 1
        assert result.statistics.membership_checks > 0
        assert result.statistics.ati_probes == 0 or result.statistics.ati_probes < (
            result.statistics.membership_checks
        )

    def test_itg_s_counters_present(self, example_engine, example_points):
        result = example_engine.query(
            example_points["p1"], example_points["p2"], "12:00", CheckMethod.SYNCHRONOUS
        )
        assert result.statistics.ati_probes > 0
        assert result.statistics.snapshot_refreshes == 0
