"""Tests for the IT-Graph structure and its construction."""

import pytest

from repro.core.itgraph import build_itgraph
from repro.datasets.example_floorplan import TABLE_I_ATIS
from repro.datasets.simple_venues import build_two_room_venue
from repro.exceptions import UnknownEntityError
from repro.indoor.entities import DoorType
from repro.temporal.atis import ATISet


class TestDoorTable:
    def test_every_door_has_a_record(self, example_itgraph):
        assert set(example_itgraph.door_table) == {f"d{i}" for i in range(1, 22)}

    def test_atis_match_table_i(self, example_itgraph):
        for door_id, intervals in TABLE_I_ATIS.items():
            assert example_itgraph.door_record(door_id).atis == ATISet.from_pairs(intervals)

    def test_door_types(self, example_itgraph):
        assert example_itgraph.door_record("d7").door_type is DoorType.PRIVATE
        assert example_itgraph.door_record("d3").door_type is DoorType.PUBLIC

    def test_temporal_variation_flag(self, example_itgraph):
        assert example_itgraph.door_record("d2").has_temporal_variation
        # d14 and d17 are open around the clock.
        assert not example_itgraph.door_record("d14").has_temporal_variation
        assert not example_itgraph.door_record("d17").has_temporal_variation

    def test_unknown_door_raises(self, example_itgraph):
        with pytest.raises(UnknownEntityError):
            example_itgraph.door_record("d99")


class TestPartitionTable:
    def test_every_partition_has_a_record(self, example_itgraph):
        assert set(example_itgraph.partition_table) == {f"v{i}" for i in range(1, 18)}

    def test_partition_types(self, example_itgraph):
        assert example_itgraph.partition_record("v1").is_private
        assert example_itgraph.partition_record("v15").is_private
        assert not example_itgraph.partition_record("v3").is_private

    def test_single_door_partition_has_trivial_matrix(self, example_itgraph):
        assert example_itgraph.partition_record("v1").distance_matrix.is_trivial

    def test_multi_door_partition_matrix(self, example_itgraph):
        matrix = example_itgraph.partition_record("v3").distance_matrix
        assert set(matrix.doors) == {"d1", "d2", "d3", "d5", "d6"}
        assert matrix.distance("d1", "d2") > 0

    def test_unknown_partition_raises(self, example_itgraph):
        with pytest.raises(UnknownEntityError):
            example_itgraph.partition_record("v99")


class TestTemporalQueries:
    def test_door_open_at(self, example_itgraph):
        assert example_itgraph.door_open_at("d2", "12:00")
        assert not example_itgraph.door_open_at("d2", "7:00")

    def test_doors_closed_at(self, example_itgraph):
        closed_at_3 = example_itgraph.doors_closed_at("3:00")
        assert closed_at_3 == frozenset(
            {f"d{i}" for i in range(1, 22)} - {"d9", "d14", "d17", "d18"}
        )

    def test_doors_open_at_complements_closed(self, example_itgraph):
        for instant in ["3:00", "9:00", "17:30", "23:45"]:
            open_doors = example_itgraph.doors_open_at(instant)
            closed_doors = example_itgraph.doors_closed_at(instant)
            assert open_doors | closed_doors == frozenset(example_itgraph.door_ids())
            assert not open_doors & closed_doors

    def test_checkpoints_come_from_schedule(self, example_itgraph, example_schedule):
        assert example_itgraph.checkpoints == example_schedule.checkpoints()


class TestGeometryQueries:
    def test_intra_distance(self, example_itgraph):
        assert example_itgraph.intra_distance("v15", "d15", "d16") > 0
        assert example_itgraph.intra_distance("v15", "d15", "d15") == 0.0

    def test_covering_partition(self, example_itgraph, example_points):
        assert example_itgraph.covering_partition(example_points["p3"]).partition_id == "v14"
        assert example_itgraph.covering_partition(example_points["p4"]).partition_id == "v13"
        assert example_itgraph.covering_partition(example_points["p1"]).partition_id == "v1"

    def test_point_to_door(self, example_itgraph, example_points):
        distance = example_itgraph.point_to_door(example_points["p3"], "d15", "v14")
        assert distance == pytest.approx(1.0)

    def test_door_position(self, example_itgraph):
        assert example_itgraph.door_position("d18").floor == 0


class TestConstruction:
    def test_without_schedule_every_door_is_always_open(self):
        itgraph, _ = build_two_room_venue()
        record = itgraph.door_record("d1")
        assert not record.has_temporal_variation
        assert len(itgraph.checkpoints) == 0

    def test_door_type_overrides(self):
        itgraph, _ = build_two_room_venue()
        space = itgraph.space
        overridden = build_itgraph(space, door_types={"d1": DoorType.PRIVATE})
        assert overridden.door_record("d1").door_type is DoorType.PRIVATE

    def test_statistics(self, example_itgraph):
        stats = example_itgraph.statistics()
        assert stats["partitions"] == 17
        assert stats["doors"] == 21
        assert stats["doors_with_temporal_variation"] == 19
        assert stats["private_partitions"] == 2
        assert stats["checkpoints"] == 12
