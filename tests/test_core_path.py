"""Tests for IndoorPath: views, arrival times, and rule re-validation."""

import pytest

from repro.constants import WALKING_SPEED_MPS
from repro.core.path import IndoorPath, PathHop
from repro.geometry.point import IndoorPoint
from repro.temporal.timeofday import TimeOfDay


@pytest.fixture()
def example_path(example_engine, example_points):
    return example_engine.query(example_points["p1"], example_points["p2"], "12:00").path


class TestViews:
    def test_door_and_partition_sequences_are_consistent(self, example_path):
        assert len(example_path.partition_sequence) == len(example_path.door_sequence) + 1
        assert example_path.door_count == len(example_path)

    def test_node_sequence_matches_paper_notation(self, example_path):
        nodes = example_path.as_node_sequence()
        assert nodes[0] == "p_s" and nodes[-1] == "p_t"
        assert nodes[1:-1] == example_path.door_sequence

    def test_describe_mentions_length_and_doors(self, example_path):
        text = example_path.describe()
        assert "length=" in text and "doors=" in text

    def test_arrival_time_at_target(self, example_path):
        expected = 12 * 3600 + example_path.total_length / WALKING_SPEED_MPS
        assert example_path.arrival_time_at_target.seconds == pytest.approx(expected)
        assert example_path.travel_time_seconds() == pytest.approx(
            example_path.total_length / WALKING_SPEED_MPS
        )

    def test_equality(self, example_engine, example_points):
        first = example_engine.query(example_points["p1"], example_points["p2"], "12:00").path
        second = example_engine.query(example_points["p1"], example_points["p2"], "12:00").path
        assert first == second
        other = example_engine.query(example_points["p1"], example_points["p2"], "13:00").path
        assert first != other


class TestValidation:
    def test_engine_paths_validate_cleanly(self, example_engine, example_points):
        result = example_engine.query(example_points["p3"], example_points["p4"], "9:00")
        assert result.path.validate(example_engine.itgraph) == []

    def test_rule1_violation_detected(self, example_itgraph, example_points):
        # Hand-build the Example 1 path but issued at 23:30, when d18 is closed.
        query_time = TimeOfDay("23:30")
        distance = 5.22
        path = IndoorPath(
            source=example_points["p3"],
            target=example_points["p4"],
            query_time=query_time,
            hops=[
                PathHop(
                    door_id="d18",
                    from_partition="v14",
                    to_partition="v13",
                    distance_from_source=distance,
                    arrival_time=query_time.add_seconds(distance / WALKING_SPEED_MPS),
                )
            ],
            total_length=12.65,
        )
        violations = path.validate(example_itgraph)
        assert any(v.rule == "rule-1" and v.subject == "d18" for v in violations)

    def test_rule2_violation_detected(self, example_itgraph, example_points):
        # The (p3, d15, d16, p4) route crosses the private partition v15.
        query_time = TimeOfDay("12:00")
        hops = []
        cumulative = 0.0
        for door_id, from_partition, to_partition, leg in [
            ("d15", "v14", "v15", 1.0),
            ("d16", "v15", "v13", 5.39),
        ]:
            cumulative += leg
            hops.append(
                PathHop(
                    door_id=door_id,
                    from_partition=from_partition,
                    to_partition=to_partition,
                    distance_from_source=cumulative,
                    arrival_time=query_time.add_seconds(cumulative / WALKING_SPEED_MPS),
                )
            )
        path = IndoorPath(example_points["p3"], example_points["p4"], query_time, hops, 11.5)
        violations = path.validate(example_itgraph)
        assert any(v.rule == "rule-2" and v.subject == "v15" for v in violations)
        assert not path.is_valid(example_itgraph)

    def test_inconsistent_arrival_time_detected(self, example_itgraph, example_points):
        query_time = TimeOfDay("12:00")
        path = IndoorPath(
            example_points["p3"],
            example_points["p4"],
            query_time,
            hops=[
                PathHop(
                    door_id="d18",
                    from_partition="v14",
                    to_partition="v13",
                    distance_from_source=5.22,
                    arrival_time=query_time.add_seconds(9999),  # wrong
                )
            ],
            total_length=12.65,
        )
        violations = path.validate(example_itgraph)
        assert any(v.rule == "consistency" for v in violations)

    def test_wrong_direction_detected(self, example_itgraph, example_points):
        # d3 is one-way from v3 into v16; claiming the reverse is inconsistent.
        query_time = TimeOfDay("12:00")
        path = IndoorPath(
            IndoorPoint(15, 9, 0),   # inside v16
            IndoorPoint(8, 9, 0),    # inside v3
            query_time,
            hops=[
                PathHop(
                    door_id="d3",
                    from_partition="v16",
                    to_partition="v3",
                    distance_from_source=4.0,
                    arrival_time=query_time.add_seconds(4.0 / WALKING_SPEED_MPS),
                )
            ],
            total_length=8.0,
        )
        violations = path.validate(example_itgraph)
        assert any("does not allow crossing" in v.detail for v in violations)

    def test_unknown_door_detected(self, example_itgraph, example_points):
        query_time = TimeOfDay("12:00")
        path = IndoorPath(
            example_points["p3"],
            example_points["p4"],
            query_time,
            hops=[
                PathHop(
                    door_id="d99",
                    from_partition="v14",
                    to_partition="v13",
                    distance_from_source=5.0,
                    arrival_time=query_time.add_seconds(5.0 / WALKING_SPEED_MPS),
                )
            ],
            total_length=12.0,
        )
        with pytest.raises(Exception):
            path.validate(example_itgraph)

    def test_empty_path_requires_shared_partition(self, example_itgraph, example_points):
        query_time = TimeOfDay("12:00")
        path = IndoorPath(
            example_points["p3"], example_points["p4"], query_time, hops=[], total_length=5.0
        )
        violations = path.validate(example_itgraph)
        assert any("door-free path" in v.detail for v in violations)

    def test_violation_string_rendering(self, example_itgraph, example_points):
        query_time = TimeOfDay("23:30")
        path = IndoorPath(
            example_points["p3"],
            example_points["p4"],
            query_time,
            hops=[
                PathHop(
                    door_id="d18",
                    from_partition="v14",
                    to_partition="v13",
                    distance_from_source=5.22,
                    arrival_time=query_time.add_seconds(5.22 / WALKING_SPEED_MPS),
                )
            ],
            total_length=12.65,
        )
        violations = path.validate(example_itgraph)
        assert violations and "rule-1" in str(violations[0])
