"""Tests for the query/result value objects."""

import pytest

from repro.core.query import ITSPQuery, QueryResult, SearchStatistics
from repro.exceptions import NoPathExistsError, QueryError
from repro.geometry.point import IndoorPoint
from repro.temporal.timeofday import TimeOfDay


class TestITSPQuery:
    def test_construction_coerces_time(self):
        query = ITSPQuery(IndoorPoint(0, 0, 0), IndoorPoint(1, 1, 0), "9:30")
        assert query.query_time == TimeOfDay("9:30")

    def test_rejects_non_indoor_points(self):
        with pytest.raises(QueryError):
            ITSPQuery((0, 0), IndoorPoint(1, 1, 0), "9:00")  # type: ignore[arg-type]

    def test_at_time_returns_new_query(self):
        query = ITSPQuery(IndoorPoint(0, 0, 0), IndoorPoint(1, 1, 0), "9:00", label="x")
        later = query.at_time("15:00")
        assert later.query_time == TimeOfDay("15:00")
        assert later.source == query.source and later.label == "x"
        assert query.query_time == TimeOfDay("9:00")  # original unchanged

    def test_str(self):
        query = ITSPQuery(IndoorPoint(0, 0, 0), IndoorPoint(1, 1, 0), "9:00")
        assert "9:00" in str(query)


class TestSearchStatistics:
    def test_merge_strategy_counters(self):
        stats = SearchStatistics()
        stats.merge_strategy_counters({"ati_probes": 5, "snapshot_refreshes": 2, "membership_checks": 7})
        stats.merge_strategy_counters({"ati_probes": 1})
        assert stats.ati_probes == 6
        assert stats.snapshot_refreshes == 2
        assert stats.membership_checks == 7

    def test_as_dict_includes_extra(self):
        stats = SearchStatistics(doors_settled=3, extra={"custom": 1.5})
        flattened = stats.as_dict()
        assert flattened["doors_settled"] == 3
        assert flattened["custom"] == 1.5


class TestQueryResult:
    def test_require_path_on_missing_route(self):
        query = ITSPQuery(IndoorPoint(0, 0, 0), IndoorPoint(1, 1, 0), "9:00")
        result = QueryResult(query=query, method_label="ITG/S", found=False)
        assert not result.is_reachable
        with pytest.raises(NoPathExistsError):
            result.require_path()
        assert "no such routes" in result.summary()

    def test_require_path_on_found_route(self, example_engine, example_points):
        result = example_engine.query(example_points["p3"], example_points["p4"], "9:00")
        assert result.require_path() is result.path
        assert result.is_reachable
