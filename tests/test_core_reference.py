"""Tests for the independent reference implementations (the correctness oracles)."""

import pytest

from repro.core.engine import ITSPQEngine
from repro.core.reference import (
    ReferenceAnswer,
    selection_dijkstra_reference,
    time_expanded_exact,
)
from repro.datasets.simple_venues import build_corridor_venue, build_two_room_venue


class TestSelectionDijkstraReference:
    def test_agrees_with_engine_on_example(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        pairs = [("p1", "p2"), ("p3", "p4"), ("p2", "p3"), ("p4", "p1")]
        for source, target in pairs:
            for query_time in ("6:30", "9:00", "12:00", "18:30", "22:30", "23:45"):
                engine_result = engine.query(
                    example_points[source], example_points[target], query_time
                )
                reference = selection_dijkstra_reference(
                    example_itgraph, example_points[source], example_points[target], query_time
                )
                assert engine_result.found == reference.found, (source, target, query_time)
                if engine_result.found:
                    assert engine_result.length == pytest.approx(reference.length)
                    assert engine_result.path.door_sequence == list(reference.doors)

    def test_unreachable_case(self, example_itgraph, example_points):
        answer = selection_dijkstra_reference(
            example_itgraph, example_points["p3"], example_points["p4"], "23:30"
        )
        assert answer == ReferenceAnswer.unreachable()
        assert not answer.found

    def test_direct_same_partition_route(self, example_itgraph, example_points):
        from repro.geometry.point import IndoorPoint

        nearby = IndoorPoint(34.0, 2.0, 0)  # also inside v14
        answer = selection_dijkstra_reference(example_itgraph, example_points["p3"], nearby, "12:00")
        assert answer.found
        assert answer.doors == ()
        assert answer.length == pytest.approx(example_points["p3"].distance_to(nearby))


class TestTimeExpandedExact:
    def test_matches_greedy_search_when_no_detour_helps(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        for query_time in ("9:00", "12:00"):
            engine_result = engine.query(example_points["p3"], example_points["p4"], query_time)
            exact = time_expanded_exact(
                example_itgraph, example_points["p3"], example_points["p4"], query_time
            )
            assert exact.found == engine_result.found
            assert exact.length == pytest.approx(engine_result.length)

    def test_exact_never_worse_than_engine(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        for source, target in [("p1", "p2"), ("p2", "p4")]:
            for query_time in ("7:00", "10:00", "16:30"):
                engine_result = engine.query(
                    example_points[source], example_points[target], query_time
                )
                exact = time_expanded_exact(
                    example_itgraph, example_points[source], example_points[target], query_time
                )
                if engine_result.found:
                    assert exact.found
                    assert exact.length <= engine_result.length + 1e-9

    def test_exact_finds_detour_the_greedy_search_misses(self):
        # The shortcut s12 opens at 12:01.  Leaving room1 at 12:00, the direct
        # 5 m approach reaches it at ~12:00:04 (closed -> greedy search must
        # detour through the corridor), but a slightly longer approach that
        # arrives after 12:01 is valid and shorter overall.  The greedy
        # label-setting engine cannot represent "walk further to arrive
        # later", the exhaustive reference can only do so across doors —
        # so on this instance both give the corridor route, and the exact
        # length must never exceed the engine's.
        itgraph, points = build_corridor_venue({"s12": [("12:01", "20:00")]})
        engine = ITSPQEngine(itgraph)
        engine_result = engine.query(points["room1"], points["room2"], "12:00")
        exact = time_expanded_exact(itgraph, points["room1"], points["room2"], "12:00")
        assert engine_result.found and exact.found
        assert exact.length <= engine_result.length + 1e-9

    def test_unreachable_when_all_doors_closed(self):
        itgraph, points = build_two_room_venue({"d1": [("20:00", "21:00")]})
        exact = time_expanded_exact(itgraph, points["a"], points["b"], "9:00")
        assert not exact.found

    def test_respects_private_partitions(self):
        itgraph, points = build_corridor_venue(private_rooms=("room2",))
        exact = time_expanded_exact(itgraph, points["room1"], points["room3"], "12:00")
        assert exact.found
        assert "s12" not in exact.doors
