"""Tests for Graph_Update (Algorithm 3) and the snapshot cache."""

import pytest

from repro.core.snapshot import GraphUpdater


@pytest.fixture()
def updater(example_itgraph):
    return GraphUpdater(example_itgraph)


def test_snapshot_removes_exactly_the_closed_doors(updater, example_itgraph):
    snapshot = updater.graph_update("3:00")
    closed = example_itgraph.doors_closed_at("3:00")
    assert snapshot.closed_doors == closed
    for door_id in closed:
        assert not snapshot.topology.has_door(door_id)
        assert not snapshot.door_available(door_id)
    for door_id in set(example_itgraph.door_ids()) - set(closed):
        assert snapshot.topology.has_door(door_id)
        assert snapshot.door_available(door_id)


def test_snapshot_interval_covers_requested_time(updater):
    snapshot = updater.graph_update("12:34")
    assert snapshot.covers("12:34")
    assert snapshot.checkpoint == snapshot.interval.start


def test_snapshot_partitions_are_preserved(updater, example_itgraph):
    snapshot = updater.graph_update("2:00")
    assert snapshot.topology.partition_ids == example_itgraph.topology.partition_ids


def test_snapshots_are_cached_per_interval(updater):
    first = updater.graph_update("12:10")
    second = updater.graph_update("12:50")  # same checkpoint interval
    assert first is second
    assert updater.updates_performed == 1
    third = updater.graph_update("23:45")  # different interval
    assert third is not first
    assert updater.updates_performed == 2


def test_clear_cache(updater):
    updater.graph_update("12:00")
    assert updater.cached_snapshot_count == 1
    updater.clear_cache()
    assert updater.cached_snapshot_count == 0


def test_all_snapshots_materialises_every_interval(updater, example_itgraph):
    snapshots = updater.all_snapshots()
    # One snapshot per checkpoint interval plus the pre-first-checkpoint one
    # (when 0:00 is not itself a checkpoint).
    checkpoints = example_itgraph.checkpoints
    expected = len(checkpoints) + (0 if 0.0 in [t.seconds for t in checkpoints] else 1)
    assert len(snapshots) == expected


def test_open_door_count_varies_over_the_day(updater, example_itgraph):
    # Mid-day nearly all doors are open; late night most are closed.
    noon = updater.graph_update("12:00")
    night = updater.graph_update("23:45")
    assert noon.open_door_count > night.open_door_count
    assert noon.open_door_count == len(example_itgraph.doors_open_at("12:00"))


def test_snapshot_respects_the_no_change_between_checkpoints_property(updater, example_itgraph):
    # Any two instants inside one checkpoint interval see identical topology.
    snapshot = updater.graph_update("10:30")
    interval = snapshot.interval
    midpoint = (interval.start.seconds + interval.end.seconds) / 2
    assert example_itgraph.doors_closed_at(interval.start) == example_itgraph.doors_closed_at(
        midpoint
    )


def test_interval_bitsets_index_probes(example_itgraph):
    # The arena-friendly index probes agree with the instant-based lookup.
    bitsets = example_itgraph.compiled().interval_bitsets
    starts = bitsets.starts
    for instant in [-100.0, 0.0, *(s + 1.0 for s in starts), 86399.0, 200000.0]:
        index = bitsets.index_at(instant)
        assert 0 <= index < bitsets.interval_count
        assert bitsets.bitset_by_index(index) == bitsets.bitset_at(instant)
    assert bitsets.index_at(starts[0] - 1.0) == 0


def test_snapshot_store_exposes_its_bitsets(example_itgraph):
    bitsets = example_itgraph.compiled().interval_bitsets
    store = bitsets.store()
    assert store.bitsets is bitsets
    start, end, bits = store.interval_at(0.0)
    assert start <= 0.0 < end
    assert bits == bitsets.bitset_at(0.0)
