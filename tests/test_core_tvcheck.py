"""Tests for the temporal-validity check strategies (Algorithms 2 and 4)."""

import math

import pytest

from repro.constants import WALKING_SPEED_MPS
from repro.core.snapshot import GraphUpdater
from repro.core.tvcheck import (
    AsynchronousCheck,
    QueryTimeCheck,
    StaticCheck,
    SynchronousCheck,
    make_strategy,
)
from repro.temporal.timeofday import TimeOfDay


@pytest.fixture()
def syn(example_itgraph):
    return SynchronousCheck(example_itgraph)


@pytest.fixture()
def asyn(example_itgraph):
    return AsynchronousCheck(example_itgraph)


class TestArrivalTime:
    def test_arrival_time_uses_walking_speed(self, syn):
        t = TimeOfDay("8:00")
        arrival = syn.arrival_time(t, 100.0)
        assert math.isclose(arrival.seconds - t.seconds, 100.0 / WALKING_SPEED_MPS)

    def test_rejects_non_positive_speed(self, example_itgraph):
        with pytest.raises(ValueError):
            SynchronousCheck(example_itgraph, walking_speed=0)


class TestSynchronousCheck:
    def test_open_door_is_passable(self, syn):
        syn.begin_query(TimeOfDay("12:00"))
        assert syn.is_passable("d2", 10.0, TimeOfDay("12:00"))

    def test_closed_door_is_not_passable(self, syn):
        syn.begin_query(TimeOfDay("7:00"))
        assert not syn.is_passable("d2", 10.0, TimeOfDay("7:00"))  # d2 opens at 8:00

    def test_door_closing_before_arrival(self, syn):
        # d2 closes at 16:00; leaving at 15:59 with 600 m to walk arrives ~16:06.
        syn.begin_query(TimeOfDay("15:59"))
        assert not syn.is_passable("d2", 600.0, TimeOfDay("15:59"))
        assert syn.is_passable("d2", 10.0, TimeOfDay("15:59"))

    def test_door_opening_before_arrival(self, syn):
        # d2 opens at 8:00; leaving at 7:55 with 600 m to walk arrives ~8:02.
        syn.begin_query(TimeOfDay("7:55"))
        assert syn.is_passable("d2", 600.0, TimeOfDay("7:55"))

    def test_probe_counter(self, syn):
        syn.begin_query(TimeOfDay("12:00"))
        for _ in range(5):
            syn.is_passable("d2", 10.0, TimeOfDay("12:00"))
        assert syn.ati_probes == 5
        assert syn.counters()["ati_probes"] == 5
        syn.begin_query(TimeOfDay("12:00"))
        assert syn.ati_probes == 0  # reset per query


class TestAsynchronousCheck:
    def test_matches_synchronous_within_interval(self, syn, asyn, example_itgraph):
        t = TimeOfDay("12:00")
        syn.begin_query(t)
        asyn.begin_query(t)
        for door_id in example_itgraph.door_ids():
            assert syn.is_passable(door_id, 50.0, t) == asyn.is_passable(door_id, 50.0, t)

    def test_membership_checks_instead_of_probes(self, asyn):
        t = TimeOfDay("12:00")
        asyn.begin_query(t)
        asyn.is_passable("d2", 10.0, t)
        assert asyn.membership_checks == 1
        assert asyn.ati_probes == 0

    def test_snapshot_advances_when_arrival_crosses_checkpoint(self, asyn, example_itgraph):
        # Query at 15:55; a door 1 km away is reached after 16:00, i.e. in the
        # next checkpoint interval (16:00 is a checkpoint of Table I).
        t = TimeOfDay("15:55")
        asyn.begin_query(t)
        initial_interval = asyn.current_snapshot.interval
        assert not asyn.is_passable("d2", 1000.0, t)  # d2 closes at 16:00
        assert asyn.current_snapshot.interval != initial_interval
        assert asyn.snapshot_refreshes >= 2

    def test_agrees_with_synchronous_across_checkpoint(self, syn, asyn, example_itgraph):
        t = TimeOfDay("15:55")
        syn.begin_query(t)
        asyn.begin_query(t)
        for door_id in example_itgraph.door_ids():
            for distance in (10.0, 500.0, 1000.0, 5000.0):
                assert syn.is_passable(door_id, distance, t) == asyn.is_passable(
                    door_id, distance, t
                ), (door_id, distance)

    def test_out_of_order_arrival_falls_back_to_ati_probe(self, asyn):
        t = TimeOfDay("15:55")
        asyn.begin_query(t)
        # First a far door (advances the snapshot past 16:00) ...
        asyn.is_passable("d17", 2000.0, t)
        probes_before = asyn.ati_probes
        # ... then a near door whose arrival is before the snapshot interval.
        assert asyn.is_passable("d2", 10.0, t)
        assert asyn.ati_probes == probes_before + 1

    def test_shared_updater_is_reused(self, example_itgraph):
        updater = GraphUpdater(example_itgraph)
        first = AsynchronousCheck(example_itgraph, updater)
        second = AsynchronousCheck(example_itgraph, updater)
        first.begin_query(TimeOfDay("12:00"))
        second.begin_query(TimeOfDay("12:00"))
        assert updater.updates_performed == 1  # cache shared across strategies


class TestBaselineChecks:
    def test_static_check_accepts_everything(self, example_itgraph):
        static = StaticCheck(example_itgraph)
        static.begin_query(TimeOfDay("3:00"))
        assert static.is_passable("d2", 1e6, TimeOfDay("3:00"))

    def test_query_time_check_ignores_travel_time(self, example_itgraph):
        check = QueryTimeCheck(example_itgraph)
        check.begin_query(TimeOfDay("15:59"))
        # d2 is open at the query time, so the approximation accepts it even
        # though the arrival (after 16:00) finds it closed.
        assert check.is_passable("d2", 600.0, TimeOfDay("15:59"))


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("synchronous", SynchronousCheck),
            ("ITG/S", SynchronousCheck),
            ("asynchronous", AsynchronousCheck),
            ("ITG/A", AsynchronousCheck),
            ("static", StaticCheck),
            ("query-time", QueryTimeCheck),
        ],
    )
    def test_known_names(self, example_itgraph, name, cls):
        assert isinstance(make_strategy(name, example_itgraph), cls)

    def test_unknown_name_rejected(self, example_itgraph):
        with pytest.raises(ValueError):
            make_strategy("teleport", example_itgraph)

    def test_method_labels(self, syn, asyn):
        assert syn.method_label == "ITG/S"
        assert asyn.method_label == "ITG/A"
