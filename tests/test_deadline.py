"""Cooperative deadlines: typed expiry on every tier, zero effect otherwise.

The contract under test (``repro.core.deadline``):

* an expired :class:`SearchDeadline` raises the typed
  :class:`DeadlineExceededError` out of whichever tier is searching —
  reference, compiled, batch, cache-recording, and the oracles — never a
  partial result;
* the engine/executor remains fully usable after an expiry (the arena's
  generation stamp and the per-call label allocation make an aborted run
  invisible);
* a deadline that does **not** fire changes nothing: results are
  bit-identical to an un-deadlined run, counter for counter;
* deadlines are an in-process concept — combining them with the parallel
  tier raises :class:`QueryError` (chunk timeouts bound that tier instead).
"""

from __future__ import annotations

import pytest

from repro.core.cache import CacheConfig
from repro.core.deadline import DEFAULT_CHECK_INTERVAL, SearchDeadline
from repro.core.engine import ITSPQEngine
from repro.core.query import ITSPQuery, SearchStatistics
from repro.core.reference import selection_dijkstra_reference, time_expanded_exact
from repro.exceptions import DeadlineExceededError, QueryError


class FakeClock:
    """A hand-advanced monotonic clock (deadline tests never sleep)."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSearchDeadline:
    def test_validation_names_the_field(self):
        with pytest.raises(ValueError, match="budget_seconds"):
            SearchDeadline(0.0)
        with pytest.raises(ValueError, match="budget_seconds"):
            SearchDeadline(-1.0)
        with pytest.raises(ValueError, match="budget_seconds"):
            SearchDeadline(float("inf"))
        with pytest.raises(ValueError, match="budget_seconds"):
            SearchDeadline(float("nan"))
        with pytest.raises(ValueError, match="check_interval"):
            SearchDeadline(1.0, check_interval=0)

    def test_tick_reads_clock_only_every_interval(self):
        clock = FakeClock()
        reads = []
        original = clock.__call__

        def counting():
            reads.append(1)
            return original()

        deadline = SearchDeadline(1.0, check_interval=8, clock=counting)
        start_reads = len(reads)  # construction reads once
        for _ in range(7):
            deadline.tick()
        assert len(reads) == start_reads
        deadline.tick()  # the 8th tick reads
        assert len(reads) == start_reads + 1

    def test_expiry_raises_typed_error(self):
        clock = FakeClock()
        deadline = SearchDeadline(0.5, check_interval=1, clock=clock)
        deadline.tick()  # within budget
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            deadline.tick()
        # ...and DeadlineExceededError is a TimeoutError for generic callers.
        assert issubclass(DeadlineExceededError, TimeoutError)

    def test_check_now_ignores_interval(self):
        clock = FakeClock()
        deadline = SearchDeadline(0.5, check_interval=1000, clock=clock)
        deadline.check_now()
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            deadline.check_now()

    def test_remaining_and_expired(self):
        clock = FakeClock()
        deadline = SearchDeadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(3.0)
        assert deadline.remaining() == pytest.approx(-1.0)
        assert deadline.expired

    def test_default_interval_is_documented_value(self):
        assert SearchDeadline(1.0).check_interval == DEFAULT_CHECK_INTERVAL


def _expired(clock: FakeClock, interval: int = 1) -> SearchDeadline:
    """A deadline already past its budget (fires on the first poll)."""
    deadline = SearchDeadline(0.001, check_interval=interval, clock=clock)
    clock.advance(1.0)
    return deadline


class TestEngineTiers:
    def test_compiled_tier_expiry_and_reuse(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        p3, p4 = example_points["p3"], example_points["p4"]
        clock = FakeClock()
        with pytest.raises(DeadlineExceededError):
            engine.query(p3, p4, "9:00", deadline=_expired(clock))
        # The engine is fully usable afterwards — same answer as fresh.
        result = engine.query(p3, p4, "9:00")
        fresh = ITSPQEngine(example_itgraph).query(p3, p4, "9:00")
        assert result.length == fresh.length

    def test_reference_tier_expiry(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph, compiled=False)
        p3, p4 = example_points["p3"], example_points["p4"]
        clock = FakeClock()
        with pytest.raises(DeadlineExceededError):
            engine.query(p3, p4, "9:00", deadline=_expired(clock))
        assert engine.query(p3, p4, "9:00").found

    def test_batch_tier_expiry_never_partial(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        p3, p4 = example_points["p3"], example_points["p4"]
        queries = [ITSPQuery(p3, p4, "9:00"), ITSPQuery(p4, p3, "14:00")]
        clock = FakeClock()
        with pytest.raises(DeadlineExceededError):
            engine.run_batch(queries, deadline=_expired(clock))
        results = engine.run_batch(queries)
        assert len(results) == 2 and all(r.found for r in results)

    def test_cache_recording_expiry_leaves_cache_empty(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph, cache=CacheConfig(mode="eager"))
        p3, p4 = example_points["p3"], example_points["p4"]
        clock = FakeClock()
        with pytest.raises(DeadlineExceededError):
            engine.query(p3, p4, "9:00", deadline=_expired(clock))
        # The interrupted recording run cached nothing.
        assert engine.cache_stats["trees_built"] == 0
        assert engine.cache_stats["entries"] == 0
        # The next (un-deadlined) query records and answers normally.
        assert engine.query(p3, p4, "9:00").found
        assert engine.cache_stats["trees_built"] == 1

    def test_oracles_observe_deadlines(self, example_itgraph, example_points):
        p3, p4 = example_points["p3"], example_points["p4"]
        clock = FakeClock()
        with pytest.raises(DeadlineExceededError):
            selection_dijkstra_reference(
                example_itgraph, p3, p4, "9:00", deadline=_expired(clock)
            )
        clock = FakeClock()
        with pytest.raises(DeadlineExceededError):
            time_expanded_exact(example_itgraph, p3, p4, "9:00", deadline=_expired(clock))

    def test_parallel_tier_rejects_deadlines(self, example_itgraph, example_points):
        engine = ITSPQEngine(example_itgraph)
        p3, p4 = example_points["p3"], example_points["p4"]
        queries = [ITSPQuery(p3, p4, "9:00")]
        clock = FakeClock()
        deadline = SearchDeadline(10.0, clock=clock)
        with pytest.raises(QueryError, match="chunk_timeout"):
            engine.run_batch(queries, workers=2, deadline=deadline)


class TestNonFiringDeadlineParity:
    """A generous deadline must change nothing — every counter identical."""

    @pytest.mark.parametrize("method", ["synchronous", "asynchronous", "static", "query-time"])
    def test_single_query_bit_identical(self, example_itgraph, example_points, method):
        p3, p4 = example_points["p3"], example_points["p4"]
        plain = ITSPQEngine(example_itgraph).query(p3, p4, "9:00", method=method)
        deadlined = ITSPQEngine(example_itgraph).query(
            p3, p4, "9:00", method=method, deadline=SearchDeadline(3600.0)
        )
        assert deadlined.found == plain.found
        assert deadlined.length == plain.length
        if plain.path is not None:
            assert deadlined.path.door_sequence == plain.path.door_sequence
        for name in SearchStatistics.COUNTER_FIELDS:
            assert getattr(deadlined.statistics, name) == getattr(plain.statistics, name), name

    def test_batch_bit_identical(self, example_itgraph, example_points):
        points = list(example_points.values())
        queries = [
            ITSPQuery(source, target, "9:00")
            for source in points
            for target in points
            if source is not target
        ]
        plain = ITSPQEngine(example_itgraph).run_batch(list(queries))
        deadlined = ITSPQEngine(example_itgraph).run_batch(
            list(queries), deadline=SearchDeadline(3600.0)
        )
        for before, after in zip(plain, deadlined):
            assert after.found == before.found
            assert after.length == before.length
            assert after.statistics.heap_pops == before.statistics.heap_pops
