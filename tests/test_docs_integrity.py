"""Docs that cannot drift: link integrity and the metrics-doc contract.

Two checks keep ``docs/`` honest in tier-1:

* every relative markdown link in the repo resolves (the same check CI's
  lint job runs via ``scripts/check_docs.py``);
* ``docs/OPERATIONS.md`` documents **every** field a live single-process
  service emits on ``/metrics`` and ``/readyz`` — asserted against a real
  scrape, not a hardcoded field list, so adding a metric without
  documenting it fails here.  (``tests/test_shard_router.py`` holds the
  router-topology half of the same contract.)
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
from pathlib import Path

from repro.core.cache import CacheConfig
from repro.core.engine import ITSPQEngine
from repro.service import ITSPQService, ServiceConfig

from tests._service_http import assert_fields_documented, get, post_query, query_body

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestLinkIntegrity:
    def test_every_relative_markdown_link_resolves(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_checker_catches_a_broken_link(self, tmp_path, monkeypatch):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
        )
        check_docs = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_docs)

        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        page = tmp_path / "page.md"
        page.write_text(
            "[ok](page.md) [gone](missing.md) [ext](https://example.com/x.md) "
            "[anchor](#here) [escape](../outside.md)"
        )
        problems = check_docs.broken_links(page)
        assert [target for target, _why in problems] == ["missing.md"]


class TestMetricsDocCoverage:
    def test_live_single_process_scrape_is_fully_documented(self, example_itgraph, example_points):
        doc_text = (REPO_ROOT / "docs" / "OPERATIONS.md").read_text()

        async def scenario():
            engine = ITSPQEngine(example_itgraph, cache=CacheConfig(mode="eager"))
            service = ITSPQService(
                {"example": engine}, ServiceConfig(port=0, batch_window_ms=1)
            )
            await service.start()
            try:
                # One answered query populates last_execution_report and the
                # per-venue cache section before the scrape.
                status, payload = await post_query(
                    service.host,
                    service.port,
                    query_body(example_points["p3"], example_points["p4"]),
                )
                assert status == 200, payload
                status, metrics = await get(service.host, service.port, "/metrics")
                assert status == 200
                status, ready = await get(service.host, service.port, "/readyz")
                assert status == 200
            finally:
                await service.aclose()
            return metrics, ready

        metrics, ready = asyncio.run(scenario())
        assert metrics["venues"]["example"]["last_execution_report"] is not None
        assert_fields_documented(metrics, doc_text, "single-process /metrics")
        assert_fields_documented(ready, doc_text, "single-process /readyz")

    def test_operations_md_names_every_http_status(self):
        doc_text = (REPO_ROOT / "docs" / "OPERATIONS.md").read_text()
        for status in (200, 400, 404, 405, 408, 429, 502, 503, 504):
            assert f"| {status} |" in doc_text, f"status {status} missing from the error table"
        for error_type in (
            "ServiceOverloadedError",
            "ServiceUnavailableError",
            "DeadlineExceededError",
            "ShardTimeoutError",
            "ShardConnectionError",
        ):
            assert f"`{error_type}`" in doc_text, f"{error_type} missing from the error table"
