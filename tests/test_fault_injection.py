"""Chaos parity: the degradation ladder keeps parallel execution exact.

Every test here injects a deterministic failure schedule (a
:class:`repro.testing.faults.FaultPlan`) into the supervised
:class:`~repro.core.parallel.ParallelBatchExecutor` — workers SIGKILLed
mid-chunk, injected exceptions, chunks delayed past their timeout, payloads
corrupted at rehydration, initializers that refuse to come up — and then
asserts the two halves of the fault-tolerance contract:

1. **Parity**: the merged results are bit-identical to the sequential
   oracle (paths, lengths, every statistics counter) no matter which rung
   of the ladder — pool, retry on a respawned pool, in-process fallback —
   ultimately answered each chunk.
2. **Observability**: the run's :class:`~repro.core.parallel.ExecutionReport`
   records exactly the degradation that was injected, and a clean run
   records none.

Faults key on deterministic coordinates (chunk id, attempt number, pool
generation), so every test replays the identical failure schedule on every
run — there is no flaky-chaos mode here.
"""

import pytest

from test_compiled_parity import assert_parity

from repro.core.engine import ITSPQEngine
from repro.core.parallel import ParallelBatchExecutor
from repro.core.query import ITSPQuery
from repro.exceptions import (
    ChunkTimeoutError,
    ParallelExecutionError,
    WorkerCrashError,
)
from repro.testing.faults import (
    CORRUPT_PAYLOAD,
    CRASH,
    DELAY,
    EXCEPTION,
    INIT_FAIL,
    FaultPlan,
    FaultSpec,
)

#: Supervision tuning shared by the chaos runs: fast backoff so retries and
#: respawns do not slow the suite down (determinism never depends on timing).
FAST = dict(backoff_base=0.01, backoff_cap=0.05)


def chaos_workload(example_points, times=("6:30", "9:00", "12:00", "15:55")):
    """A workload wide enough to plan into several chunks on 2 workers."""
    names = sorted(example_points)
    queries = [
        ITSPQuery(example_points[a], example_points[b], t)
        for a in names
        for b in names
        if a != b
        for t in times
    ]
    queries += queries[:5]  # duplicates ride along
    return queries


@pytest.fixture(scope="module")
def oracle_results(example_itgraph, example_points):
    """Sequential oracle answers for the chaos workload (computed once)."""
    queries = chaos_workload(example_points)
    oracle = ITSPQEngine(example_itgraph)
    return queries, [oracle.run(query, method="synchronous") for query in queries]


def run_with_plan(example_itgraph, queries, plan, **options):
    """Run the chaos workload on a fresh 2-worker executor under ``plan``."""
    executor = ParallelBatchExecutor(
        example_itgraph.compiled(), workers=2, fault_plan=plan, **{**FAST, **options}
    )
    try:
        results = executor.run_batch(queries, "synchronous")
        return results, executor.last_report
    finally:
        executor.close()


def assert_oracle_parity(oracle, actual):
    assert len(actual) == len(oracle)
    for reference_result, chaos_result in zip(oracle, actual):
        assert_parity(reference_result, chaos_result)


class TestCleanRun:
    def test_clean_run_reports_zero_degradation(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        results, report = run_with_plan(example_itgraph, queries, plan=None)
        assert_oracle_parity(oracle, results)
        assert report.mode == "pool"
        assert report.clean
        assert report.chunks_retried == 0
        assert report.chunks_fallback == 0
        assert report.pool_respawns == 0
        assert report.chunks_completed == report.chunks_total > 1
        assert report.chunks_dispatched == report.chunks_total
        assert report.workers == 2
        assert report.usable_cpus >= 1
        assert report.queries == len(queries)

    def test_engine_surfaces_last_execution_report(self, example_itgraph, example_points):
        queries = chaos_workload(example_points, times=("9:00", "12:00"))
        with ITSPQEngine(example_itgraph) as engine:
            assert engine.last_execution_report is None
            engine.run_batch(queries, method="synchronous", workers=2)
            pool_report = engine.last_execution_report
            assert pool_report.mode == "pool" and pool_report.clean
            engine.run_batch(queries, method="synchronous")
            assert engine.last_execution_report.mode == "batched"
            assert engine.last_execution_report.groups >= 1
            engine.run_batch(queries, method="synchronous", batch=False)
            assert engine.last_execution_report.mode == "sequential"


class TestWorkerCrash:
    def test_sigkill_mid_chunk_recovers(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        plan = FaultPlan(seed=1, faults=(FaultSpec(CRASH, chunk_id=0),))
        results, report = run_with_plan(example_itgraph, queries, plan)
        assert_oracle_parity(oracle, results)
        assert not report.clean
        assert report.worker_crashes >= 1
        assert report.pool_respawns >= 1
        assert report.chunks_retried >= 1
        assert report.chunks_fallback == 0  # the retry rung was enough

    def test_scattered_crashes_recover(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        plan = FaultPlan.scatter(seed=7, chunk_count=8, crash_every=4)
        results, report = run_with_plan(example_itgraph, queries, plan)
        assert_oracle_parity(oracle, results)
        assert report.worker_crashes >= 1
        assert report.chunks_fallback == 0

    def test_persistent_crash_falls_back_in_process(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        # Chunk 0 crashes its worker on every pool attempt: the ladder must
        # descend to the in-process rung for exactly that chunk.
        plan = FaultPlan(seed=2, faults=(FaultSpec(CRASH, chunk_id=0, attempts_below=99),))
        results, report = run_with_plan(
            example_itgraph, queries, plan, max_chunk_retries=1
        )
        assert_oracle_parity(oracle, results)
        assert report.chunks_fallback == 1
        assert report.worker_crashes >= 2  # initial dispatch + every retry


class TestWorkerException:
    def test_exception_retries_without_respawn(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        plan = FaultPlan(seed=3, faults=(FaultSpec(EXCEPTION, chunk_id=1),))
        results, report = run_with_plan(example_itgraph, queries, plan)
        assert_oracle_parity(oracle, results)
        assert report.chunk_failures == 1
        assert report.chunks_retried == 1
        # A clean exception does not kill the worker: same pool throughout.
        assert report.pool_respawns == 0
        assert report.worker_crashes == 0

    def test_exception_on_every_chunk_recovers(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        plan = FaultPlan(seed=4, faults=(FaultSpec(EXCEPTION),))  # chunk_id=None: all
        results, report = run_with_plan(example_itgraph, queries, plan)
        assert_oracle_parity(oracle, results)
        assert report.chunk_failures == report.chunks_total
        assert report.chunks_retried == report.chunks_total
        assert report.chunks_fallback == 0


class TestChunkTimeout:
    def test_delayed_chunk_times_out_and_recovers(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        plan = FaultPlan(
            seed=5, faults=(FaultSpec(DELAY, chunk_id=0, delay_seconds=5.0),)
        )
        results, report = run_with_plan(
            example_itgraph, queries, plan, chunk_timeout=0.25
        )
        assert_oracle_parity(oracle, results)
        assert report.chunk_timeouts >= 1
        assert report.pool_respawns >= 1  # a stuck worker costs the pool
        assert report.chunks_fallback == 0

    def test_timeout_disabled_waits_out_the_delay(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        plan = FaultPlan(
            seed=6, faults=(FaultSpec(DELAY, chunk_id=0, delay_seconds=0.3),)
        )
        results, report = run_with_plan(
            example_itgraph, queries, plan, chunk_timeout=None
        )
        assert_oracle_parity(oracle, results)
        assert report.chunk_timeouts == 0
        assert report.chunks_retried == 0  # slow is not failed


class TestBrokenStartup:
    def test_init_failure_recovers_on_respawn(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        # Generation 0 never comes up; the respawned generation 1 is healthy.
        plan = FaultPlan(seed=8, faults=(FaultSpec(INIT_FAIL),))
        results, report = run_with_plan(example_itgraph, queries, plan)
        assert_oracle_parity(oracle, results)
        assert report.pool_respawns >= 1
        assert report.worker_crashes >= 1
        assert report.chunks_fallback == 0

    def test_corrupt_payload_at_rehydration_recovers(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        # Generation 0 rehydrates a bit-flipped payload: the codec's CRC
        # check kills the initializer (CorruptPayloadError), the supervisor
        # respawns, and generation 1 decodes the pristine payload.
        plan = FaultPlan(seed=9, faults=(FaultSpec(CORRUPT_PAYLOAD),))
        results, report = run_with_plan(example_itgraph, queries, plan)
        assert_oracle_parity(oracle, results)
        assert report.pool_respawns >= 1
        assert report.chunks_fallback == 0

    def test_unrecoverable_pool_drains_to_fallback(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        # Every generation fails its initializer: the pool is unsalvageable
        # and the whole workload must drain to the in-process rung — slower,
        # but still complete and still exact.
        plan = FaultPlan(
            seed=10, faults=(FaultSpec(INIT_FAIL, generations_below=99),)
        )
        results, report = run_with_plan(
            example_itgraph, queries, plan, max_chunk_retries=1
        )
        assert_oracle_parity(oracle, results)
        assert report.chunks_fallback == report.chunks_total
        assert report.chunks_completed == 0


class TestFallbackDisabled:
    def test_persistent_crash_raises_worker_crash_error(
        self, example_itgraph, example_points
    ):
        queries = chaos_workload(example_points, times=("9:00",))
        plan = FaultPlan(seed=11, faults=(FaultSpec(CRASH, attempts_below=99),))
        with pytest.raises(WorkerCrashError):
            run_with_plan(
                example_itgraph,
                queries,
                plan,
                max_chunk_retries=1,
                in_process_fallback=False,
            )

    def test_persistent_timeout_raises_chunk_timeout_error(
        self, example_itgraph, example_points
    ):
        queries = chaos_workload(example_points, times=("9:00",))
        plan = FaultPlan(
            seed=12, faults=(FaultSpec(DELAY, attempts_below=99, delay_seconds=5.0),)
        )
        with pytest.raises(ChunkTimeoutError):
            run_with_plan(
                example_itgraph,
                queries,
                plan,
                max_chunk_retries=1,
                chunk_timeout=0.25,
                in_process_fallback=False,
            )

    def test_taxonomy_is_catchable_as_parallel_execution_error(
        self, example_itgraph, example_points
    ):
        queries = chaos_workload(example_points, times=("9:00",))
        plan = FaultPlan(seed=13, faults=(FaultSpec(CRASH, attempts_below=99),))
        with pytest.raises(ParallelExecutionError):
            run_with_plan(
                example_itgraph,
                queries,
                plan,
                max_chunk_retries=0,
                in_process_fallback=False,
            )


class TestDeterminism:
    def test_chaos_reruns_are_bit_identical(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        plan = FaultPlan.scatter(
            seed=14, chunk_count=8, crash_every=5, exception_every=3
        )
        first, _ = run_with_plan(example_itgraph, queries, plan)
        second, _ = run_with_plan(example_itgraph, queries, plan)
        assert_oracle_parity(oracle, first)
        for result_a, result_b in zip(first, second):
            assert_parity(result_a, result_b)

    def test_mixed_fault_storm_stays_exact(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        # Crashes, exceptions and a broken first pool generation at once.
        plan = FaultPlan(
            seed=15,
            faults=(
                FaultSpec(CORRUPT_PAYLOAD),
                FaultSpec(CRASH, chunk_id=2),
                FaultSpec(EXCEPTION, chunk_id=4),
                FaultSpec(CRASH, chunk_id=5, attempts_below=99),
            ),
        )
        results, report = run_with_plan(
            example_itgraph, queries, plan, max_chunk_retries=1
        )
        assert_oracle_parity(oracle, results)
        assert not report.clean
        assert report.chunks_fallback >= 1  # the persistent crasher
        assert report.fault_plan is not None  # the report names the plan

    def test_engine_level_chaos_via_run_batch(self, example_itgraph, oracle_results):
        queries, oracle = oracle_results
        plan = FaultPlan(seed=16, faults=(FaultSpec(CRASH, chunk_id=1),))
        with ITSPQEngine(example_itgraph) as engine:
            engine.parallel_executor(2, fault_plan=plan, **FAST)
            results = engine.run_batch(queries, method="synchronous", workers=2)
            assert_oracle_parity(oracle, results)
            report = engine.last_execution_report
            assert report.worker_crashes >= 1
            assert "respawn" in report.summary()
            record = report.as_dict()
            assert record["clean"] is False
            assert record["fault_plan"]
            # Retuning with plain options replaces the sabotaged executor.
            engine.parallel_executor(2, fault_plan=None, **FAST)
            results = engine.run_batch(queries, method="synchronous", workers=2)
            assert_oracle_parity(oracle, results)
            assert engine.last_execution_report.clean
