"""Tests for the shared distance measures."""

import math

import pytest

from repro.exceptions import InvalidGeometryError
from repro.geometry.measures import (
    euclidean_distance,
    indoor_euclidean_distance,
    manhattan_distance,
    path_length,
)
from repro.geometry.point import IndoorPoint, Point2D


def test_euclidean_between_planar_points():
    assert euclidean_distance(Point2D(0, 0), Point2D(3, 4)) == 5.0


def test_euclidean_between_indoor_points_same_floor():
    assert euclidean_distance(IndoorPoint(0, 0, 1), IndoorPoint(3, 4, 1)) == 5.0


def test_euclidean_between_indoor_points_different_floor_raises():
    with pytest.raises(InvalidGeometryError):
        euclidean_distance(IndoorPoint(0, 0, 0), IndoorPoint(3, 4, 1))


def test_euclidean_mixed_types_treats_planar_as_same_floor():
    assert euclidean_distance(IndoorPoint(0, 0, 3), Point2D(3, 4)) == 5.0


def test_indoor_euclidean_alias():
    assert indoor_euclidean_distance(IndoorPoint(1, 1, 0), IndoorPoint(4, 5, 0)) == 5.0


def test_manhattan_distance():
    assert manhattan_distance(Point2D(0, 0), Point2D(3, 4)) == 7.0
    with pytest.raises(InvalidGeometryError):
        manhattan_distance(IndoorPoint(0, 0, 0), IndoorPoint(1, 1, 1))


def test_path_length_of_polyline():
    points = [Point2D(0, 0), Point2D(3, 4), Point2D(3, 10)]
    assert math.isclose(path_length(points), 11.0)


def test_path_length_degenerate_cases():
    assert path_length([]) == 0.0
    assert path_length([Point2D(1, 1)]) == 0.0
