"""Tests for planar and floor-aware points."""

import math

import pytest

from repro.exceptions import InvalidGeometryError
from repro.geometry.point import IndoorPoint, Point2D


class TestPoint2D:
    def test_distance_is_euclidean(self):
        assert Point2D(0, 0).distance_to(Point2D(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point2D(1.5, -2.0), Point2D(-3.0, 7.25)
        assert a.distance_to(b) == b.distance_to(a)

    def test_manhattan_distance(self):
        assert Point2D(0, 0).manhattan_distance_to(Point2D(3, 4)) == 7.0

    def test_midpoint(self):
        assert Point2D(0, 0).midpoint(Point2D(4, 6)) == Point2D(2, 3)

    def test_unpacking(self):
        x, y = Point2D(1.0, 2.0)
        assert (x, y) == (1.0, 2.0)

    def test_addition_and_subtraction(self):
        assert Point2D(1, 2) + Point2D(3, 4) == Point2D(4, 6)
        assert Point2D(3, 4) - Point2D(1, 2) == Point2D(2, 2)

    def test_scaling(self):
        assert Point2D(1, -2).scaled(3) == Point2D(3, -6)

    def test_translated(self):
        assert Point2D(1, 1).translated(2, -1) == Point2D(3, 0)

    def test_almost_equal(self):
        assert Point2D(1, 1).almost_equal(Point2D(1 + 1e-12, 1 - 1e-12))
        assert not Point2D(1, 1).almost_equal(Point2D(1.1, 1))

    def test_rejects_non_finite_coordinates(self):
        with pytest.raises(InvalidGeometryError):
            Point2D(float("nan"), 0)
        with pytest.raises(InvalidGeometryError):
            Point2D(0, float("inf"))

    def test_hashable_and_ordered(self):
        points = {Point2D(0, 0), Point2D(0, 0), Point2D(1, 0)}
        assert len(points) == 2
        assert sorted([Point2D(1, 0), Point2D(0, 5)])[0] == Point2D(0, 5)


class TestIndoorPoint:
    def test_same_floor_distance(self):
        assert IndoorPoint(0, 0, 2).distance_to(IndoorPoint(3, 4, 2)) == 5.0

    def test_cross_floor_distance_is_undefined(self):
        with pytest.raises(InvalidGeometryError):
            IndoorPoint(0, 0, 0).distance_to(IndoorPoint(0, 0, 1))

    def test_floor_must_be_integer(self):
        with pytest.raises(InvalidGeometryError):
            IndoorPoint(0, 0, 1.5)  # type: ignore[arg-type]

    def test_point2d_projection(self):
        assert IndoorPoint(2, 3, 4).point2d == Point2D(2, 3)

    def test_same_floor_predicate(self):
        assert IndoorPoint(0, 0, 1).same_floor(IndoorPoint(9, 9, 1))
        assert not IndoorPoint(0, 0, 1).same_floor(IndoorPoint(0, 0, 2))

    def test_on_floor_relocation(self):
        moved = IndoorPoint(1, 2, 0).on_floor(3)
        assert moved.floor == 3 and moved.x == 1 and moved.y == 2

    def test_translated_keeps_floor(self):
        moved = IndoorPoint(1, 2, 5).translated(1, 1)
        assert moved == IndoorPoint(2, 3, 5)

    def test_as_tuple(self):
        assert IndoorPoint(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_rejects_nan(self):
        with pytest.raises(InvalidGeometryError):
            IndoorPoint(math.nan, 0, 0)
