"""Tests for polygons, rectangles and bounding boxes."""


import pytest

from repro.exceptions import InvalidGeometryError
from repro.geometry.point import Point2D
from repro.geometry.polygon import BoundingBox, Polygon, Rectangle, convex_hull


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(InvalidGeometryError):
            Polygon([Point2D(0, 0), Point2D(1, 1)])

    def test_closed_ring_is_normalised(self):
        ring = [Point2D(0, 0), Point2D(4, 0), Point2D(4, 4), Point2D(0, 0)]
        assert len(Polygon(ring)) == 3

    def test_area_of_square(self):
        square = Polygon([Point2D(0, 0), Point2D(4, 0), Point2D(4, 4), Point2D(0, 4)])
        assert square.area == 16.0

    def test_area_independent_of_orientation(self):
        ccw = Polygon([Point2D(0, 0), Point2D(4, 0), Point2D(4, 4), Point2D(0, 4)])
        cw = Polygon([Point2D(0, 0), Point2D(0, 4), Point2D(4, 4), Point2D(4, 0)])
        assert ccw.area == cw.area == 16.0
        assert ccw.signed_area == -cw.signed_area

    def test_perimeter(self):
        triangle = Polygon([Point2D(0, 0), Point2D(3, 0), Point2D(0, 4)])
        assert triangle.perimeter == 12.0

    def test_centroid_of_square(self):
        square = Polygon([Point2D(0, 0), Point2D(2, 0), Point2D(2, 2), Point2D(0, 2)])
        assert square.centroid == Point2D(1, 1)

    def test_contains_interior_boundary_and_exterior(self):
        square = Polygon([Point2D(0, 0), Point2D(4, 0), Point2D(4, 4), Point2D(0, 4)])
        assert square.contains(Point2D(2, 2))
        assert square.contains(Point2D(4, 2))  # on the boundary
        assert square.contains(Point2D(0, 0))  # corner
        assert not square.contains(Point2D(5, 2))
        assert not square.contains(Point2D(-0.01, 2))

    def test_contains_l_shape(self):
        l_shape = Polygon(
            [
                Point2D(0, 0),
                Point2D(4, 0),
                Point2D(4, 2),
                Point2D(2, 2),
                Point2D(2, 4),
                Point2D(0, 4),
            ]
        )
        assert l_shape.contains(Point2D(1, 3))
        assert l_shape.contains(Point2D(3, 1))
        assert not l_shape.contains(Point2D(3, 3))

    def test_distance_to_point(self):
        square = Polygon([Point2D(0, 0), Point2D(4, 0), Point2D(4, 4), Point2D(0, 4)])
        assert square.distance_to_point(Point2D(2, 2)) == 0.0
        assert square.distance_to_point(Point2D(7, 2)) == 3.0

    def test_bounding_box(self):
        triangle = Polygon([Point2D(0, 1), Point2D(5, 3), Point2D(2, 8)])
        box = triangle.bounding_box
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 1, 5, 8)

    def test_translated(self):
        square = Polygon([Point2D(0, 0), Point2D(1, 0), Point2D(1, 1), Point2D(0, 1)])
        moved = square.translated(10, 20)
        assert moved.contains(Point2D(10.5, 20.5))
        assert not moved.contains(Point2D(0.5, 0.5))

    def test_equality_and_hash(self):
        a = Polygon([Point2D(0, 0), Point2D(1, 0), Point2D(1, 1)])
        b = Polygon([Point2D(0, 0), Point2D(1, 0), Point2D(1, 1)])
        assert a == b
        assert hash(a) == hash(b)


class TestRectangle:
    def test_requires_positive_extent(self):
        with pytest.raises(InvalidGeometryError):
            Rectangle(0, 0, 0, 5)

    def test_dimensions(self):
        rect = Rectangle(1, 2, 4, 8)
        assert rect.width == 3 and rect.height == 6
        assert rect.area == 18.0

    def test_from_origin_size(self):
        rect = Rectangle.from_origin_size(Point2D(1, 1), 2, 3)
        assert rect.max_corner == Point2D(3, 4)

    def test_fast_containment(self):
        rect = Rectangle(0, 0, 10, 5)
        assert rect.contains(Point2D(10, 5))
        assert not rect.contains(Point2D(10.01, 5))

    def test_shared_wall_vertical(self):
        left = Rectangle(0, 0, 5, 10)
        right = Rectangle(5, 2, 9, 8)
        wall = left.shared_wall(right)
        assert wall is not None
        assert wall.start.x == wall.end.x == 5
        assert wall.length == 6.0

    def test_shared_wall_horizontal(self):
        bottom = Rectangle(0, 0, 10, 5)
        top = Rectangle(3, 5, 8, 9)
        wall = bottom.shared_wall(top)
        assert wall is not None
        assert wall.start.y == wall.end.y == 5
        assert wall.length == 5.0

    def test_no_shared_wall(self):
        a = Rectangle(0, 0, 5, 5)
        b = Rectangle(6, 0, 10, 5)
        assert a.shared_wall(b) is None


class TestBoundingBox:
    def test_rejects_inverted_box(self):
        with pytest.raises(InvalidGeometryError):
            BoundingBox(5, 0, 0, 5)

    def test_contains_and_center(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.contains(Point2D(4, 2))
        assert box.center == Point2D(2, 1)
        assert box.area == 8.0

    def test_intersects(self):
        a = BoundingBox(0, 0, 4, 4)
        assert a.intersects(BoundingBox(3, 3, 6, 6))
        assert a.intersects(BoundingBox(4, 0, 6, 2))  # boundary contact
        assert not a.intersects(BoundingBox(5, 5, 6, 6))


class TestConvexHull:
    def test_hull_of_square_with_interior_point(self):
        points = [Point2D(0, 0), Point2D(4, 0), Point2D(4, 4), Point2D(0, 4), Point2D(2, 2)]
        hull = convex_hull(points)
        assert hull.area == 16.0
        assert len(hull) == 4

    def test_collinear_points_rejected(self):
        with pytest.raises(InvalidGeometryError):
            convex_hull([Point2D(0, 0), Point2D(1, 1), Point2D(2, 2)])

    def test_hull_area_never_exceeds_bounding_box(self):
        points = [Point2D(0, 0), Point2D(6, 1), Point2D(3, 7), Point2D(1, 5), Point2D(5, 5)]
        hull = convex_hull(points)
        box = hull.bounding_box
        assert hull.area <= box.area + 1e-9
