"""Tests for line segments."""

import math

import pytest

from repro.geometry.point import Point2D
from repro.geometry.segment import LineSegment


@pytest.fixture()
def horizontal():
    return LineSegment(Point2D(0, 0), Point2D(10, 0))


def test_length(horizontal):
    assert horizontal.length == 10.0


def test_midpoint(horizontal):
    assert horizontal.midpoint == Point2D(5, 0)


def test_point_at_fraction(horizontal):
    assert horizontal.point_at(0.25) == Point2D(2.5, 0)
    assert horizontal.point_at(0.0) == horizontal.start
    assert horizontal.point_at(1.0) == horizontal.end


def test_closest_point_inside_projection(horizontal):
    assert horizontal.closest_point_to(Point2D(4, 3)) == Point2D(4, 0)


def test_closest_point_clamped_to_endpoints(horizontal):
    assert horizontal.closest_point_to(Point2D(-5, 3)) == Point2D(0, 0)
    assert horizontal.closest_point_to(Point2D(15, -2)) == Point2D(10, 0)


def test_distance_to_point(horizontal):
    assert horizontal.distance_to_point(Point2D(4, 3)) == 3.0
    assert math.isclose(horizontal.distance_to_point(Point2D(13, 4)), 5.0)


def test_contains_point(horizontal):
    assert horizontal.contains_point(Point2D(5, 0))
    assert not horizontal.contains_point(Point2D(5, 0.1))


def test_crossing_segments_intersect():
    a = LineSegment(Point2D(0, 0), Point2D(10, 10))
    b = LineSegment(Point2D(0, 10), Point2D(10, 0))
    assert a.intersection(b) == Point2D(5, 5)


def test_parallel_segments_do_not_intersect():
    a = LineSegment(Point2D(0, 0), Point2D(10, 0))
    b = LineSegment(Point2D(0, 1), Point2D(10, 1))
    assert a.intersection(b) is None


def test_disjoint_segments_on_same_line():
    a = LineSegment(Point2D(0, 0), Point2D(2, 0))
    b = LineSegment(Point2D(5, 0), Point2D(9, 0))
    assert a.intersection(b) is None


def test_collinear_overlap_returns_overlap_midpoint():
    a = LineSegment(Point2D(0, 0), Point2D(10, 0))
    b = LineSegment(Point2D(6, 0), Point2D(14, 0))
    assert a.intersection(b) == Point2D(8, 0)


def test_non_crossing_segments():
    a = LineSegment(Point2D(0, 0), Point2D(1, 1))
    b = LineSegment(Point2D(5, 0), Point2D(5, 10))
    assert a.intersection(b) is None


def test_reversed(horizontal):
    assert horizontal.reversed() == LineSegment(Point2D(10, 0), Point2D(0, 0))


def test_angle():
    assert math.isclose(LineSegment(Point2D(0, 0), Point2D(0, 5)).angle(), math.pi / 2)


def test_degenerate_segment():
    degenerate = LineSegment(Point2D(1, 1), Point2D(1, 1))
    assert degenerate.is_degenerate
    assert degenerate.length == 0.0
    assert degenerate.closest_point_to(Point2D(5, 5)) == Point2D(1, 1)
