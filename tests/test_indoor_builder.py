"""Tests for the fluent indoor-space builder."""

import pytest

from repro.constants import DEFAULT_STAIRWAY_LENGTH_M
from repro.exceptions import TopologyError
from repro.geometry.point import IndoorPoint
from repro.indoor.builder import IndoorSpaceBuilder
from repro.indoor.entities import DoorType, OUTDOOR_PARTITION_ID, PartitionCategory, PartitionType


def test_rectangle_partition_and_wall_door():
    builder = IndoorSpaceBuilder("t")
    builder.add_rectangle_partition("a", 0, 0, 10, 10)
    builder.add_rectangle_partition("b", 10, 0, 20, 10)
    builder.add_wall_door("d1", "a", "b", fraction=0.5)
    space = builder.build()
    door = space.door("d1")
    assert door.position.x == 10 and door.position.y == 5
    assert space.topology.partitions_of("d1") == {"a", "b"}


def test_wall_door_requires_shared_wall():
    builder = IndoorSpaceBuilder("t")
    builder.add_rectangle_partition("a", 0, 0, 10, 10)
    builder.add_rectangle_partition("b", 30, 0, 40, 10)
    with pytest.raises(TopologyError):
        builder.add_wall_door("d1", "a", "b")


def test_private_partition_helper():
    builder = IndoorSpaceBuilder("t")
    builder.add_private_partition("office", floor=1)
    partition = builder.space.partition("office")
    assert partition.is_private
    assert partition.category is PartitionCategory.OFFICE


def test_directional_door():
    builder = IndoorSpaceBuilder("t")
    builder.add_rectangle_partition("a", 0, 0, 10, 10)
    builder.add_rectangle_partition("b", 10, 0, 20, 10)
    builder.add_door("exit", IndoorPoint(10, 5, 0), between=("a", "b"), bidirectional=False)
    topology = builder.build().topology
    assert topology.leaveable_doors("a") == {"exit"}
    assert topology.enterable_doors("a") == set()


def test_outdoor_door():
    builder = IndoorSpaceBuilder("t")
    builder.add_rectangle_partition("lobby", 0, 0, 10, 10)
    builder.add_door_to_outdoors("entrance", IndoorPoint(0, 5, 0), "lobby")
    space = builder.build()
    assert space.has_partition(OUTDOOR_PARTITION_ID)
    assert space.topology.partitions_of("entrance") == {OUTDOOR_PARTITION_ID, "lobby"}
    # Adding the outdoors twice must not fail.
    builder.add_outdoors()


def test_staircase_registers_override_and_floors():
    builder = IndoorSpaceBuilder("t")
    builder.add_rectangle_partition("hall0", 0, 0, 10, 10, floor=0)
    builder.add_rectangle_partition("hall1", 0, 0, 10, 10, floor=1)
    builder.add_staircase(
        "stairs",
        0,
        1,
        lower_door=("s-low", IndoorPoint(5, 5, 0), "hall0"),
        upper_door=("s-up", IndoorPoint(5, 5, 1), "hall1"),
    )
    space = builder.build()
    stairs = space.partition("stairs")
    assert stairs.is_staircase
    assert stairs.spans_floors == (0, 1)
    assert stairs.override_distance("s-low", "s-up") == DEFAULT_STAIRWAY_LENGTH_M
    assert space.topology.partitions_of("s-low") == {"hall0", "stairs"}
    assert space.topology.partitions_of("s-up") == {"hall1", "stairs"}


def test_door_types_are_preserved():
    builder = IndoorSpaceBuilder("t")
    builder.add_rectangle_partition("a", 0, 0, 10, 10)
    builder.add_rectangle_partition("b", 10, 0, 20, 10)
    builder.add_door("d", IndoorPoint(10, 5, 0), between=("a", "b"), door_type=DoorType.PRIVATE)
    assert builder.build().door("d").is_private


def test_build_without_validation_allows_inconsistency():
    builder = IndoorSpaceBuilder("t")
    builder.add_rectangle_partition("lonely", 0, 0, 5, 5)
    # With validation the doorless partition is rejected; without it the
    # space is returned as-is.
    with pytest.raises(Exception):
        builder.build(validate=True)
    space = builder.build(validate=False)
    assert space.has_partition("lonely")


def test_partition_type_parameter():
    builder = IndoorSpaceBuilder("t")
    builder.add_rectangle_partition(
        "secure", 0, 0, 5, 5, partition_type=PartitionType.PRIVATE
    )
    assert builder.space.partition("secure").is_private
