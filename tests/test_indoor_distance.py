"""Tests for intra-partition distances and distance matrices."""

import math

import pytest

from repro.exceptions import UnknownEntityError
from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Rectangle
from repro.indoor.builder import IndoorSpaceBuilder
from repro.indoor.distance import (
    build_distance_matrices,
    build_distance_matrix,
    intra_partition_distance,
    point_to_door_distance,
)
from repro.indoor.entities import Door, Partition


@pytest.fixture()
def three_door_space():
    """One 20x10 hall with three doors plus a one-door side room."""
    builder = IndoorSpaceBuilder("distance-test")
    builder.add_rectangle_partition("hall", 0, 0, 20, 10)
    builder.add_rectangle_partition("north", 0, 10, 20, 20)
    builder.add_rectangle_partition("east", 20, 0, 30, 10)
    builder.add_door("dn1", IndoorPoint(5, 10, 0), between=("hall", "north"))
    builder.add_door("dn2", IndoorPoint(15, 10, 0), between=("hall", "north"))
    builder.add_door("de", IndoorPoint(20, 5, 0), between=("hall", "east"))
    return builder.build()


def test_distance_matrix_contains_all_pairs(three_door_space):
    matrix = build_distance_matrix(three_door_space, "hall")
    assert set(matrix.doors) == {"dn1", "dn2", "de"}
    assert len(matrix) == 3  # three unordered pairs
    assert matrix.distance("dn1", "dn2") == 10.0
    assert math.isclose(matrix.distance("dn1", "de"), math.hypot(15, 5))
    assert matrix.distance("dn2", "de") == matrix.distance("de", "dn2")


def test_distance_to_self_is_zero(three_door_space):
    matrix = build_distance_matrix(three_door_space, "hall")
    assert matrix.distance("dn1", "dn1") == 0.0
    with pytest.raises(UnknownEntityError):
        matrix.distance("zzz", "zzz")


def test_single_door_partition_has_trivial_matrix(three_door_space):
    matrix = build_distance_matrix(three_door_space, "east")
    assert matrix.is_trivial
    assert len(matrix) == 0
    assert matrix.distance("de", "de") == 0.0


def test_unknown_pair_raises(three_door_space):
    matrix = build_distance_matrix(three_door_space, "north")
    with pytest.raises(UnknownEntityError):
        matrix.distance("dn1", "de")


def test_build_all_matrices(three_door_space):
    matrices = build_distance_matrices(three_door_space)
    assert set(matrices) == {"hall", "north", "east"}
    assert matrices["north"].distance("dn1", "dn2") == 10.0


def test_pairs_iteration(three_door_space):
    matrix = build_distance_matrix(three_door_space, "hall")
    listed = {(a, b): d for a, b, d in matrix.pairs()}
    assert len(listed) == 3
    assert listed[("dn1", "dn2")] == 10.0


def test_membership_operator(three_door_space):
    matrix = build_distance_matrix(three_door_space, "hall")
    assert ("dn1", "de") in matrix
    assert ("dn1", "dn1") in matrix
    assert ("dn1", "missing") not in matrix


def test_override_wins_over_euclidean():
    partition = Partition(
        "stairs",
        Rectangle(0, 0, 4, 4),
        distance_overrides={frozenset(("low", "up")): 20.0},
    )
    low = Door("low", IndoorPoint(0, 2, 0))
    up = Door("up", IndoorPoint(4, 2, 1))
    assert intra_partition_distance(partition, low, up) == 20.0


def test_cross_floor_without_override_raises():
    partition = Partition("stairs", Rectangle(0, 0, 4, 4))
    low = Door("low", IndoorPoint(0, 2, 0))
    up = Door("up", IndoorPoint(4, 2, 1))
    with pytest.raises(UnknownEntityError):
        intra_partition_distance(partition, low, up)


def test_point_to_door_distance(three_door_space):
    point = IndoorPoint(5, 5, 0)
    assert point_to_door_distance(three_door_space, point, "dn1") == 5.0
    assert math.isclose(
        point_to_door_distance(three_door_space, point, "de"), math.hypot(15, 0)
    )


def test_point_to_door_requires_same_partition(three_door_space):
    point = IndoorPoint(5, 15, 0)  # in "north"
    with pytest.raises(UnknownEntityError):
        point_to_door_distance(three_door_space, point, "de")
